//! Minimal offline stand-in for the parts of `rand` the workspace uses:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and `Rng::gen` for a
//! handful of primitive types. The generator is xoshiro256++ seeded via
//! splitmix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets (sequences differ from the real crate; all in-repo consumers
//! only rely on determinism per seed, not on exact streams).

#![forbid(unsafe_code)]

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values drawable from an RNG with `Rng::gen` (the real crate's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level drawing interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `[0, n)` (`n > 0`).
    fn gen_range_u64(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant for the in-repo uses.
        self.next_u64() % n.max(1)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the construction behind the real `SmallRng` on
    /// 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never requests OS entropy, so the standard RNG
    /// is the same deterministic generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut below = 0usize;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            if x < 0.25 {
                below += 1;
            }
        }
        assert!((2000..3000).contains(&below), "{below}");
    }
}
