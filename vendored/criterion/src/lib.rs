//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface used by this workspace's `benches/`
//! targets: [`black_box`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark body runs a handful of iterations and
//! reports mean wall-clock per iteration — enough to smoke-test the
//! benches and get rough numbers without the statistics machinery.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per measurement. Tiny on purpose: `harness = false`
/// targets also run under `cargo test`, where speed matters more than
/// statistical confidence.
const MEASURE_ITERS: u32 = 3;

/// An opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { name: format!("{name}/{param}") }
    }

    /// A parameter-only id for single-function groups.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { name: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `f` a few times and records mean wall-clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup round.
        black_box(f());
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = MEASURE_ITERS;
    }
}

fn report(label: &str, b: &Bencher) {
    let per_iter = b.elapsed_ns / b.iters.max(1) as u128;
    println!("bench {label:<48} {:>12} ns/iter", per_iter);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time targets.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// See [`Default`].
    pub fn default() -> Self {
        Criterion {}
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
