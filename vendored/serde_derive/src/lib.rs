//! No-op `Serialize`/`Deserialize` derives: accept the input (including
//! `#[serde(...)]` attributes) and emit nothing. The workspace only ever
//! uses the derives as markers — no serialization code path exists.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
