//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// See [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// A uniform boolean.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
