//! Value-generation strategies.

use crate::test_runner::TestRng;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (bounded; the last
    /// draw is returned when the filter never accepts).
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.new_value(rng);
        for _ in 0..64 {
            if (self.f)(&v) {
                break;
            }
            v = self.inner.new_value(rng);
        }
        v
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from regex-like patterns (`"[a-z]{1,6}"`).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
