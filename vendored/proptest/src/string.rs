//! String generation from the regex subset used as proptest string
//! strategies in this workspace: literal characters, `.`, character
//! classes (`[a-z0-9 .,]`), groups, and `{n}` / `{n,m}` / `*` / `+` / `?`
//! quantifiers.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    Dot,
    Class(Vec<char>),
    Group(Vec<Piece>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let pieces = parse_sequence(&chars, &mut pos, pattern);
    assert!(pos == chars.len(), "unsupported regex strategy: {pattern:?}");
    let mut out = String::new();
    emit(&pieces, rng, &mut out);
    out
}

fn emit(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for p in pieces {
        let n = p.min + rng.below((p.max - p.min + 1) as u64) as u32;
        for _ in 0..n {
            match &p.atom {
                Atom::Lit(c) => out.push(*c),
                // Printable ASCII; a valid subset of what the real crate
                // draws for `.`.
                Atom::Dot => out.push((32 + rng.below(95) as u8) as char),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                Atom::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

fn parse_sequence(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let atom = match chars[*pos] {
            '.' => {
                *pos += 1;
                Atom::Dot
            }
            '[' => {
                *pos += 1;
                Atom::Class(parse_class(chars, pos, pattern))
            }
            '(' => {
                *pos += 1;
                let inner = parse_sequence(chars, pos, pattern);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unclosed group in regex strategy: {pattern:?}"
                );
                *pos += 1;
                Atom::Group(inner)
            }
            '\\' => {
                *pos += 1;
                assert!(*pos < chars.len(), "dangling escape in {pattern:?}");
                let c = chars[*pos];
                *pos += 1;
                match c {
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut set: Vec<char> = ('a'..='z').collect();
                        set.extend('A'..='Z');
                        set.extend('0'..='9');
                        set.push('_');
                        Atom::Class(set)
                    }
                    's' => Atom::Class(vec![' ', '\t', '\n']),
                    other => Atom::Lit(other),
                }
            }
            c => {
                *pos += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = parse_quantifier(chars, pos, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (u32, u32) {
    if *pos >= chars.len() {
        return (1, 1);
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            (0, 8)
        }
        '+' => {
            *pos += 1;
            (1, 8)
        }
        '?' => {
            *pos += 1;
            (0, 1)
        }
        '{' => {
            *pos += 1;
            let mut min = 0u32;
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                min = min * 10 + chars[*pos].to_digit(10).unwrap();
                *pos += 1;
            }
            let max = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                let mut m = 0u32;
                let mut saw = false;
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    m = m * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                    saw = true;
                }
                if saw {
                    m
                } else {
                    min + 8 // open-ended {n,}
                }
            } else {
                min
            };
            assert!(
                *pos < chars.len() && chars[*pos] == '}',
                "unclosed quantifier in regex strategy: {pattern:?}"
            );
            *pos += 1;
            (min, max.max(min))
        }
        _ => (1, 1),
    }
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let c = match chars[*pos] {
            '\\' => {
                *pos += 1;
                assert!(*pos < chars.len(), "dangling escape in {pattern:?}");
                chars[*pos]
            }
            c => c,
        };
        // Range `a-z` (a '-' just before ']' is a literal).
        if *pos + 2 < chars.len() && chars[*pos + 1] == '-' && chars[*pos + 2] != ']' {
            let hi = chars[*pos + 2];
            assert!(c <= hi, "bad class range in {pattern:?}");
            set.extend(c..=hi);
            *pos += 3;
        } else {
            set.push(c);
            *pos += 1;
        }
    }
    assert!(
        *pos < chars.len() && chars[*pos] == ']',
        "unclosed class in regex strategy: {pattern:?}"
    );
    *pos += 1;
    assert!(!set.is_empty(), "empty class in regex strategy: {pattern:?}");
    set
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn sample(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::from_name(pattern);
        (0..50).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_repetition() {
        for s in sample("[a-z]{1,6}") {
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn grouped_repetition() {
        for s in sample("[a-z]{1,4}(-[a-z]{1,4}){0,2}") {
            let parts: Vec<&str> = s.split('-').collect();
            assert!((1..=3).contains(&parts.len()), "{s:?}");
            assert!(parts.iter().all(|p| !p.is_empty()));
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        for s in sample(".{0,200}") {
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn mixed_class_with_markup_chars() {
        for s in sample("[a-zA-Z0-9 <>/buih]{0,120}") {
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " <>/".contains(c)));
        }
    }
}
