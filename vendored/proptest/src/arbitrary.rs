//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}
