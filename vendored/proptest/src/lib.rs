//! Minimal offline stand-in for `proptest`.
//!
//! Implements exactly the API surface the workspace's property tests use:
//! the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros, `Strategy` with `prop_map`, range / tuple / regex-string /
//! `Just` strategies, `proptest::collection::vec`, `proptest::bool::ANY`,
//! `any::<T>()`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate (acceptable for property *checking*):
//! no shrinking — a failing case panics with the generated inputs
//! rendered by the assertion message; and value streams are seeded from
//! the test's module path, so runs are fully deterministic.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

/// Everything a test file typically imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Mirrors the real macro's grammar: an optional inner
/// `#![proptest_config(..)]` attribute followed by `#[test] fn` items
/// whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..cfg.cases {
                    let __vals = $crate::strategy::Strategy::new_value(
                        &( $($strat),+ ,),
                        &mut rng,
                    );
                    // `prop_assume!` exits the closure to skip the case. The
                    // helper pins the closure's parameter type to the strategy
                    // output before the body is inferred.
                    $crate::__run_case(__vals, |( $($arg),+ ,)| { $body });
                }
            }
        )*
    };
}

#[doc(hidden)]
pub fn __run_case<V, F: FnOnce(V)>(vals: V, f: F) {
    f(vals)
}

/// Asserts a condition inside a property (no shrinking: fails the test
/// directly).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}
