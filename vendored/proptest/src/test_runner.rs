//! Deterministic test driving: configuration and the case RNG.

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline CI fast while still
        // exercising the properties.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case RNG (splitmix64 over an FNV-1a hash of the
/// test's module path, so every test gets a stable but distinct stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
