//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
