//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything (no format crate is wired in), so the derive
//! only has to *exist*. This crate provides marker traits and re-exports
//! the no-op derive macros from `serde_derive`, letting the workspace
//! build in an offline environment. Swapping the real serde back in is a
//! one-line change in the root `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
