#!/usr/bin/env bash
# Benchmark driver: regenerates the parallel-execution report committed
# as BENCH_parallel.json, plus the Table 1 inventory as a sanity anchor.
# Run from the repository root: scripts/bench.sh [report-path]
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT="${1:-BENCH_parallel.json}"

echo "== build (release) =="
cargo build --release -p iflex-bench

echo "== exp_table1 (inventory sanity) =="
./target/release/exp_table1

echo "== exp_scaling --parallel-report =="
./target/release/exp_scaling --parallel-report "$REPORT"

echo "== trace overhead smoke =="
# Observability must be free when off: the same tiny workload with the
# tracer disabled (IFLEX_TRACE unset) is the number the <2% acceptance
# bound is judged against; the traced exp_trace smoke exercises the
# enabled path.
env -u IFLEX_TRACE ./target/release/exp_scaling --smoke target/BENCH_parallel_smoke.json
./target/release/exp_trace --smoke target/BENCH_trace_smoke.jsonl

echo "bench OK ($REPORT)"
