#!/usr/bin/env bash
# Benchmark driver: regenerates the parallel-execution report committed
# as BENCH_parallel.json, the incremental-iteration report committed as
# BENCH_incremental.json, the logical-plan-optimizer report committed as
# BENCH_plan.json, and the live-telemetry overhead report committed as
# BENCH_telemetry.json, plus the Table 1 inventory as a sanity anchor.
# Run from the repository root:
#   scripts/bench.sh [parallel-report-path] [incremental-report-path] \
#                    [plan-report-path] [telemetry-report-path]
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT="${1:-BENCH_parallel.json}"
INCR_REPORT="${2:-BENCH_incremental.json}"
PLAN_REPORT="${3:-BENCH_plan.json}"
TEL_REPORT="${4:-BENCH_telemetry.json}"

echo "== build (release) =="
cargo build --release -p iflex-bench

echo "== exp_table1 (inventory sanity) =="
./target/release/exp_table1

echo "== exp_scaling --parallel-report =="
# The morsel-executor report (DESIGN.md §13): serial / serial+memo /
# threads+memo over T1/T5/T8/Panel at corpus scale 1 plus T1/T5/T8 at
# scale 10, with morsel and steal counts per row. On a ≥4-core host the
# binary asserts the speedup gate: threads=4 ≥ serial+memo at scale 1
# and > 1.3x at scale 10; smaller hosts print a skip notice.
./target/release/exp_scaling --parallel-report "$REPORT"

echo "== exp_scaling --incremental-report =="
# Full-scale T1/T5 sessions with the rule cache on vs off; the binary
# asserts identical results and reports the session wall-clock speedup.
./target/release/exp_scaling --incremental-report "$INCR_REPORT"

echo "== exp_scaling --plan-report =="
# The DESIGN.md §11 optimizer ablation: serial / +feature-memo /
# +optimizer over T1/T5/T8/Panel at corpus scale 1 and 10, single-
# threaded with sampling and the incremental cache off. The binary
# asserts all three configurations produce identical results. The
# scale-10 sweep is long; pass extra scales via the binary directly
# (e.g. `exp_scaling --plan-report out.json --scale 1`) for quick runs.
./target/release/exp_scaling --plan-report "$PLAN_REPORT"

echo "== exp_scaling --telemetry-report =="
# DESIGN.md §12: full-scale T1/T5 sessions with live telemetry off vs
# on, best-of-3 per arm. The binary asserts identical results and that
# T1's enabled arm stays under the 5% overhead budget.
./target/release/exp_scaling --telemetry-report "$TEL_REPORT"

echo "== trace overhead smoke =="
# Observability must be free when off: the same tiny workload with the
# tracer disabled (IFLEX_TRACE unset) is the number the <2% acceptance
# bound is judged against; the traced exp_trace smoke exercises the
# enabled path.
env -u IFLEX_TRACE ./target/release/exp_scaling --smoke target/BENCH_parallel_smoke.json
./target/release/exp_trace --smoke target/BENCH_trace_smoke.jsonl

echo "bench OK ($REPORT, $INCR_REPORT, $PLAN_REPORT, $TEL_REPORT)"
