#!/usr/bin/env bash
# Benchmark driver: regenerates the parallel-execution report committed
# as BENCH_parallel.json, plus the Table 1 inventory as a sanity anchor.
# Run from the repository root: scripts/bench.sh [report-path]
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT="${1:-BENCH_parallel.json}"

echo "== build (release) =="
cargo build --release -p iflex-bench

echo "== exp_table1 (inventory sanity) =="
./target/release/exp_table1

echo "== exp_scaling --parallel-report =="
./target/release/exp_scaling --parallel-report "$REPORT"

echo "bench OK ($REPORT)"
