#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the workspace's core crates.
# Run from the repository root: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (workspace, vendored stand-ins excluded) =="
cargo clippy --workspace \
  --exclude criterion --exclude proptest --exclude rand --exclude serde \
  -- -D warnings

echo "== parallel smoke =="
# One tiny workload through the serial / memo / threaded sweep; asserts
# inside the binary check that every configuration yields the same table.
./target/release/exp_scaling --smoke target/BENCH_parallel_smoke.json

echo "== parallel speedup smoke =="
# The morsel-executor gate (DESIGN.md §13): one T1 workload at the gate
# scale; asserts inside the binary check that threads=4 with the memo
# beats serial-with-memo, plus the usual byte-identity sweep. On hosts
# with fewer than 4 cores the speedup assertion is skipped with a
# notice (the identity sweep still runs at a tiny scale).
./target/release/exp_scaling --parallel-report target/BENCH_parallel_speedup_smoke.json --smoke

echo "== plan-optimizer + columnar smoke =="
# One tiny workload through the serial / memo / optimized / row-core
# sweep; asserts inside the binary check that the optimized configuration
# produces results identical to the unoptimized ones (the DESIGN.md §11
# ablation gate; the byte-level version lives in the prop_opt property
# suite) AND that `Limits::use_columnar` on vs off yields byte-identical
# tables, stop reasons, and degradation records on T1@0.1 (the
# DESIGN.md §14 columnar equivalence gate; the byte-level version lives
# in the prop_batch property suite).
./target/release/exp_scaling --plan-report target/BENCH_plan_smoke.json --smoke

echo "== incremental smoke =="
# One tiny session pair (incremental on vs off); asserts inside the
# binary check the result tables and recall are identical, so the cache
# is exercised as a correctness gate, not just a speed lever.
./target/release/exp_scaling --incremental-report --smoke target/BENCH_incremental_smoke.json

echo "== service smoke =="
# A scripted client transcript through the multi-session server:
# create / ask / answer / get-results, an admission-cap rejection, and
# a graceful drain; asserts inside the binary check every response.
./target/release/service --smoke

echo "== trace smoke =="
# One tiny traced session end to end: dump the journal as JSONL, replay
# it, validate span nesting, and render the run report.
./target/release/exp_trace --smoke target/BENCH_trace_smoke.jsonl

echo "== telemetry smoke =="
# The same tiny session with live telemetry (windows, quantile sketches,
# flight recorder) off vs on; asserts inside the binary check both arms
# produce identical results. The service smoke above already scraped the
# exposition endpoint and asserted the per-session p99 and window series
# parse; the <5% overhead bound is asserted by the full bench.sh run.
./target/release/exp_scaling --telemetry-report target/BENCH_telemetry_smoke.json --smoke

echo "tier-1 OK"
