#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the workspace's core crates.
# Run from the repository root: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (engine, core) =="
cargo clippy -p iflex-engine -p iflex -- -D warnings

echo "== parallel smoke =="
# One tiny workload through the serial / memo / threaded sweep; asserts
# inside the binary check that every configuration yields the same table.
./target/release/exp_scaling --smoke target/BENCH_parallel_smoke.json

echo "tier-1 OK"
