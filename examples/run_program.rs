//! Run an Alog program from a file over your own page directories — the
//! non-interactive front door to iFlex.
//!
//! ```sh
//! cargo run --release -p iflex-examples --bin run_program -- \
//!     program.alog housePages=crawl/houses schoolPages=crawl/schools \
//!     [--explain] [--sample 0.2] [--rows 20]
//! ```
//!
//! Each `name=dir` pair loads every file in `dir` as one document of the
//! extensional table `name` (`.html`/`.htm`/`.xml` parsed as markup).

use iflex::prelude::*;
use std::process::exit;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut program_path: Option<String> = None;
    let mut tables: Vec<(String, String)> = Vec::new();
    let mut explain = false;
    let mut sample: Option<f64> = None;
    let mut rows = 20usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--explain" => explain = true,
            "--sample" => {
                i += 1;
                sample = args.get(i).and_then(|s| s.parse().ok());
            }
            "--rows" => {
                i += 1;
                rows = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(20);
            }
            a if a.contains('=') => {
                let (name, dir) = a.split_once('=').unwrap();
                tables.push((name.to_string(), dir.to_string()));
            }
            a if program_path.is_none() => program_path = Some(a.to_string()),
            a => {
                eprintln!("unrecognized argument: {a}");
                exit(2);
            }
        }
        i += 1;
    }
    let Some(program_path) = program_path else {
        eprintln!("usage: run_program <program.alog> <table>=<dir>... [--explain] [--sample f] [--rows n]");
        exit(2);
    };

    let source = match std::fs::read_to_string(&program_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {program_path}: {e}");
            exit(1);
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error in {program_path}: {e}");
            exit(1);
        }
    };

    let mut store = DocumentStore::new();
    let mut loaded: Vec<(String, Vec<DocId>)> = Vec::new();
    for (name, dir) in &tables {
        match iflex::io::load_dir(&mut store, dir) {
            Ok(ids) => {
                eprintln!("loaded {} documents into table {name}", ids.len());
                loaded.push((name.clone(), ids));
            }
            Err(e) => {
                eprintln!("cannot load {dir}: {e}");
                exit(1);
            }
        }
    }
    let mut engine = Engine::new(Arc::new(store));
    for (name, ids) in &loaded {
        engine.add_doc_table(name, ids);
    }

    if explain {
        match engine.explain(&program) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        }
        return;
    }

    let result = match sample {
        Some(f) => engine.run_sampled(&program, Sample::new(f, 7)),
        None => engine.run(&program),
    };
    match result {
        Ok(table) => {
            println!("{}", table.render(engine.store(), rows));
            println!(
                "{} compact tuples / {} expanded ({} certain)",
                table.len(),
                table.expanded_len(engine.store()),
                table.certain_tuples(engine.store(), 10_000).len(),
            );
        }
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}
