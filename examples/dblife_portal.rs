//! The §6.3 evaluation: the three DBLife extraction programs (Panel,
//! Project, Chair) over a heterogeneous snapshot of community Web pages —
//! including the `extractType` cleanup p-predicate (§2.2.4) for the Chair
//! task's "chair type" attribute.
//!
//! Run with: `cargo run --release -p iflex-examples --bin dblife_portal`

use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn main() {
    println!("building the DBLife snapshot (conference/project/noise pages)...");
    let corpus = Corpus::build(CorpusConfig::tiny());
    println!("{} pages total\n", corpus.dblife.docs.len());

    for id in TaskId::DBLIFE {
        let task = corpus.task(id, None);
        println!("== {} — {}", id.name(), id.description());
        let engine = task.engine(&corpus);
        let mut session = iflex::Session::new(
            engine,
            task.program.clone(),
            Box::new(Simulation::default()),
            Box::new(SimulatedDeveloper::new(task.oracle.clone())),
        );
        if task.needs_type_cleanup {
            // the engine already has extractType registered; charge the
            // §2.2.4 cleanup-writing time the paper reports in parentheses
            session
                .clock
                .charge_cleanup(session.cost.write_cleanup_secs);
        }
        let outcome = session.run().expect("session runs");
        let q = iflex::score(
            &outcome.table,
            &task.truth_cols,
            &task.truth,
            session.engine.store(),
        );
        println!(
            "   {:.0} simulated min ({:.0} cleanup) · {} questions · {} iterations",
            outcome.minutes,
            outcome.cleanup_minutes,
            outcome.questions_asked,
            outcome.iterations
        );
        println!(
            "   result {} tuples vs {} correct (recall {:.0}%)",
            q.result_tuples,
            q.correct_tuples,
            q.recall * 100.0
        );
        println!("{}", outcome.table.render(session.engine.store(), 3));
    }
}
