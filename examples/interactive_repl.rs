//! An interactive iFlex shell, now a **thin client** of the multi-session
//! service: every command is serialized to one JSON-lines protocol
//! request, handed to an in-process [`iflex_service::Host`], and the
//! response is pretty-printed. The same requests work verbatim against
//! `cargo run -p iflex-service --bin service -- --tcp 127.0.0.1:7878`.
//!
//! Run with: `cargo run --release -p iflex-examples --bin interactive_repl`
//!
//! Commands:
//!   .help                 show help
//!   .ask [n]              ask the assistant for the next n questions
//!   .answer <attr> <feature> <value>   fold an answer in (e.g.
//!                         `.answer extractTitle.t bold-font yes`)
//!   .run [limit]          execute the program, show the result table
//!   .cancel               cancel the in-flight run
//!   .stats                service counters
//!   .raw <json>           send a raw protocol line
//!   .quit                 exit (drains the session gracefully)

use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig};
use iflex_service::{Host, Json, ServiceConfig};
use std::io::{BufRead, Write};

const PROGRAM: &str = "q(x, title) :- imdb(x), extractTitle(#x, title).\n\
                       extractTitle(#x, t) :- from(#x, t), bold-font(t) = yes.\n";

/// Renders a response for humans: the result table verbatim, everything
/// else as compact JSON.
fn show(resp: &Json) {
    if let Some(table) = resp.get("table").and_then(Json::as_str) {
        print!("{table}");
        println!(
            "{} compact tuples / {} expanded{}",
            resp.get("tuples").and_then(Json::as_u64).unwrap_or(0),
            resp.get("expanded").and_then(Json::as_u64).unwrap_or(0),
            if resp.get("degraded") == Some(&Json::Bool(true)) {
                " (degraded: superset-safe widening applied)"
            } else {
                ""
            }
        );
        return;
    }
    if let Some(Json::Arr(qs)) = resp.get("questions") {
        if qs.is_empty() {
            println!("the question space is exhausted");
        }
        for q in qs {
            println!(
                "  [{} {}] {}",
                q.get("attr").and_then(Json::as_str).unwrap_or("?"),
                q.get("feature").and_then(Json::as_str).unwrap_or("?"),
                q.get("text").and_then(Json::as_str).unwrap_or("")
            );
        }
        return;
    }
    println!("{}", resp.render());
}

fn main() {
    println!("iFlex shell — thin client over the multi-session service\n");
    let corpus = Corpus::build(CorpusConfig::tiny());
    let mut engine = Engine::new(corpus.store.clone());
    let imdb: Vec<_> = corpus.movies.imdb.iter().map(|(d, _)| *d).collect();
    let ebert: Vec<_> = corpus.movies.ebert.iter().map(|(d, _)| *d).collect();
    engine.add_doc_table("imdb", &imdb);
    engine.add_doc_table("ebert", &ebert);
    let host = Host::new(engine.into_core(), PROGRAM, ServiceConfig::default());

    // The client side: one session over the wire protocol.
    let send = |line: &str| host.handle_line(line);
    let created = send(r#"{"cmd":"create-session","id":"repl"}"#);
    let Some(sid) = created.get("session").and_then(Json::as_u64) else {
        eprintln!("could not create a session: {}", created.render());
        return;
    };
    println!("session {sid} created (warm cache entries: {})", created
        .get("warm_entries")
        .and_then(Json::as_u64)
        .unwrap_or(0));
    println!("type .help for commands\n");

    let stdin = std::io::stdin();
    loop {
        print!("iflex> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        let mut parts = line.split_whitespace();
        match parts.next().unwrap_or("") {
            "" => continue,
            ".quit" | ".exit" => break,
            ".help" => println!(
                ".ask [n] | .answer <attr> <feature> <value> | .run [limit] | \
                 .cancel | .stats | .raw <json> | .quit"
            ),
            ".ask" => {
                let n: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                show(&send(&format!(
                    r#"{{"cmd":"ask-question","session":{sid},"count":{n}}}"#
                )));
            }
            ".answer" => {
                let (Some(attr), Some(feature), Some(value)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    println!("usage: .answer <attr> <feature> <value>");
                    continue;
                };
                show(&send(&format!(
                    r#"{{"cmd":"answer","session":{sid},"attr":"{attr}","feature":"{feature}","value":"{value}"}}"#
                )));
            }
            ".run" => {
                let limit: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(8);
                show(&send(&format!(
                    r#"{{"cmd":"get-results","session":{sid},"limit":{limit}}}"#
                )));
            }
            ".cancel" => show(&send(&format!(r#"{{"cmd":"cancel","session":{sid}}}"#))),
            ".stats" => show(&send(r#"{"cmd":"stats"}"#)),
            ".raw" => {
                let raw = line.strip_prefix(".raw").unwrap_or("").trim();
                show(&send(raw));
            }
            other => println!("unrecognized command {other:?} (try .help)"),
        }
    }
    let closed = send(&format!(r#"{{"cmd":"close-session","session":{sid}}}"#));
    println!(
        "session closed (cache published: {})",
        closed.get("published") == Some(&Json::Bool(true))
    );
}
