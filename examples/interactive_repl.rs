//! An interactive iFlex shell: load a built-in corpus table, type Alog
//! programs, run them best-effort, and see the approximate results and
//! the assistant's suggested next question.
//!
//! Run with: `cargo run --release -p iflex-examples --bin interactive_repl`
//!
//! Commands:
//!   .help                 show help
//!   .tables               list loaded tables
//!   .program              show the current program
//!   .load `<alog text>`     replace the program (one line; `\n` for breaks)
//!   .run                  execute the current program
//!   .explain              show the compiled execution plan
//!   .suggest              ask the next-effort assistant for a question
//!   .quit                 exit
//! Any other line ending in `.` is appended to the program as a rule.

use iflex::assistant::{ordered_questions, AssistContext};
use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig};
use std::collections::BTreeSet;
use std::io::{BufRead, Write};

fn main() {
    println!("iFlex interactive shell — best-effort IE over the Movies corpus");
    println!("type .help for commands\n");
    let corpus = Corpus::build(CorpusConfig::tiny());
    let mut engine = Engine::new(corpus.store.clone());
    let imdb: Vec<_> = corpus.movies.imdb.iter().map(|(d, _)| *d).collect();
    let ebert: Vec<_> = corpus.movies.ebert.iter().map(|(d, _)| *d).collect();
    engine.add_doc_table("imdb", &imdb);
    engine.add_doc_table("ebert", &ebert);

    let mut source = String::from(
        "q(x, title) :- imdb(x), extractTitle(#x, title).\n\
         extractTitle(#x, t) :- from(#x, t), bold-font(t) = yes.\n",
    );
    let asked: BTreeSet<(String, String)> = BTreeSet::new();

    let stdin = std::io::stdin();
    loop {
        print!("iflex> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            ".quit" | ".exit" => break,
            ".help" => {
                println!(
                    ".tables | .program | .load <alog> | .run | .explain | .suggest | .quit\n\
                     or type a rule ending in '.' to append it"
                );
            }
            ".tables" => {
                for (name, table) in engine.ext_tables() {
                    println!("  {name}: {} records", table.len());
                }
            }
            ".program" => println!("{source}"),
            ".explain" => match parse_program(&source) {
                Err(e) => println!("parse error: {e}"),
                Ok(prog) => match engine.explain(&prog) {
                    Ok(text) => println!("{text}"),
                    Err(e) => println!("error: {e}"),
                },
            },
            ".run" => match parse_program(&source) {
                Err(e) => println!("parse error: {e}"),
                Ok(prog) => match engine.run(&prog) {
                    Err(e) => println!("error: {e}"),
                    Ok(table) => {
                        println!("{}", table.render(engine.store(), 8));
                        println!(
                            "{} compact tuples / {} expanded",
                            table.len(),
                            table.expanded_len(engine.store())
                        );
                    }
                },
            },
            ".suggest" => match parse_program(&source) {
                Err(e) => println!("parse error: {e}"),
                Ok(prog) => {
                    let current = engine
                        .run(&prog)
                        .map(|t| t.expanded_len(engine.store()) as usize)
                        .unwrap_or(0);
                    let ctx = AssistContext {
                        program: &prog,
                        engine: &mut engine,
                        asked: &asked,
                        sample: Sample::new(1.0, 7),
                        alpha: 0.1,
                        current_size: current,
                        examples: Default::default(),
                    };
                    match ordered_questions(&ctx).into_iter().next() {
                        Some(q) => println!("next question: {}", q.text),
                        None => println!("the question space is exhausted"),
                    }
                }
            },
            l if l.starts_with(".load ") => {
                source = l[6..].replace("\\n", "\n");
                println!("program replaced ({} chars)", source.len());
            }
            l if l.ends_with('.') => match parse_rule(l) {
                Ok(_) => {
                    source.push_str(l);
                    source.push('\n');
                    println!("rule added");
                }
                Err(e) => println!("parse error: {e}"),
            },
            other => println!("unrecognized input: {other:?} (try .help)"),
        }
    }
    println!("bye");
}
