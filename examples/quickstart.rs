//! Quickstart: write an approximate Alog program, execute it immediately,
//! refine it with one answer, and watch the result tighten.
//!
//! Run with: `cargo run --release -p iflex-examples --bin quickstart`

use iflex::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A tiny corpus: three house-listing records (the paper's running
    //    example, Figure 1).
    let mut store = DocumentStore::new();
    let pages = vec![
        store.add_markup(
            "Cozy house on quiet street. 5146 Windsor Ave., Champaign \
             <b>Sqft: 2750</b> price 351000 High school: <i>Vanhise High</i>",
        ),
        store.add_markup(
            "Amazing house in great location. 3112 Stonecreek Blvd., Cherry Hills \
             <b>Sqft: 4700</b> price 619000 High school: <i>Basktall HS</i>",
        ),
        store.add_markup(
            "Fixer-upper with potential. 77 Oak Ln., Robeson \
             <b>Sqft: 1200</b> price 99000 High school: <i>Franklin High</i>",
        ),
    ];
    let mut engine = Engine::new(Arc::new(store));
    engine.add_doc_table("housePages", &pages);

    // 2. An initial approximate program: "price is numeric" is all we
    //    assert so far (Example 1.1 of the paper).
    let program = parse_program(
        r#"
        expensive(x, <p>) :- housePages(x), extractPrice(#x, p), p > 500000.
        extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
    "#,
    )
    .expect("program parses");

    let result = engine.run(&program).expect("program runs");
    println!("--- initial approximate result ---");
    println!("{}", result.render(engine.store(), 10));

    // 3. Refine: we looked at the pages and noticed the price is the
    //    number right after the word "price".
    let refined = parse_program(
        r#"
        expensive(x, <p>) :- housePages(x), extractPrice(#x, p), p > 500000.
        extractPrice(#x, p) :- from(#x, p), numeric(p) = yes,
                               preceded-by(p) = "price".
    "#,
    )
    .expect("refined program parses");

    let result = engine.run(&refined).expect("refined program runs");
    println!("--- after one refinement ---");
    println!("{}", result.render(engine.store(), 10));
    println!(
        "{} expensive house(s); every tuple now has an exact price.",
        result.len()
    );
}
