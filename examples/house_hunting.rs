//! The paper's full running example (Figures 1–3): houses above $500k with
//! more than 4500 sqft whose high school appears on a top-schools list —
//! including the cross-document `approxMatch` join and both annotation
//! kinds (`<p>` attribute annotations and the `?` existence annotation).
//!
//! Run with: `cargo run --release -p iflex-examples --bin house_hunting`

use iflex::prelude::*;
use std::sync::Arc;

fn main() {
    let mut store = DocumentStore::new();
    let house_pages = vec![
        store.add_markup(
            "$351,000 Cozy house on quiet street. 5146 Windsor Ave., Champaign \
             Sqft: 2750 price 351000 High school: <i>Vanhise High</i>",
        ),
        store.add_markup(
            "$619,000 Amazing house in great location. 3112 Stonecreek Blvd., Cherry Hills \
             Sqft: 4700 price 619000 High school: <i>Basktall HS</i>",
        ),
    ];
    let school_pages = vec![
        store.add_markup(
            "<h2>Top High Schools and Location (page 1)</h2> \
             <b>Basktall</b>, Cherry Hills <b>Franklin</b>, Robeson <b>Vanhise</b>, Champaign",
        ),
        store.add_markup(
            "<h2>Top High Schools and Location (page 2)</h2> \
             <b>Hoover</b>, Akron <b>Ossage</b>, Lynneville",
        ),
    ];
    let mut engine = Engine::new(Arc::new(store));
    engine.add_doc_table("housePages", &house_pages);
    engine.add_doc_table("schoolPages", &school_pages);

    // Figure 2.c: the annotated Alog program. Each house page lists one
    // house (so p, a, h carry attribute annotations); not every bold span
    // in a school page is a school (existence annotation on schools).
    let program = parse_program(
        r#"
        houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
        schools(s)? :- schoolPages(y), extractSchools(#y, s).
        Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                         a > 4500, approxMatch(#h, #s).
        extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                      numeric(p) = yes, numeric(a) = yes,
                                      italic-font(h) = yes.
        extractSchools(#y, s) :- from(#y, s), bold-font(s) = yes.
    "#,
    )
    .expect("the Figure 2 program parses");

    let result = engine.run(&program).expect("executes");
    println!("Q(x, p, a, h) — houses over $500k / 4500 sqft with a top school:");
    println!("{}", result.render(engine.store(), 10));

    // Refine the price and area with what the developer knows next
    // (Example 1.1: "price is preceded by 'price'", area by "Sqft:").
    let refined = parse_program(
        r#"
        houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
        schools(s)? :- schoolPages(y), extractSchools(#y, s).
        Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                         a > 4500, approxMatch(#h, #s).
        extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                      numeric(p) = yes, preceded-by(p) = "price",
                                      numeric(a) = yes, preceded-by(a) = "Sqft:",
                                      italic-font(h) = distinct-yes.
        extractSchools(#y, s) :- from(#y, s), bold-font(s) = distinct-yes.
    "#,
    )
    .expect("refined program parses");
    let result = engine.run(&refined).expect("executes");
    println!("after refinement (exact prices, areas, schools):");
    println!("{}", result.render(engine.store(), 10));
    assert_eq!(result.len(), 1, "only the Cherry Hills house qualifies");
    println!("✓ exactly the Basktall-HS house qualifies, as in Example 2.2");
}
