//! A full interactive best-effort session on the Books domain: task T9
//! ("books cheaper at Amazon than at Barnes & Noble") driven end-to-end by
//! the next-effort assistant's simulation strategy and a simulated
//! developer, with per-iteration progress printed like Table 4.
//!
//! Run with: `cargo run --release -p iflex-examples --bin book_arbitrage`

use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn main() {
    println!("building the Books corpus (synthetic Amazon + Barnes & Noble)...");
    let corpus = Corpus::build(CorpusConfig::tiny());
    let task = corpus.task(TaskId::T9, Some(40));
    println!("task {}: {}", task.id.name(), TaskId::T9.description());
    println!("initial program:\n{}", task.program);

    let engine = task.engine(&corpus);
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        Box::new(Simulation::default()),
        Box::new(SimulatedDeveloper::new(task.oracle.clone())),
    );

    let outcome = session.run().expect("session runs");
    println!("\nper-iteration progress (cf. Table 4):");
    println!("  iter | mode   | result size | questions");
    for r in &outcome.records {
        println!(
            "  {:>4} | {:?}{}| {:>11} | {}",
            r.iteration,
            r.mode,
            if matches!(r.mode, iflex::ExecMode::Reuse) { " " } else { "" },
            r.result_tuples,
            r.questions_this_iter
        );
    }
    println!(
        "\nstopped: {:?} after {} questions, {:.1} simulated minutes",
        outcome.stop, outcome.questions_asked, outcome.minutes
    );
    println!("final program:\n{}", session.program());

    let q = iflex::score(
        &outcome.table,
        &task.truth_cols,
        &task.truth,
        session.engine.store(),
    );
    println!(
        "result: {} tuples vs {} correct → superset {:.0}%, recall {:.0}%",
        q.result_tuples,
        q.correct_tuples,
        q.superset_pct,
        q.recall * 100.0
    );
    println!("\nsample rows:");
    println!("{}", outcome.table.render(session.engine.store(), 5));
}
