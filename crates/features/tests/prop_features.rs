//! Property tests of the Verify/Refine contract (§4.2): every sub-span a
//! `Refine` produces must `Verify`, refinement never invents values from
//! outside the refined region, and Verify is total (never panics) on
//! arbitrary spans.

use iflex_ctable::Assignment;
use iflex_features::{FeatureArg, FeatureRegistry};
use iflex_text::{DocumentStore, Span};
use proptest::prelude::*;

fn arb_markup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[a-z]{1,6}".prop_map(|w| w),
            (0u32..100_000).prop_map(|n| n.to_string()),
            "[a-z]{1,5}".prop_map(|w| format!("<b>{w}</b>")),
            (0u32..9_999).prop_map(|n| format!("<u>{n}</u>")),
            "[A-Z][a-z]{1,5}".prop_map(|w| w),
        ],
        1..12,
    )
    .prop_map(|toks| toks.join(" "))
}

proptest! {
    /// For the "yes"-style features: Refine's output regions verify, and
    /// every exact assignment it produces satisfies Verify.
    #[test]
    fn refine_output_verifies(src in arb_markup()) {
        let mut store = DocumentStore::new();
        let id = store.add_markup(&src);
        let full = store.doc(id).full_span();
        let reg = FeatureRegistry::default();
        for (fname, arg) in [
            ("numeric", FeatureArg::yes()),
            ("bold-font", FeatureArg::distinct_yes()),
            ("underlined", FeatureArg::distinct_yes()),
            ("capitalized", FeatureArg::yes()),
            ("min-value", FeatureArg::Num(100.0)),
            ("max-value", FeatureArg::Num(5_000.0)),
        ] {
            let f = reg.get(fname).unwrap();
            let out = f.refine(&store, full, &arg).unwrap();
            for a in out {
                if let Assignment::Exact(v) = &a {
                    prop_assert!(
                        f.verify_value(&store, v, &arg).unwrap(),
                        "{fname}: refined exact {v} does not verify in {src:?}"
                    );
                }
                // all produced spans stay inside the refined region
                if let Some(s) = a.span() {
                    prop_assert!(full.contains(&s), "{fname}: {s} outside region");
                }
            }
        }
    }

    /// Verify never panics for any feature on any token-aligned sub-span.
    #[test]
    fn verify_is_total(src in arb_markup(), seed in 0usize..64) {
        let mut store = DocumentStore::new();
        let id = store.add_markup(&src);
        let doc = store.doc(id);
        let toks = doc.tokens().tokens();
        prop_assume!(!toks.is_empty());
        let a = seed % toks.len();
        let b = (seed * 7) % toks.len();
        let (lo, hi) = (a.min(b), a.max(b));
        let span = Span::new(id, toks[lo].start, toks[hi].end);
        let reg = FeatureRegistry::default();
        for fname in reg.names() {
            let f = reg.get(fname).unwrap();
            for arg in [
                FeatureArg::yes(),
                FeatureArg::no(),
                FeatureArg::Num(10.0),
                FeatureArg::Text("price".into()),
            ] {
                // wrong-typed args error cleanly; right-typed succeed
                let _ = f.verify(&store, span, &arg);
                let _ = f.refine(&store, span, &arg);
            }
        }
    }

    /// Numeric refinement is exactly the number tokens of the region.
    #[test]
    fn numeric_refine_is_number_tokens(src in arb_markup()) {
        let mut store = DocumentStore::new();
        let id = store.add_markup(&src);
        let full = store.doc(id).full_span();
        let reg = FeatureRegistry::default();
        let f = reg.get("numeric").unwrap();
        let out = f.refine(&store, full, &FeatureArg::yes()).unwrap();
        let expected = store
            .doc(id)
            .token_slice(&full)
            .iter()
            .filter(|t| t.kind == iflex_text::TokenKind::Number)
            .count();
        prop_assert_eq!(out.len(), expected);
    }
}
