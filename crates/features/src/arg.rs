//! Feature values and constraint arguments.
//!
//! A domain constraint has the form `f(a) = v` (§2.2.2). For appearance
//! features `v` is a tri-state-ish token (`yes`, `distinct-yes`, `no`);
//! for semantic/location features it is a number (`max-value(p) = 1000000`)
//! or a string (`preceded-by(p) = "Price:"`).

use std::fmt;

/// The paper's feature value tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureValue {
    /// The span has the feature (its surroundings may too).
    Yes,
    /// The span has the feature and its immediate surroundings do not.
    DistinctYes,
    /// The span does not have the feature.
    No,
    /// The span does not have the feature but its surroundings do.
    DistinctNo,
    /// Not known / not answered.
    Unknown,
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeatureValue::Yes => "yes",
            FeatureValue::DistinctYes => "distinct-yes",
            FeatureValue::No => "no",
            FeatureValue::DistinctNo => "distinct-no",
            FeatureValue::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for FeatureValue {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        Ok(match s {
            "yes" => FeatureValue::Yes,
            "distinct-yes" => FeatureValue::DistinctYes,
            "no" => FeatureValue::No,
            "distinct-no" => FeatureValue::DistinctNo,
            "unknown" => FeatureValue::Unknown,
            _ => return Err(()),
        })
    }
}

/// The right-hand side of a domain constraint `f(a) = v`.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureArg {
    /// `yes` / `distinct-yes` / `no` / ...
    Tri(FeatureValue),
    /// Numeric parameter (`max-value`, `max-length`, `prec-label-max-dist`).
    Num(f64),
    /// String parameter (`preceded-by`, `starts-with` pattern, ...).
    Text(String),
}

impl FeatureArg {
    /// Yes.
    pub fn yes() -> Self {
        FeatureArg::Tri(FeatureValue::Yes)
    }

    /// Distinct yes.
    pub fn distinct_yes() -> Self {
        FeatureArg::Tri(FeatureValue::DistinctYes)
    }

    /// No.
    pub fn no() -> Self {
        FeatureArg::Tri(FeatureValue::No)
    }

    /// The tri-state value, if this arg is one.
    pub fn as_tri(&self) -> Option<FeatureValue> {
        match self {
            FeatureArg::Tri(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric parameter, if this arg is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            FeatureArg::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string parameter, if this arg is one.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            FeatureArg::Text(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for FeatureArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureArg::Tri(v) => write!(f, "{v}"),
            FeatureArg::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            FeatureArg::Text(t) => write!(f, "{t:?}"),
        }
    }
}

/// Errors raised by feature evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// The argument type does not fit the feature (e.g. `bold-font(s) = 7`).
    BadArg {
        /// The feature name.
        feature: String,
        /// The expected argument kind.
        expected: &'static str,
    },
    /// A pattern argument failed to compile.
    BadPattern {
        /// The feature name.
        feature: String,
        /// Human-readable detail.
        message: String,
    },
    /// The feature name is not registered.
    Unknown(String),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::BadArg { feature, expected } => {
                write!(f, "feature {feature}: expected {expected} argument")
            }
            FeatureError::BadPattern { feature, message } => {
                write!(f, "feature {feature}: bad pattern: {message}")
            }
            FeatureError::Unknown(name) => write!(f, "unknown feature: {name}"),
        }
    }
}

impl std::error::Error for FeatureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for v in [
            FeatureValue::Yes,
            FeatureValue::DistinctYes,
            FeatureValue::No,
            FeatureValue::DistinctNo,
            FeatureValue::Unknown,
        ] {
            let s = v.to_string();
            assert_eq!(s.parse::<FeatureValue>().unwrap(), v);
        }
        assert!("maybe".parse::<FeatureValue>().is_err());
    }

    #[test]
    fn arg_accessors() {
        assert_eq!(FeatureArg::yes().as_tri(), Some(FeatureValue::Yes));
        assert_eq!(FeatureArg::Num(3.0).as_num(), Some(3.0));
        assert_eq!(FeatureArg::Text("x".into()).as_text(), Some("x"));
        assert_eq!(FeatureArg::yes().as_num(), None);
    }

    #[test]
    fn display_num_integral() {
        assert_eq!(FeatureArg::Num(700.0).to_string(), "700");
        assert_eq!(FeatureArg::Num(0.5).to_string(), "0.5");
    }
}
