//! Location/structure features: `in-title`, `in-list`, `first-half`.

use crate::arg::{FeatureArg, FeatureError, FeatureValue};
use crate::feature::{expect_tri, Feature};
use iflex_ctable::Assignment;
use iflex_text::{Coverage, DocumentStore, Span};

/// `in-title(a) = yes`: the value lies inside the page `<title>`.
pub struct InTitle;

impl Feature for InTitle {
    fn name(&self) -> &'static str {
        "in-title"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let cov = store.doc(span.doc).in_title(span.start, span.end);
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => cov == Coverage::Full,
            FeatureValue::No | FeatureValue::DistinctNo => cov == Coverage::None,
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let doc = store.doc(span.doc);
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => doc
                .title_range()
                .and_then(|(ts, te)| span.intersect(&Span::new(span.doc, ts, te)))
                .map(Assignment::Contain)
                .into_iter()
                .collect(),
            FeatureValue::No | FeatureValue::DistinctNo => match doc.title_range() {
                None => vec![Assignment::Contain(span)],
                Some((ts, te)) => {
                    let mut out = Vec::new();
                    if span.start < ts {
                        out.push(Assignment::Contain(Span::new(
                            span.doc,
                            span.start,
                            ts.min(span.end),
                        )));
                    }
                    if span.end > te {
                        out.push(Assignment::Contain(Span::new(
                            span.doc,
                            te.max(span.start),
                            span.end,
                        )));
                    }
                    out
                }
            },
            FeatureValue::Unknown => vec![Assignment::Contain(span)],
        })
    }

    fn question(&self, attr: &str) -> String {
        format!("does {attr} appear in the page title?")
    }
}

/// `in-list(a) = yes`: the value lies inside a `<li>` item.
pub struct InList;

impl Feature for InList {
    fn name(&self) -> &'static str {
        "in-list"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let cov = store.doc(span.doc).in_list(span.start, span.end);
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => cov == Coverage::Full,
            FeatureValue::No | FeatureValue::DistinctNo => cov == Coverage::None,
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let doc = store.doc(span.doc);
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => doc
                .list_items()
                .iter()
                .filter_map(|&(ls, le)| span.intersect(&Span::new(span.doc, ls, le)))
                .map(Assignment::Contain)
                .collect(),
            FeatureValue::No | FeatureValue::DistinctNo => {
                // complement of list items within span
                let mut cursor = span.start;
                let mut out = Vec::new();
                let mut items: Vec<(u32, u32)> = doc
                    .list_items()
                    .iter()
                    .copied()
                    .filter(|&(ls, le)| ls < span.end && le > span.start)
                    .collect();
                items.sort_unstable();
                for (ls, le) in items {
                    if ls > cursor {
                        out.push(Assignment::Contain(Span::new(span.doc, cursor, ls)));
                    }
                    cursor = cursor.max(le);
                }
                if cursor < span.end {
                    out.push(Assignment::Contain(Span::new(span.doc, cursor, span.end)));
                }
                out
            }
            FeatureValue::Unknown => vec![Assignment::Contain(span)],
        })
    }

    fn question(&self, attr: &str) -> String {
        format!("is {attr} part of a list?")
    }
}

/// `first-half(a) = yes`: the value lies entirely in the first half of the
/// page (the paper's example of a "location" question, §5.1.1).
pub struct FirstHalf;

impl Feature for FirstHalf {
    fn name(&self) -> &'static str {
        "first-half"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let half = store.doc(span.doc).len() / 2;
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => span.end <= half,
            FeatureValue::No | FeatureValue::DistinctNo => span.start >= half,
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let half = store.doc(span.doc).len() / 2;
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => span
                .intersect(&Span::new(span.doc, 0, half))
                .map(Assignment::Contain)
                .into_iter()
                .collect(),
            FeatureValue::No | FeatureValue::DistinctNo => span
                .intersect(&Span::new(span.doc, half, store.doc(span.doc).len()))
                .map(Assignment::Contain)
                .into_iter()
                .collect(),
            FeatureValue::Unknown => vec![Assignment::Contain(span)],
        })
    }

    fn question(&self, attr: &str) -> String {
        format!("does {attr} lie entirely in the first half of the page?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> (DocumentStore, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_markup(src);
        let full = st.doc(id).full_span();
        (st, full)
    }

    #[test]
    fn in_title_refine() {
        let (st, full) = setup("<title>Top Movies</title>body text here");
        let f = InTitle;
        let out = f.refine(&st, full, &FeatureArg::yes()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.span_text(&out[0].span().unwrap()), "Top Movies");
        let out_no = f.refine(&st, full, &FeatureArg::no()).unwrap();
        assert_eq!(out_no.len(), 1);
        assert!(st.span_text(&out_no[0].span().unwrap()).contains("body"));
    }

    #[test]
    fn in_title_no_title_doc() {
        let (st, full) = setup("no markup");
        let f = InTitle;
        assert!(f.refine(&st, full, &FeatureArg::yes()).unwrap().is_empty());
        assert_eq!(f.refine(&st, full, &FeatureArg::no()).unwrap().len(), 1);
    }

    #[test]
    fn in_list_refine_and_complement() {
        let (st, full) = setup("head<ul><li>one</li><li>two</li></ul>tail");
        let f = InList;
        let yes = f.refine(&st, full, &FeatureArg::yes()).unwrap();
        assert_eq!(yes.len(), 2);
        let no = f.refine(&st, full, &FeatureArg::no()).unwrap();
        let texts: Vec<String> = no
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()).trim().to_string())
            .collect();
        assert!(texts.iter().any(|t| t.contains("head")));
        assert!(texts.iter().any(|t| t.contains("tail")));
    }

    #[test]
    fn first_half_verify() {
        let (st, full) = setup("aaaa bbbb cccc dddd");
        let f = FirstHalf;
        let early = Span::new(full.doc, 0, 4);
        let late = Span::new(full.doc, 15, 19);
        assert!(f.verify(&st, early, &FeatureArg::yes()).unwrap());
        assert!(!f.verify(&st, late, &FeatureArg::yes()).unwrap());
        assert!(f.verify(&st, late, &FeatureArg::no()).unwrap());
    }
}
