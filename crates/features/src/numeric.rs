//! The numeric feature family: `numeric`, `min-value`, `max-value`.

use crate::arg::{FeatureArg, FeatureError, FeatureValue};
use crate::feature::{expect_num, expect_tri, Feature};
use iflex_ctable::{Assignment, Value};
use iflex_text::{parse_number, DocumentStore, Span, TokenKind};

/// `numeric(a) = yes`: the value is a single number.
pub struct Numeric;

fn number_tokens(store: &DocumentStore, span: Span) -> Vec<Span> {
    let doc = store.doc(span.doc);
    doc.token_slice(&span)
        .iter()
        .filter(|t| t.kind == TokenKind::Number)
        .map(|t| Span::new(span.doc, t.start, t.end))
        .collect()
}

impl Feature for Numeric {
    fn name(&self) -> &'static str {
        "numeric"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let is_num = parse_number(store.span_text(&span)).is_some();
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => is_num,
            FeatureValue::No | FeatureValue::DistinctNo => !is_num,
            FeatureValue::Unknown => true,
        })
    }

    fn verify_value(
        &self,
        store: &DocumentStore,
        value: &Value,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let is_num = value.as_num(store).is_some();
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => is_num,
            FeatureValue::No | FeatureValue::DistinctNo => !is_num,
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => number_tokens(store, span)
                .into_iter()
                .map(Assignment::exact_span)
                .collect(),
            // "not numeric": maximal runs of non-number tokens.
            FeatureValue::No | FeatureValue::DistinctNo => {
                let doc = store.doc(span.doc);
                let mut out: Vec<Assignment> = Vec::new();
                let mut run: Option<(u32, u32)> = None;
                for t in doc.token_slice(&span) {
                    if t.kind == TokenKind::Number {
                        if let Some((s, e)) = run.take() {
                            out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                        }
                    } else {
                        run = Some(match run {
                            Some((s, _)) => (s, t.end),
                            None => (t.start, t.end),
                        });
                    }
                }
                if let Some((s, e)) = run {
                    out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                }
                out
            }
            FeatureValue::Unknown => vec![Assignment::Contain(span)],
        })
    }

    fn question(&self, attr: &str) -> String {
        format!("is {attr} a numeric value?")
    }
}

/// `min-value(a) = n` (the value is at least `n`) and
/// `max-value(a) = n` (the value is at most `n`).
pub struct ValueBound {
    name: &'static str,
    is_min: bool,
}

impl ValueBound {
    /// The `min-value` feature.
    pub const fn min() -> Self {
        ValueBound {
            name: "min-value",
            is_min: true,
        }
    }

    /// The `max-value` feature.
    pub const fn max() -> Self {
        ValueBound {
            name: "max-value",
            is_min: false,
        }
    }

    fn holds(&self, v: f64, bound: f64) -> bool {
        if self.is_min {
            v >= bound
        } else {
            v <= bound
        }
    }
}

impl Feature for ValueBound {
    fn name(&self) -> &'static str {
        self.name
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let bound = expect_num(self.name, arg)?;
        Ok(parse_number(store.span_text(&span))
            .map(|v| self.holds(v, bound))
            .unwrap_or(false))
    }

    fn verify_value(
        &self,
        store: &DocumentStore,
        value: &Value,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let bound = expect_num(self.name, arg)?;
        Ok(value
            .as_num(store)
            .map(|v| self.holds(v, bound))
            .unwrap_or(false))
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let bound = expect_num(self.name, arg)?;
        Ok(number_tokens(store, span)
            .into_iter()
            .filter(|s| {
                parse_number(store.span_text(s))
                    .map(|v| self.holds(v, bound))
                    .unwrap_or(false)
            })
            .map(Assignment::exact_span)
            .collect())
    }

    fn question(&self, attr: &str) -> String {
        if self.is_min {
            format!("what is a minimal value for {attr}?")
        } else {
            format!("what is a maximal value for {attr}?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::DocId;

    fn setup(text: &str) -> (DocumentStore, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        let full = st.doc(id).full_span();
        (st, full)
    }

    #[test]
    fn numeric_verify() {
        let (st, full) = setup("price 351000 ok");
        let f = Numeric;
        let num = Span::new(full.doc, 6, 12);
        assert!(f.verify(&st, num, &FeatureArg::yes()).unwrap());
        assert!(!f.verify(&st, full, &FeatureArg::yes()).unwrap());
        assert!(f.verify(&st, full, &FeatureArg::no()).unwrap());
    }

    #[test]
    fn numeric_refine_extracts_number_tokens() {
        let (st, full) = setup("Sqft: 2750 price 351,000 end");
        let f = Numeric;
        let out = f.refine(&st, full, &FeatureArg::yes()).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["2750", "351,000"]);
        assert!(out.iter().all(|a| matches!(a, Assignment::Exact(_))));
    }

    #[test]
    fn numeric_refine_no_gives_word_runs() {
        let (st, full) = setup("alpha beta 42 gamma");
        let f = Numeric;
        let out = f.refine(&st, full, &FeatureArg::no()).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["alpha beta", "gamma"]);
    }

    #[test]
    fn bounds_verify_and_refine() {
        let (st, full) = setup("4 500000 619000 12");
        let minf = ValueBound::min();
        let maxf = ValueBound::max();
        let out = minf.refine(&st, full, &FeatureArg::Num(500000.0)).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["500000", "619000"]);
        let out = maxf.refine(&st, full, &FeatureArg::Num(12.0)).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["4", "12"]);
    }

    #[test]
    fn verify_value_on_constants() {
        let (st, _) = setup("x");
        let minf = ValueBound::min();
        assert!(minf
            .verify_value(&st, &Value::Num(10.0), &FeatureArg::Num(5.0))
            .unwrap());
        assert!(!minf
            .verify_value(&st, &Value::Num(1.0), &FeatureArg::Num(5.0))
            .unwrap());
        assert!(!minf
            .verify_value(&st, &Value::Null, &FeatureArg::Num(5.0))
            .unwrap());
        let n = Numeric;
        assert!(n
            .verify_value(&st, &Value::Num(1.0), &FeatureArg::yes())
            .unwrap());
    }

    #[test]
    fn dollar_prices_parse_in_bounds() {
        let (st, full) = setup("List $104.99 new $89.00");
        // "$" is its own token; numbers are clean
        let minf = ValueBound::min();
        let out = minf.refine(&st, full, &FeatureArg::Num(100.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.span_text(&out[0].span().unwrap()), "104.99");
    }

    #[test]
    fn bad_args() {
        let (st, full) = setup("1");
        assert!(Numeric.verify(&st, full, &FeatureArg::Num(1.0)).is_err());
        assert!(ValueBound::min()
            .verify(&st, full, &FeatureArg::yes())
            .is_err());
    }

    // silence unused import warning in some cfgs
    #[allow(dead_code)]
    fn _t(_: DocId) {}
}
