//! The feature registry: name → [`Feature`] lookup for the query processor
//! and the next-effort assistant.

use crate::arg::FeatureError;
use crate::context::{FollowedBy, PrecLabelContains, PrecLabelMaxDist, PrecededBy};
use crate::feature::Feature;
use crate::numeric::{Numeric, ValueBound};
use crate::shape::{Capitalized, LengthBound, MatchesPattern, PatternEdge, PersonName};
use crate::structure::{FirstHalf, InList, InTitle};
use crate::style::StyleFeature;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, immutable registry of features.
#[derive(Clone)]
pub struct FeatureRegistry {
    features: BTreeMap<&'static str, Arc<dyn Feature>>,
}

impl FeatureRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        FeatureRegistry {
            features: BTreeMap::new(),
        }
    }

    /// Registers a feature (replacing any feature of the same name).
    pub fn register(&mut self, f: Arc<dyn Feature>) {
        self.features.insert(f.name(), f);
    }

    /// Looks up a feature by name.
    pub fn get(&self, name: &str) -> Result<&Arc<dyn Feature>, FeatureError> {
        self.features
            .get(name)
            .ok_or_else(|| FeatureError::Unknown(name.to_string()))
    }

    /// True when a feature with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.features.contains_key(name)
    }

    /// Names of all registered features, sorted.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.features.keys().copied()
    }

    /// The number of registered features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when no features are registered.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

impl Default for FeatureRegistry {
    /// The full built-in feature set of iFlex (§2.2.2: "iFlex currently
    /// uses a rich set of built-in features").
    fn default() -> Self {
        let mut r = FeatureRegistry::empty();
        r.register(Arc::new(Numeric));
        r.register(Arc::new(ValueBound::min()));
        r.register(Arc::new(ValueBound::max()));
        r.register(Arc::new(StyleFeature::bold()));
        r.register(Arc::new(StyleFeature::italic()));
        r.register(Arc::new(StyleFeature::underlined()));
        r.register(Arc::new(StyleFeature::hyperlinked()));
        r.register(Arc::new(InTitle));
        r.register(Arc::new(InList));
        r.register(Arc::new(FirstHalf));
        r.register(Arc::new(PrecededBy));
        r.register(Arc::new(FollowedBy));
        r.register(Arc::new(PrecLabelContains));
        r.register(Arc::new(PrecLabelMaxDist));
        r.register(Arc::new(Capitalized));
        r.register(Arc::new(PersonName));
        r.register(Arc::new(LengthBound::max()));
        r.register(Arc::new(LengthBound::min()));
        r.register(Arc::new(MatchesPattern));
        r.register(Arc::new(PatternEdge::starts_with()));
        r.register(Arc::new(PatternEdge::ends_with()));
        r
    }
}

impl std::fmt::Debug for FeatureRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureRegistry")
            .field("features", &self.features.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arg::FeatureArg;
    use iflex_text::DocumentStore;

    #[test]
    fn default_registry_has_paper_features() {
        let r = FeatureRegistry::default();
        for name in [
            "numeric",
            "bold-font",
            "italic-font",
            "underlined",
            "hyperlinked",
            "preceded-by",
            "followed-by",
            "min-value",
            "max-value",
            "in-title",
            "in-list",
            "prec-label-contains",
            "prec-label-max-dist",
            "starts-with",
            "ends-with",
            "max-length",
        ] {
            assert!(r.contains(name), "missing {name}");
        }
        assert!(r.len() >= 16);
    }

    #[test]
    fn unknown_feature_errors() {
        let r = FeatureRegistry::default();
        assert!(matches!(r.get("no-such"), Err(FeatureError::Unknown(_))));
    }

    #[test]
    fn lookup_and_verify_through_registry() {
        let r = FeatureRegistry::default();
        let mut st = DocumentStore::new();
        let id = st.add_plain("42");
        let span = st.doc(id).full_span();
        let f = r.get("numeric").unwrap();
        assert!(f.verify(&st, span, &FeatureArg::yes()).unwrap());
    }

    #[test]
    fn registration_replaces() {
        let mut r = FeatureRegistry::default();
        let before = r.len();
        r.register(Arc::new(crate::numeric::Numeric));
        assert_eq!(r.len(), before);
    }
}
