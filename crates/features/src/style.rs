//! Appearance features: `bold-font`, `italic-font`, `underlined`,
//! `hyperlinked`.

use crate::arg::{FeatureArg, FeatureError, FeatureValue};
use crate::feature::{expect_tri, Feature};
use iflex_ctable::Assignment;
use iflex_text::{markup::style, Coverage, DocumentStore, Span};

/// One appearance feature, parameterized by its style flag.
pub struct StyleFeature {
    name: &'static str,
    flag: u8,
    question_noun: &'static str,
}

impl StyleFeature {
    /// The `bold-font` feature.
    pub const fn bold() -> Self {
        StyleFeature {
            name: "bold-font",
            flag: style::BOLD,
            question_noun: "bold font",
        }
    }

    /// The `italic-font` feature.
    pub const fn italic() -> Self {
        StyleFeature {
            name: "italic-font",
            flag: style::ITALIC,
            question_noun: "italic font",
        }
    }

    /// The `underlined` feature.
    pub const fn underlined() -> Self {
        StyleFeature {
            name: "underlined",
            flag: style::UNDERLINE,
            question_noun: "underlined text",
        }
    }

    /// The `hyperlinked` feature.
    pub const fn hyperlinked() -> Self {
        StyleFeature {
            name: "hyperlinked",
            flag: style::LINK,
            question_noun: "a hyperlink",
        }
    }

    /// Maximal unstyled token runs within `span`.
    fn unstyled_regions(&self, store: &DocumentStore, span: Span) -> Vec<(u32, u32)> {
        let doc = store.doc(span.doc);
        let mut out: Vec<(u32, u32)> = Vec::new();
        for t in doc.token_slice(&span) {
            let styled = doc.style_coverage(t.start, t.end, self.flag) != Coverage::None;
            if styled {
                continue;
            }
            match out.last_mut() {
                Some((_, e))
                    if doc.text()[*e as usize..t.start as usize]
                        .bytes()
                        .all(|b| b.is_ascii_whitespace()) =>
                {
                    *e = t.end;
                }
                _ => out.push((t.start, t.end)),
            }
        }
        out
    }
}

impl Feature for StyleFeature {
    fn name(&self) -> &'static str {
        self.name
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let doc = store.doc(span.doc);
        let cov = doc.style_coverage(span.start, span.end, self.flag);
        Ok(match expect_tri(self.name, arg)? {
            FeatureValue::Yes => cov == Coverage::Full,
            FeatureValue::DistinctYes => doc.style_distinct(span.start, span.end, self.flag),
            FeatureValue::No => cov == Coverage::None,
            FeatureValue::DistinctNo => {
                cov == Coverage::None && {
                    // some adjacent token styled
                    let toks = doc.tokens().tokens();
                    let before = toks.partition_point(|t| t.start < span.start);
                    let prev_styled = before > 0 && {
                        let p = &toks[before - 1];
                        doc.style_coverage(p.start, p.end, self.flag) != Coverage::None
                    };
                    let after = toks.partition_point(|t| t.end <= span.end);
                    let next_styled = toks.get(after).is_some_and(|n| {
                        doc.style_coverage(n.start, n.end, self.flag) != Coverage::None
                    });
                    prev_styled || next_styled
                }
            }
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let doc = store.doc(span.doc);
        Ok(match expect_tri(self.name, arg)? {
            FeatureValue::Yes => doc
                .styled_regions(span.start, span.end, self.flag)
                .into_iter()
                .map(|(s, e)| Assignment::Contain(Span::new(span.doc, s, e)))
                .collect(),
            FeatureValue::DistinctYes => doc
                .styled_regions(span.start, span.end, self.flag)
                .into_iter()
                .filter(|&(s, e)| doc.style_distinct(s, e, self.flag))
                .map(|(s, e)| Assignment::exact_span(Span::new(span.doc, s, e)))
                .collect(),
            FeatureValue::No | FeatureValue::DistinctNo => self
                .unstyled_regions(store, span)
                .into_iter()
                .map(|(s, e)| Assignment::Contain(Span::new(span.doc, s, e)))
                .collect(),
            FeatureValue::Unknown => vec![Assignment::Contain(span)],
        })
    }

    fn question(&self, attr: &str) -> String {
        format!("is {attr} set in {}?", self.question_noun)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn setup(src: &str) -> (DocumentStore, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_markup(src);
        let full = st.doc(id).full_span();
        (st, full)
    }

    #[test]
    fn verify_bold_levels() {
        let (st, full) = setup("plain <b>bold part</b> tail");
        let f = StyleFeature::bold();
        let doc = st.doc(full.doc);
        let bold_start = doc.text().find("bold").unwrap() as u32;
        let bold_span = Span::new(full.doc, bold_start, bold_start + 9);
        assert!(f.verify(&st, bold_span, &FeatureArg::yes()).unwrap());
        assert!(f
            .verify(&st, bold_span, &FeatureArg::distinct_yes())
            .unwrap());
        assert!(!f.verify(&st, full, &FeatureArg::yes()).unwrap());
        let plain = Span::new(full.doc, 0, 5);
        assert!(f.verify(&st, plain, &FeatureArg::no()).unwrap());
    }

    #[test]
    fn refine_yes_yields_contain_regions() {
        let (st, full) = setup("x <b>alpha beta</b> y <b>gamma</b> z");
        let f = StyleFeature::bold();
        let out = f.refine(&st, full, &FeatureArg::yes()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], Assignment::Contain(_)));
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["alpha beta", "gamma"]);
    }

    #[test]
    fn refine_distinct_yes_yields_exact() {
        let (st, full) = setup("Price: <i>35.99</i>. Only two left.");
        let f = StyleFeature::italic();
        let out = f.refine(&st, full, &FeatureArg::distinct_yes()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Assignment::Exact(_)));
        assert_eq!(st.span_text(&out[0].span().unwrap()), "35.99");
    }

    #[test]
    fn refine_no_yields_unstyled_regions() {
        let (st, full) = setup("aa <b>bb</b> cc dd");
        let f = StyleFeature::bold();
        let out = f.refine(&st, full, &FeatureArg::no()).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["aa", "cc dd"]);
    }

    #[test]
    fn distinct_no_requires_styled_neighbor() {
        let (st, full) = setup("aa <b>bb</b> cc");
        let doc = st.doc(full.doc);
        let f = StyleFeature::bold();
        let cc = doc.text().find("cc").unwrap() as u32;
        let cc_span = Span::new(full.doc, cc, cc + 2);
        assert!(f
            .verify(&st, cc_span, &FeatureArg::Tri(FeatureValue::DistinctNo))
            .unwrap());
        let aa_span = Span::new(full.doc, 0, 2);
        // "aa"'s next token "bb" is bold → distinct-no also holds for it
        assert!(f
            .verify(&st, aa_span, &FeatureArg::Tri(FeatureValue::DistinctNo))
            .unwrap());
    }

    #[test]
    fn hyperlink_feature() {
        let (st, full) = setup(r#"go <a href="http://e.org">click me</a> now"#);
        let f = StyleFeature::hyperlinked();
        let out = f.refine(&st, full, &FeatureArg::yes()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.span_text(&out[0].span().unwrap()), "click me");
    }

    #[test]
    fn bad_arg_rejected() {
        let (st, full) = setup("x");
        let f = StyleFeature::bold();
        assert!(f.verify(&st, full, &FeatureArg::Num(3.0)).is_err());
    }
}
