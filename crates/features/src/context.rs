//! Contextual features: `preceded-by`, `followed-by`,
//! `prec-label-contains`, `prec-label-max-dist`.
//!
//! `Refine` for these features over-approximates on purpose: it returns
//! `contain` regions anchored at the context occurrence and bounded by the
//! enclosing line (or the next label), which is superset-safe (§4's
//! execution semantics) and matches how a developer thinks about
//! "the value right after the 'Price:' label".

use crate::arg::{FeatureArg, FeatureError};
use crate::feature::{expect_num, expect_text, Feature};
use iflex_ctable::Assignment;
use iflex_text::{DocumentStore, Span};

fn line_bounds(text: &str, pos: usize) -> (usize, usize) {
    let start = text[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = text[pos..].find('\n').map(|i| pos + i).unwrap_or(text.len());
    (start, end)
}

/// Case-insensitive occurrences of `needle` inside `hay`.
fn find_all_ci(hay: &str, needle: &str) -> Vec<usize> {
    if needle.is_empty() {
        return Vec::new();
    }
    let h = hay.to_ascii_lowercase();
    let n = needle.to_ascii_lowercase();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = h[from..].find(&n) {
        out.push(from + i);
        from += i + 1;
    }
    out
}

/// `preceded-by(a) = "lbl"`: the text immediately before the value is `lbl`.
pub struct PrecededBy;

impl Feature for PrecededBy {
    fn name(&self) -> &'static str {
        "preceded-by"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let lbl = expect_text(self.name(), arg)?;
        let doc = store.doc(span.doc);
        let before = &doc.text()[..span.start as usize];
        Ok(before.trim_end().to_ascii_lowercase().ends_with(&lbl.to_ascii_lowercase()))
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let lbl = expect_text(self.name(), arg)?;
        let doc = store.doc(span.doc);
        let text = doc.text();
        let hay = &text[span.range()];
        let mut out = Vec::new();
        let push_region = |occ_end: usize, out: &mut Vec<Assignment>| {
            let (_, line_end) = line_bounds(text, occ_end);
            let region_end = (line_end as u32).min(span.end);
            if (occ_end as u32) < region_end {
                let toks = doc.tokens();
                if let Some((s, e)) = toks.cover(toks.tokens_within(occ_end as u32, region_end)) {
                    out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                }
            }
        };
        for occ in find_all_ci(hay, lbl) {
            push_region(span.start as usize + occ + lbl.len(), &mut out);
        }
        // The label may also end just *before* the refined region: then
        // sub-spans anchored at the region start qualify.
        if text[..span.start as usize]
            .trim_end()
            .to_ascii_lowercase()
            .ends_with(&lbl.to_ascii_lowercase())
        {
            push_region(span.start as usize, &mut out);
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        format!("what text immediately precedes {attr}?")
    }
}

/// `followed-by(a) = "lbl"`: the text immediately after the value is `lbl`.
pub struct FollowedBy;

impl Feature for FollowedBy {
    fn name(&self) -> &'static str {
        "followed-by"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let lbl = expect_text(self.name(), arg)?;
        let doc = store.doc(span.doc);
        let after = &doc.text()[span.end as usize..];
        Ok(after.trim_start().to_ascii_lowercase().starts_with(&lbl.to_ascii_lowercase()))
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let lbl = expect_text(self.name(), arg)?;
        let doc = store.doc(span.doc);
        let text = doc.text();
        let hay = &text[span.range()];
        let mut out = Vec::new();
        let push_region = |occ_start: usize, out: &mut Vec<Assignment>| {
            let (line_start, _) = line_bounds(text, occ_start);
            let region_start = (line_start as u32).max(span.start);
            if region_start < occ_start as u32 {
                let toks = doc.tokens();
                if let Some((s, e)) =
                    toks.cover(toks.tokens_within(region_start, occ_start as u32))
                {
                    out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                }
            }
        };
        for occ in find_all_ci(hay, lbl) {
            push_region(span.start as usize + occ, &mut out);
        }
        // The label may begin just *after* the refined region: sub-spans
        // ending at the region end then qualify.
        if text[span.end as usize..]
            .trim_start()
            .to_ascii_lowercase()
            .starts_with(&lbl.to_ascii_lowercase())
        {
            push_region(span.end as usize, &mut out);
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        format!("what text immediately follows {attr}?")
    }
}

/// `prec-label-contains(a) = "panel"`: the section label preceding the
/// value contains the given string (§6.3).
pub struct PrecLabelContains;

impl Feature for PrecLabelContains {
    fn name(&self) -> &'static str {
        "prec-label-contains"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let needle = expect_text(self.name(), arg)?;
        let doc = store.doc(span.doc);
        Ok(doc.preceding_label(span.start).is_some_and(|(l, _)| {
            doc.text()[l.start as usize..l.end as usize]
                .to_ascii_lowercase()
                .contains(&needle.to_ascii_lowercase())
        }))
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let needle = expect_text(self.name(), arg)?.to_ascii_lowercase();
        let doc = store.doc(span.doc);
        let text = doc.text();
        let mut out = Vec::new();
        let labels = doc.labels();
        for (i, l) in labels.iter().enumerate() {
            if !text[l.start as usize..l.end as usize]
                .to_ascii_lowercase()
                .contains(&needle)
            {
                continue;
            }
            // region: end of this label to start of the next label (or EOD)
            let next_start = labels
                .iter()
                .map(|m| m.start)
                .filter(|&s| s > l.end)
                .min()
                .unwrap_or(doc.len());
            let _ = i;
            let region = Span::new(span.doc, l.end, next_start);
            if let Some(r) = span.intersect(&region) {
                let toks = doc.tokens();
                if let Some((s, e)) = toks.cover(toks.tokens_within(r.start, r.end)) {
                    out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                }
            }
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        format!("what does the section label preceding {attr} contain?")
    }
}

/// `prec-label-max-dist(a) = n`: the value starts within `n` bytes of the
/// end of its preceding section label (§6.3 uses 700).
pub struct PrecLabelMaxDist;

impl Feature for PrecLabelMaxDist {
    fn name(&self) -> &'static str {
        "prec-label-max-dist"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let n = expect_num(self.name(), arg)?;
        let doc = store.doc(span.doc);
        Ok(doc
            .preceding_label(span.start)
            .is_some_and(|(_, dist)| (dist as f64) <= n))
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let n = expect_num(self.name(), arg)? as u32;
        let doc = store.doc(span.doc);
        let mut out = Vec::new();
        let labels = doc.labels();
        for l in labels {
            let next_start = labels
                .iter()
                .map(|m| m.start)
                .filter(|&s| s > l.end)
                .min()
                .unwrap_or(doc.len());
            let region_end = (l.end.saturating_add(n)).min(next_start).min(doc.len());
            let region = Span::new(span.doc, l.end, region_end);
            if let Some(r) = span.intersect(&region) {
                let toks = doc.tokens();
                if let Some((s, e)) = toks.cover(toks.tokens_within(r.start, r.end)) {
                    out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                }
            }
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        format!("how far (bytes) can {attr} be from its preceding section label?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> (DocumentStore, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_markup(src);
        let full = st.doc(id).full_span();
        (st, full)
    }

    #[test]
    fn preceded_by_verify_and_refine() {
        let (st, full) = setup("Price: 35.99\nOnly two left");
        let f = PrecededBy;
        let doc = st.doc(full.doc);
        let num = doc.text().find("35.99").unwrap() as u32;
        let num_span = Span::new(full.doc, num, num + 5);
        assert!(f
            .verify(&st, num_span, &FeatureArg::Text("Price:".into()))
            .unwrap());
        let out = f
            .refine(&st, full, &FeatureArg::Text("Price:".into()))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.span_text(&out[0].span().unwrap()), "35.99");
    }

    #[test]
    fn followed_by_refine_takes_line_prefix() {
        let (st, full) = setup("Vanhise High school rocks\nnext line");
        let f = FollowedBy;
        let out = f
            .refine(&st, full, &FeatureArg::Text("school".into()))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.span_text(&out[0].span().unwrap()), "Vanhise High");
    }

    #[test]
    fn prec_label_contains() {
        let (st, full) = setup("<h2>Panel Members</h2>Alice Smith Bob Jones<h2>Other</h2>Carol");
        let f = PrecLabelContains;
        let doc = st.doc(full.doc);
        let alice = doc.text().find("Alice").unwrap() as u32;
        let alice_span = Span::new(full.doc, alice, alice + 11);
        assert!(f
            .verify(&st, alice_span, &FeatureArg::Text("panel".into()))
            .unwrap());
        let carol = doc.text().find("Carol").unwrap() as u32;
        let carol_span = Span::new(full.doc, carol, carol + 5);
        assert!(!f
            .verify(&st, carol_span, &FeatureArg::Text("panel".into()))
            .unwrap());
        let out = f
            .refine(&st, full, &FeatureArg::Text("panel".into()))
            .unwrap();
        assert_eq!(out.len(), 1);
        let text = st.span_text(&out[0].span().unwrap());
        assert!(text.contains("Alice"));
        assert!(!text.contains("Carol"));
    }

    #[test]
    fn prec_label_max_dist() {
        let (st, full) = setup("<h2>Panel</h2>near text then a much longer tail of words");
        let f = PrecLabelMaxDist;
        let out = f.refine(&st, full, &FeatureArg::Num(10.0)).unwrap();
        assert_eq!(out.len(), 1);
        let text = st.span_text(&out[0].span().unwrap());
        assert!(text.starts_with("near"));
        assert!(text.len() <= 12); // clipped near the 10-byte bound
    }

    #[test]
    fn missing_label_fails_verify() {
        let (st, full) = setup("no labels at all");
        assert!(!PrecLabelContains
            .verify(&st, full, &FeatureArg::Text("x".into()))
            .unwrap());
        assert!(!PrecLabelMaxDist
            .verify(&st, full, &FeatureArg::Num(100.0))
            .unwrap());
    }
}
