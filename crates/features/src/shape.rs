//! Shape features: `capitalized`, `person-name`, `max-length`,
//! `min-length`, `starts-with`, `ends-with`.

use crate::arg::{FeatureArg, FeatureError, FeatureValue};
use crate::feature::{expect_num, expect_text, expect_tri, Feature};
use iflex_ctable::Assignment;
use iflex_pattern::Pattern;
use iflex_text::{DocumentStore, Span, Token, TokenKind};

fn is_cap_word(text: &str, t: &Token) -> bool {
    t.kind == TokenKind::Word
        && text[t.range()]
            .chars()
            .next()
            .map(char::is_uppercase)
            .unwrap_or(false)
}

/// `capitalized(a) = yes`: every word of the value starts uppercase.
pub struct Capitalized;

impl Feature for Capitalized {
    fn name(&self) -> &'static str {
        "capitalized"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let doc = store.doc(span.doc);
        let toks = doc.token_slice(&span);
        let words: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Word).collect();
        let all_cap = !words.is_empty() && words.iter().all(|t| is_cap_word(doc.text(), t));
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => all_cap,
            FeatureValue::No | FeatureValue::DistinctNo => !all_cap,
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let doc = store.doc(span.doc);
        match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => {
                // maximal runs of capitalized words (numbers break a run)
                let mut out = Vec::new();
                let mut run: Option<(u32, u32)> = None;
                for t in doc.token_slice(&span) {
                    if is_cap_word(doc.text(), t) {
                        run = Some(match run {
                            Some((s, _)) => (s, t.end),
                            None => (t.start, t.end),
                        });
                    } else if t.kind != TokenKind::Punct {
                        if let Some((s, e)) = run.take() {
                            out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                        }
                    }
                }
                if let Some((s, e)) = run {
                    out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                }
                Ok(out)
            }
            _ => Ok(vec![Assignment::Contain(span)]),
        }
    }

    fn question(&self, attr: &str) -> String {
        format!("is every word of {attr} capitalized?")
    }
}

/// `person-name(a) = yes`: the value looks like a person name — a run of
/// 2–3 capitalized words. Used by the DBLife tasks (§6.3, `personPattern`).
pub struct PersonName;

impl Feature for PersonName {
    fn name(&self) -> &'static str {
        "person-name"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let doc = store.doc(span.doc);
        let toks = doc.token_slice(&span);
        let looks = (2..=3).contains(&toks.len())
            && toks.iter().all(|t| is_cap_word(doc.text(), t));
        Ok(match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => looks,
            FeatureValue::No | FeatureValue::DistinctNo => !looks,
            FeatureValue::Unknown => true,
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let doc = store.doc(span.doc);
        match expect_tri(self.name(), arg)? {
            FeatureValue::Yes | FeatureValue::DistinctYes => {
                let toks: Vec<Token> = doc.token_slice(&span).to_vec();
                let mut out = Vec::new();
                let mut i = 0;
                while i < toks.len() {
                    if !is_cap_word(doc.text(), &toks[i]) {
                        i += 1;
                        continue;
                    }
                    // extent of this capitalized run
                    let mut j = i;
                    while j + 1 < toks.len() && is_cap_word(doc.text(), &toks[j + 1]) {
                        j += 1;
                    }
                    let run_len = j - i + 1;
                    if run_len >= 2 {
                        // candidate 2- and 3-word windows within the run
                        for w in 2..=3usize.min(run_len) {
                            for s in i..=(j + 1 - w) {
                                out.push(Assignment::exact_span(Span::new(
                                    span.doc,
                                    toks[s].start,
                                    toks[s + w - 1].end,
                                )));
                            }
                        }
                    }
                    i = j + 1;
                }
                Ok(out)
            }
            _ => Ok(vec![Assignment::Contain(span)]),
        }
    }

    fn question(&self, attr: &str) -> String {
        format!("does {attr} look like a person name?")
    }
}

/// `max-length(a) = n` / `min-length(a) = n`: bounds on the value's length
/// in bytes (the paper's `max_length(y) = 18`).
pub struct LengthBound {
    name: &'static str,
    is_max: bool,
}

impl LengthBound {
    /// The `max-length` feature.
    pub const fn max() -> Self {
        LengthBound {
            name: "max-length",
            is_max: true,
        }
    }

    /// The `min-length` feature.
    pub const fn min() -> Self {
        LengthBound {
            name: "min-length",
            is_max: false,
        }
    }
}

impl Feature for LengthBound {
    fn name(&self) -> &'static str {
        self.name
    }

    fn verify(
        &self,
        _store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let n = expect_num(self.name, arg)?;
        Ok(if self.is_max {
            (span.len() as f64) <= n
        } else {
            (span.len() as f64) >= n
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let n = expect_num(self.name, arg)? as u32;
        let doc = store.doc(span.doc);
        if !self.is_max {
            // min-length: only the region itself bounds candidates.
            return Ok(if span.len() >= n {
                vec![Assignment::Contain(span)]
            } else {
                vec![]
            });
        }
        // max-length: maximal token windows of byte length <= n.
        let toks: Vec<Token> = doc.token_slice(&span).to_vec();
        let mut out: Vec<Assignment> = Vec::new();
        let mut j = 0usize;
        let mut last_j: Option<usize> = None;
        for i in 0..toks.len() {
            if j < i {
                j = i;
            }
            while j + 1 < toks.len() && toks[j + 1].end - toks[i].start <= n {
                j += 1;
            }
            if toks[j].end - toks[i].start > n {
                continue; // single token longer than n
            }
            // maximal: previous window must not already cover this one
            if last_j != Some(j) {
                out.push(Assignment::Contain(Span::new(
                    span.doc,
                    toks[i].start,
                    toks[j].end,
                )));
                last_j = Some(j);
            }
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        if self.is_max {
            format!("what is the maximum length (characters) of {attr}?")
        } else {
            format!("what is the minimum length (characters) of {attr}?")
        }
    }
}

/// `starts-with(a) = "<pattern>"` / `ends-with(a) = "<pattern>"`:
/// regex-lite constraints on the value's boundary (§6.3).
pub struct PatternEdge {
    name: &'static str,
    at_start: bool,
}

impl PatternEdge {
    /// The `starts-with` feature.
    pub const fn starts_with() -> Self {
        PatternEdge {
            name: "starts-with",
            at_start: true,
        }
    }

    /// The `ends-with` feature.
    pub const fn ends_with() -> Self {
        PatternEdge {
            name: "ends-with",
            at_start: false,
        }
    }

    fn compile(&self, arg: &FeatureArg) -> Result<Pattern, FeatureError> {
        let src = expect_text(self.name, arg)?;
        Pattern::new(src).map_err(|e| FeatureError::BadPattern {
            feature: self.name.to_string(),
            message: e.to_string(),
        })
    }
}

impl Feature for PatternEdge {
    fn name(&self) -> &'static str {
        self.name
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        let pat = self.compile(arg)?;
        let text = store.span_text(&span);
        Ok(if self.at_start {
            pat.matches_prefix(text)
        } else {
            pat.matches_suffix(text)
        })
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let pat = self.compile(arg)?;
        let doc = store.doc(span.doc);
        let text = doc.text();
        let hay = &text[span.range()];
        let toks = doc.tokens();
        let mut out = Vec::new();
        for m in pat.find_iter(hay) {
            let abs_start = span.start + m.start as u32;
            let abs_end = span.start + m.end as u32;
            if self.at_start {
                // match must begin on a token boundary; candidates extend to
                // end of line
                if toks.token_at(abs_start).map(|t| t.start) != Some(abs_start) {
                    continue;
                }
                let (_, le) = super::shape::line_bounds_of(text, abs_start as usize);
                let region_end = (le as u32).min(span.end);
                if abs_start < region_end {
                    if let Some((s, e)) = toks.cover(toks.tokens_within(abs_start, region_end)) {
                        if s == abs_start {
                            out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                        }
                    }
                }
            } else {
                // match must end on a token boundary; candidates extend back
                // to start of line
                let ends_on_boundary = toks
                    .tokens()
                    .iter()
                    .any(|t| t.end == abs_end);
                if !ends_on_boundary {
                    continue;
                }
                let (ls, _) = super::shape::line_bounds_of(text, abs_start as usize);
                let region_start = (ls as u32).max(span.start);
                if region_start < abs_end {
                    if let Some((s, e)) = toks.cover(toks.tokens_within(region_start, abs_end)) {
                        if e == abs_end {
                            out.push(Assignment::Contain(Span::new(span.doc, s, e)));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        if self.at_start {
            format!("what pattern does {attr} start with?")
        } else {
            format!("what pattern does {attr} end with?")
        }
    }
}

/// `matches(a) = "<pattern>"`: the whole value matches the regex-lite
/// pattern — the strongest of the pattern features (e.g.
/// `matches(year) = "19\d\d|20\d\d"` pins a value to exactly a year).
pub struct MatchesPattern;

impl MatchesPattern {
    fn compile(arg: &FeatureArg) -> Result<Pattern, FeatureError> {
        let src = expect_text("matches", arg)?;
        Pattern::new(src).map_err(|e| FeatureError::BadPattern {
            feature: "matches".to_string(),
            message: e.to_string(),
        })
    }
}

impl Feature for MatchesPattern {
    fn name(&self) -> &'static str {
        "matches"
    }

    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        Ok(Self::compile(arg)?.matches_full(store.span_text(&span)))
    }

    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError> {
        let pat = Self::compile(arg)?;
        let doc = store.doc(span.doc);
        let toks = doc.tokens();
        let mut out = Vec::new();
        // every token-aligned match inside the region is a candidate; the
        // match must start and end on token boundaries
        let hay = &doc.text()[span.range()];
        for m in pat.find_iter(hay) {
            let s = span.start + m.start as u32;
            let e = span.start + m.end as u32;
            let r = toks.tokens_within(s, e);
            if toks.cover(r) == Some((s, e)) {
                out.push(Assignment::exact_span(Span::new(span.doc, s, e)));
            }
        }
        Ok(out)
    }

    fn question(&self, attr: &str) -> String {
        format!("what pattern does {attr} match exactly?")
    }
}

/// Line bounds helper shared by pattern-edge refinement.
pub(crate) fn line_bounds_of(text: &str, pos: usize) -> (usize, usize) {
    let start = text[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = text[pos..].find('\n').map(|i| pos + i).unwrap_or(text.len());
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(text: &str) -> (DocumentStore, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        let full = st.doc(id).full_span();
        (st, full)
    }

    #[test]
    fn capitalized_runs() {
        let (st, full) = setup("the Big Sleep and Casablanca movie");
        let out = Capitalized.refine(&st, full, &FeatureArg::yes()).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["Big Sleep", "Casablanca"]);
    }

    #[test]
    fn person_name_windows() {
        let (st, full) = setup("panelist Alice Mary Smith spoke");
        let out = PersonName.refine(&st, full, &FeatureArg::yes()).unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert!(texts.contains(&"Alice Mary"));
        assert!(texts.contains(&"Mary Smith"));
        assert!(texts.contains(&"Alice Mary Smith"));
        assert!(out.iter().all(|a| matches!(a, Assignment::Exact(_))));
    }

    #[test]
    fn person_name_verify() {
        let (st, full) = setup("Alice Smith");
        assert!(PersonName.verify(&st, full, &FeatureArg::yes()).unwrap());
        let (st2, full2) = setup("alice smith");
        assert!(!PersonName.verify(&st2, full2, &FeatureArg::yes()).unwrap());
    }

    #[test]
    fn max_length_windows() {
        let (st, full) = setup("aa bb cc dd");
        let out = LengthBound::max()
            .refine(&st, full, &FeatureArg::Num(5.0))
            .unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["aa bb", "bb cc", "cc dd"]);
    }

    #[test]
    fn max_length_skips_oversized_tokens() {
        let (st, full) = setup("tiny enormouslylongword ok");
        let out = LengthBound::max()
            .refine(&st, full, &FeatureArg::Num(4.0))
            .unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["tiny", "ok"]);
    }

    #[test]
    fn min_length_keeps_or_drops() {
        let (st, full) = setup("short");
        let keep = LengthBound::min()
            .refine(&st, full, &FeatureArg::Num(3.0))
            .unwrap();
        assert_eq!(keep.len(), 1);
        let drop = LengthBound::min()
            .refine(&st, full, &FeatureArg::Num(100.0))
            .unwrap();
        assert!(drop.is_empty());
    }

    #[test]
    fn starts_with_pattern() {
        let (st, full) = setup("SIGMOD 2005 Conference\nlowercase line");
        let f = PatternEdge::starts_with();
        let out = f
            .refine(&st, full, &FeatureArg::Text("[A-Z][A-Z]+".into()))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            st.span_text(&out[0].span().unwrap()),
            "SIGMOD 2005 Conference"
        );
    }

    #[test]
    fn ends_with_pattern() {
        let (st, full) = setup("VLDB 2004\nno year here");
        let f = PatternEdge::ends_with();
        let out = f
            .refine(&st, full, &FeatureArg::Text("19\\d\\d|20\\d\\d".into()))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.span_text(&out[0].span().unwrap()), "VLDB 2004");
    }

    #[test]
    fn matches_feature_pins_exact_values() {
        let (st, full) = setup("VLDB 2004 and ICDE 05 are events in 1999");
        let f = MatchesPattern;
        let out = f
            .refine(&st, full, &FeatureArg::Text(r"19\d\d|20\d\d".into()))
            .unwrap();
        let texts: Vec<&str> = out
            .iter()
            .map(|a| st.span_text(&a.span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["2004", "1999"]);
        assert!(f
            .verify(&st, out[0].span().unwrap(), &FeatureArg::Text(r"19\d\d|20\d\d".into()))
            .unwrap());
    }

    #[test]
    fn bad_pattern_reported() {
        let (st, full) = setup("x");
        let f = PatternEdge::starts_with();
        assert!(matches!(
            f.verify(&st, full, &FeatureArg::Text("(".into())),
            Err(FeatureError::BadPattern { .. })
        ));
    }
}
