//! The [`Feature`] trait: `Verify` and `Refine` (§2.2.2, §4.2).
//!
//! To add a feature a developer implements only these two procedures —
//! done once, not per Alog program. `Verify(s, f, v)` checks `f(s) = v`;
//! `Refine(s, f, v)` returns all *maximal* sub-spans `t` of `s` with
//! `f(t) = v`, each as an `exact` or `contain` assignment depending on
//! whether sub-spans of the region still satisfy the constraint.

use crate::arg::{FeatureArg, FeatureError};
use iflex_ctable::{Assignment, Value};
use iflex_text::{DocumentStore, Span};

/// A text feature with its `Verify` / `Refine` procedures.
pub trait Feature: Send + Sync {
    /// The feature's name as written in Alog programs (`bold-font`, ...).
    fn name(&self) -> &'static str;

    /// Does `f(span) = arg` hold?
    fn verify(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError>;

    /// All maximal sub-spans of `span` satisfying `f(·) = arg`, encoded as
    /// assignments (`contain` when every token-aligned sub-span of the
    /// region also satisfies the constraint or when the region only bounds
    /// the value, `exact` when the region itself is the only candidate).
    fn refine(
        &self,
        store: &DocumentStore,
        span: Span,
        arg: &FeatureArg,
    ) -> Result<Vec<Assignment>, FeatureError>;

    /// Verifies the constraint against an arbitrary value. Span values use
    /// [`Feature::verify`]; other values default to *pass* (constraints on
    /// non-text constants are not this feature's business) unless a feature
    /// overrides (the numeric family does).
    fn verify_value(
        &self,
        store: &DocumentStore,
        value: &Value,
        arg: &FeatureArg,
    ) -> Result<bool, FeatureError> {
        match value {
            Value::Span(s) => self.verify(store, *s, arg),
            _ => Ok(false),
        }
    }

    /// Batch `Verify` over a contiguous run of spans (DESIGN.md §14): one
    /// call per *run* instead of one per tuple, so the engine's columnar
    /// operators amortize dispatch and let a feature share per-document
    /// work across the run. The default loops [`Feature::verify`];
    /// results must be positionally aligned with `spans` and identical to
    /// the per-span calls (features are pure, so overriding
    /// implementations only change cost, never results).
    fn verify_run(
        &self,
        store: &DocumentStore,
        spans: &[Span],
        arg: &FeatureArg,
    ) -> Result<Vec<bool>, FeatureError> {
        spans.iter().map(|&s| self.verify(store, s, arg)).collect()
    }

    /// Batch [`Feature::verify_value`] over a run of values, aligned
    /// positionally. Same purity contract as [`Feature::verify_run`].
    fn verify_value_run(
        &self,
        store: &DocumentStore,
        values: &[Value],
        arg: &FeatureArg,
    ) -> Result<Vec<bool>, FeatureError> {
        values
            .iter()
            .map(|v| self.verify_value(store, v, arg))
            .collect()
    }

    /// Batch `Refine` over a contiguous run of spans, aligned
    /// positionally. Same purity contract as [`Feature::verify_run`]: the
    /// engine's batch constraint path (`apply_constraint_run`) seeds its
    /// first refinement round from one `refine_run` call per column run,
    /// and results must match the per-span [`Feature::refine`] calls
    /// byte-for-byte.
    fn refine_run(
        &self,
        store: &DocumentStore,
        spans: &[Span],
        arg: &FeatureArg,
    ) -> Result<Vec<Vec<Assignment>>, FeatureError> {
        spans.iter().map(|&s| self.refine(store, s, arg)).collect()
    }

    /// Whether the refined regions of a `yes` answer should be *pruned
    /// further* by later constraints (true for every built-in).
    fn refinable(&self) -> bool {
        true
    }

    /// Human-readable question the next-effort assistant asks for this
    /// feature, e.g. `"is <attr> in bold font?"`.
    fn question(&self, attr: &str) -> String {
        format!("what is the value of {} for {attr}?", self.name())
    }
}

/// Helper for features whose argument must be tri-state.
pub fn expect_tri(
    feature: &'static str,
    arg: &FeatureArg,
) -> Result<crate::arg::FeatureValue, FeatureError> {
    arg.as_tri().ok_or(FeatureError::BadArg {
        feature: feature.to_string(),
        expected: "yes/distinct-yes/no",
    })
}

/// Helper for features whose argument must be numeric.
pub fn expect_num(feature: &'static str, arg: &FeatureArg) -> Result<f64, FeatureError> {
    arg.as_num().ok_or(FeatureError::BadArg {
        feature: feature.to_string(),
        expected: "number",
    })
}

/// Helper for features whose argument must be a string.
pub fn expect_text<'a>(
    feature: &'static str,
    arg: &'a FeatureArg,
) -> Result<&'a str, FeatureError> {
    arg.as_text().ok_or(FeatureError::BadArg {
        feature: feature.to_string(),
        expected: "string",
    })
}
