//! # iflex-features
//!
//! The built-in text-feature library of iFlex (§2.2.2, §4.2, §6.3). Each
//! feature implements exactly two procedures:
//!
//! * `Verify(s, f, v)` — does `f(s) = v` hold?
//! * `Refine(s, f, v)` — all maximal sub-spans `t` of `s` with `f(t) = v`,
//!   returned as `contain`/`exact` assignments ready to be placed in
//!   compact-table cells.
//!
//! Implementing these once per feature is all that is needed to make the
//! feature usable in any Alog program and by the next-effort assistant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arg;
pub mod context;
pub mod feature;
pub mod numeric;
pub mod registry;
pub mod shape;
pub mod structure;
pub mod style;

pub use arg::{FeatureArg, FeatureError, FeatureValue};
pub use feature::Feature;
pub use registry::FeatureRegistry;
