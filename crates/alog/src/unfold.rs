//! Rule unfolding (§4): replacing IE predicates in rule bodies with the
//! bodies of their description rules, unifying variables.

use crate::ast::{Arg, BodyAtom, Program, Rule, Term};
use std::collections::BTreeMap;

/// Unfolds all description rules into the non-description rules of
/// `program`. IE predicates with several description rules multiply the
/// using rule (one unfolded variant per combination). Predicates without
/// description rules (registered procedures) are left in place.
pub fn unfold(program: &Program) -> Program {
    let desc: BTreeMap<&str, Vec<&Rule>> = {
        let mut m: BTreeMap<&str, Vec<&Rule>> = BTreeMap::new();
        for r in program.description_rules() {
            m.entry(r.head.name.as_str()).or_default().push(r);
        }
        m
    };

    let mut rules = Vec::new();
    for rule in program.rules.iter().filter(|r| !r.is_description()) {
        let mut work = vec![rule.clone()];
        // Repeat until no IE predicate with a description rule remains.
        loop {
            let mut next = Vec::new();
            let mut changed = false;
            for r in work {
                match first_unfoldable(&r, &desc) {
                    None => next.push(r),
                    Some(idx) => {
                        changed = true;
                        let name = match &r.body[idx] {
                            BodyAtom::Pred { name, .. } => name.clone(),
                            _ => unreachable!(),
                        };
                        for d in &desc[name.as_str()] {
                            next.push(unfold_at(&r, idx, d, next.len()));
                        }
                    }
                }
            }
            work = next;
            if !changed {
                break;
            }
        }
        rules.extend(work);
    }

    Program {
        rules,
        query: program.query.clone(),
    }
}

fn first_unfoldable(rule: &Rule, desc: &BTreeMap<&str, Vec<&Rule>>) -> Option<usize> {
    rule.body.iter().position(|a| {
        matches!(a, BodyAtom::Pred { name, .. } if desc.contains_key(name.as_str()))
    })
}

/// Replaces `rule.body[idx]` (a call to `desc`'s head) with `desc`'s body,
/// substituting head variables by the call arguments and freshening every
/// other variable of the description rule.
fn unfold_at(rule: &Rule, idx: usize, desc: &Rule, uniq: usize) -> Rule {
    let call_args = match &rule.body[idx] {
        BodyAtom::Pred { args, .. } => args.clone(),
        _ => unreachable!(),
    };
    // Head var → caller term.
    let mut subst: BTreeMap<&str, Term> = BTreeMap::new();
    for (harg, carg) in desc.head.args.iter().zip(call_args.iter()) {
        subst.insert(harg.var.as_str(), carg.term.clone());
    }
    let fresh_prefix = format!("__{}_{uniq}_", desc.head.name);
    let rename = |t: &Term| -> Term {
        match t {
            Term::Var(v) => match subst.get(v.as_str()) {
                Some(mapped) => mapped.clone(),
                None => Term::Var(format!("{fresh_prefix}{v}")),
            },
            other => other.clone(),
        }
    };
    let mut new_body = Vec::with_capacity(rule.body.len() + desc.body.len() - 1);
    new_body.extend_from_slice(&rule.body[..idx]);
    for atom in &desc.body {
        new_body.push(match atom {
            BodyAtom::Pred { name, args } => BodyAtom::Pred {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| Arg {
                        term: rename(&a.term),
                        input: a.input,
                    })
                    .collect(),
            },
            BodyAtom::Compare {
                left,
                op,
                right,
                offset,
            } => BodyAtom::Compare {
                left: rename(left),
                op: *op,
                right: rename(right),
                offset: *offset,
            },
            BodyAtom::Constraint {
                feature,
                var,
                value,
            } => {
                let new_var = match rename(&Term::Var(var.clone())) {
                    Term::Var(v) => v,
                    // A constraint var substituted by a constant would be a
                    // validation error upstream; keep the original name.
                    _ => var.clone(),
                };
                BodyAtom::Constraint {
                    feature: feature.clone(),
                    var: new_var,
                    value: value.clone(),
                }
            }
        });
    }
    new_body.extend_from_slice(&rule.body[idx + 1..]);
    Rule {
        head: rule.head.clone(),
        body: new_body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn figure_4_unfolding() {
        let prog = parse_program(
            r#"
            houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
            schools(s)? :- schoolPages(y), extractSchools(#y, s).
            extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                          numeric(p) = yes, numeric(a) = yes.
            extractSchools(#y, s) :- from(#y, s), bold-font(s) = yes.
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        assert_eq!(unf.rules.len(), 2);
        let houses = &unf.rules[0];
        // extractHouses replaced with 3 from's + 2 constraints
        assert_eq!(houses.body.len(), 1 + 3 + 2);
        let s = houses.to_string();
        assert!(s.contains("from(#x, p)"));
        assert!(s.contains("numeric(p) = yes"));
        assert!(!s.contains("extractHouses"));
        // annotations preserved
        assert_eq!(houses.head.annotated_vars(), vec!["p", "a", "h"]);
        let schools = &unf.rules[1];
        assert!(schools.head.existence);
        assert!(schools.to_string().contains("bold-font(s) = yes"));
    }

    #[test]
    fn unfolding_renames_local_vars() {
        let prog = parse_program(
            r#"
            q(x, v) :- base(x), e(#x, v).
            e(#d, out) :- from(#d, tmp), from(#d, out), numeric(tmp) = yes.
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        let s = unf.rules[0].to_string();
        // `tmp` is local to the description rule and must be freshened
        assert!(s.contains("__e_"), "{s}");
        // `d` maps to x, `out` maps to v
        assert!(s.contains("from(#x"));
        assert!(s.contains(", v)"), "{s}");
    }

    #[test]
    fn multiple_description_rules_multiply() {
        let prog = parse_program(
            r#"
            q(x, v) :- base(x), e(#x, v).
            e(#d, o) :- from(#d, o), numeric(o) = yes.
            e(#d, o) :- from(#d, o), bold-font(o) = yes.
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        assert_eq!(unf.rules.len(), 2);
        assert!(unf.rules.iter().all(|r| r.head.name == "q"));
    }

    #[test]
    fn procedures_left_in_place() {
        let prog = parse_program("q(x) :- base(x), proc(#x, y), y > 3.").unwrap();
        let unf = unfold(&prog);
        assert!(unf.rules[0].to_string().contains("proc(#x, y)"));
    }

    #[test]
    fn nested_unfolding() {
        let prog = parse_program(
            r#"
            q(v) :- base(x), outer(#x, v).
            outer(#d, o) :- inner(#d, o), numeric(o) = yes.
            inner(#d, o) :- from(#d, o).
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        assert_eq!(unf.rules.len(), 1);
        let s = unf.rules[0].to_string();
        assert!(s.contains("from(#x"));
        assert!(!s.contains("outer"));
        assert!(!s.contains("inner("));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn constants_survive_unfolding() {
        let prog = parse_program(
            r#"
            q(v) :- base(x), e(#x, v, "label").
            e(#d, o, l) :- from(#d, o), p(l).
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        assert!(unf.rules[0].to_string().contains("p(\"label\")"), "{}", unf.rules[0]);
    }

    #[test]
    fn same_predicate_twice_in_one_rule() {
        let prog = parse_program(
            r#"
            q(a, b) :- t1(x), e(#x, a), t2(y), e(#y, b).
            e(#d, o) :- from(#d, o), numeric(o) = yes.
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        assert_eq!(unf.rules.len(), 1);
        let s = unf.rules[0].to_string();
        assert!(s.contains("from(#x, a)"));
        assert!(s.contains("from(#y, b)"));
        // local variables of the two call sites stay distinct
        assert!(!s.contains("extract"), "{s}");
    }

    #[test]
    fn annotations_never_migrate_into_unfolded_bodies() {
        let prog = parse_program(
            r#"
            q(x, <v>)? :- base(x), e(#x, v).
            e(#d, o) :- from(#d, o).
        "#,
        )
        .unwrap();
        let unf = unfold(&prog);
        let head = &unf.rules[0].head;
        assert!(head.existence);
        assert_eq!(head.annotated_vars(), vec!["v"]);
        assert_eq!(unf.rules[0].body.len(), 2);
    }
}
