//! Lexer for the Alog surface syntax.

use std::fmt;

/// A token of the Alog language.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier: `housePages`, `bold-font`, `b&n_price`, `NULL`.
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:-`
    ColonDash,
    /// `.` — rule terminator
    Dot,
    /// `?` — existence annotation
    Question,
    /// `#` — input-argument marker
    Hash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=` (also `≠`)
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::ColonDash => write!(f, ":-"),
            Tok::Dot => write!(f, "."),
            Tok::Question => write!(f, "?"),
            Tok::Hash => write!(f, "#"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
        }
    }
}

/// A token plus its line/column, for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The tok.
    pub tok: Tok,
    /// The line.
    pub line: u32,
    /// The col.
    pub col: u32,
}

/// Lexing/parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// The line.
    pub line: u32,
    /// The col.
    pub col: u32,
    /// The message.
    pub message: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for SyntaxError {}

fn ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '&'
}

/// Tokenizes Alog source. Comments run from `%` or `//` to end of line.
/// Identifiers may contain interior hyphens (`bold-font`) when both sides
/// are identifier characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, SyntaxError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(SpannedTok {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ',' => push!(Tok::Comma, 1),
            '.' => push!(Tok::Dot, 1),
            '?' => push!(Tok::Question, 1),
            '#' => push!(Tok::Hash, 1),
            '=' => push!(Tok::Eq, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::Le, 2)
                } else {
                    push!(Tok::Lt, 1)
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::Ge, 2)
                } else {
                    push!(Tok::Gt, 1)
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::Ne, 2)
                } else {
                    return Err(SyntaxError {
                        line,
                        col,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            ':' => {
                if chars.get(i + 1) == Some(&'-') {
                    push!(Tok::ColonDash, 2)
                } else {
                    return Err(SyntaxError {
                        line,
                        col,
                        message: "expected '-' after ':'".into(),
                    });
                }
            }
            '≠' => push!(Tok::Ne, 1),
            '"' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        None | Some('\n') => {
                            return Err(SyntaxError {
                                line,
                                col,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some('"') => break,
                        Some('\\') => {
                            match chars.get(j + 1) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(&other) => s.push(other),
                                None => {
                                    return Err(SyntaxError {
                                        line,
                                        col,
                                        message: "dangling escape in string".into(),
                                    })
                                }
                            }
                            j += 2;
                        }
                        Some(&other) => {
                            s.push(other);
                            j += 1;
                        }
                    }
                }
                let len = j + 1 - i;
                push!(Tok::Str(s), len);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    // A '.' followed by a non-digit ends the number (it is
                    // the rule terminator).
                    if chars[j] == '.'
                        && !chars.get(j + 1).map(|c| c.is_ascii_digit()).unwrap_or(false)
                    {
                        break;
                    }
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let n: f64 = text.parse().map_err(|_| SyntaxError {
                    line,
                    col,
                    message: format!("bad number: {text}"),
                })?;
                let len = j - start;
                push!(Tok::Num(n), len);
            }
            c if ident_start(c) => {
                let start = i;
                let mut j = i + 1;
                loop {
                    match chars.get(j) {
                        Some(&ch) if ident_continue(ch) => j += 1,
                        // interior hyphen: bold-font, distinct-yes
                        Some('-')
                            if chars
                                .get(j + 1)
                                .map(|c| ident_continue(*c))
                                .unwrap_or(false) =>
                        {
                            j += 2
                        }
                        _ => break,
                    }
                }
                let text: String = chars[start..j].iter().collect();
                let len = j - start;
                push!(Tok::Ident(text), len);
            }
            other => {
                return Err(SyntaxError {
                    line,
                    col,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_rule_tokens() {
        let ts = toks("q(x) :- p(x), x > 5.");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::ColonDash,
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Comma,
                Tok::Ident("x".into()),
                Tok::Gt,
                Tok::Num(5.0),
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn hyphen_and_amp_identifiers() {
        let ts = toks("bold-font b&n_price distinct-yes");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("bold-font".into()),
                Tok::Ident("b&n_price".into()),
                Tok::Ident("distinct-yes".into()),
            ]
        );
    }

    #[test]
    fn number_then_rule_dot() {
        // "x > 5." — the '.' terminates the rule, not the number
        let ts = toks("5. 3.5");
        assert_eq!(ts, vec![Tok::Num(5.0), Tok::Dot, Tok::Num(3.5)]);
    }

    #[test]
    fn strings_with_escapes() {
        let ts = toks(r#""Price:" "a\"b""#);
        assert_eq!(
            ts,
            vec![Tok::Str("Price:".into()), Tok::Str("a\"b".into())]
        );
    }

    #[test]
    fn comparison_operators() {
        let ts = toks("< <= > >= = != ≠");
        assert_eq!(
            ts,
            vec![Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Ne, Tok::Ne]
        );
    }

    #[test]
    fn comments_skipped() {
        let ts = toks("a % comment\nb // other\nc");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into())
            ]
        );
    }

    #[test]
    fn errors_have_positions() {
        let e = lex("a\n  @").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 3);
        assert!(lex("\"open").is_err());
        assert!(lex(": x").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn hash_inputs() {
        let ts = toks("from(#x, y)");
        assert!(ts.contains(&Tok::Hash));
    }
}
