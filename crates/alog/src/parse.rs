//! Parser for Alog programs.

use crate::ast::{Arg, BodyAtom, CmpOp, ConstraintArg, Head, HeadArg, Program, Rule, Term};
use crate::lex::{lex, SpannedTok, SyntaxError, Tok};


/// Parses a whole program. The query predicate defaults to the head of the
/// last non-description rule.
pub fn parse_program(src: &str) -> Result<Program, SyntaxError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    let query = rules
        .iter()
        .rev()
        .find(|r| !r.is_description())
        .or(rules.last())
        .map(|r| r.head.name.clone())
        .unwrap_or_default();
    Ok(Program { rules, query })
}

/// Parses a single rule (must consume all input).
pub fn parse_rule(src: &str) -> Result<Rule, SyntaxError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let r = p.rule()?;
    if !p.at_end() {
        return Err(p.err("trailing tokens after rule"));
    }
    Ok(r)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> SyntaxError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        SyntaxError {
            line,
            col,
            message: msg.to_string(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), SyntaxError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!(
                "expected {what}, found {}",
                self.peek().map(|t| t.to_string()).unwrap_or("end".into())
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SyntaxError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                if let Some(Tok::Ident(s)) = self.bump() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    fn rule(&mut self) -> Result<Rule, SyntaxError> {
        let head = self.head()?;
        self.expect(&Tok::ColonDash, "':-'")?;
        let mut body = vec![self.atom()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            body.push(self.atom()?);
        }
        self.expect(&Tok::Dot, "'.' at end of rule")?;
        Ok(Rule { head, body })
    }

    fn head(&mut self) -> Result<Head, SyntaxError> {
        let name = self.ident("rule head predicate name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.head_arg()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        let existence = if self.peek() == Some(&Tok::Question) {
            self.pos += 1;
            true
        } else {
            false
        };
        Ok(Head {
            name,
            args,
            existence,
        })
    }

    fn head_arg(&mut self) -> Result<HeadArg, SyntaxError> {
        match self.peek() {
            Some(Tok::Hash) => {
                self.pos += 1;
                let var = self.ident("input variable after '#'")?;
                Ok(HeadArg {
                    var,
                    input: true,
                    annotated: false,
                })
            }
            Some(Tok::Lt) => {
                self.pos += 1;
                let var = self.ident("annotated variable after '<'")?;
                self.expect(&Tok::Gt, "'>' closing attribute annotation")?;
                Ok(HeadArg {
                    var,
                    input: false,
                    annotated: true,
                })
            }
            _ => {
                let var = self.ident("head variable")?;
                Ok(HeadArg {
                    var,
                    input: false,
                    annotated: false,
                })
            }
        }
    }

    fn atom(&mut self) -> Result<BodyAtom, SyntaxError> {
        // Predicate or constraint when IDENT '('; otherwise a comparison.
        if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() == Some(&Tok::LParen) {
            let name = self.ident("predicate name")?;
            self.expect(&Tok::LParen, "'('")?;
            let mut args = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    let input = if self.peek() == Some(&Tok::Hash) {
                        self.pos += 1;
                        true
                    } else {
                        false
                    };
                    let term = self.term()?;
                    args.push(Arg { term, input });
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "')'")?;
            if self.peek() == Some(&Tok::Eq) {
                // Domain constraint: feature(var) = value
                self.pos += 1;
                let value = self.constraint_arg()?;
                if args.len() != 1 {
                    return Err(self.err("domain constraint takes exactly one variable"));
                }
                let var = match &args[0].term {
                    Term::Var(v) => v.clone(),
                    _ => return Err(self.err("domain constraint argument must be a variable")),
                };
                return Ok(BodyAtom::Constraint {
                    feature: name,
                    var,
                    value,
                });
            }
            return Ok(BodyAtom::Pred { name, args });
        }
        // Comparison.
        let left = self.term()?;
        let op = match self.bump() {
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            _ => return Err(self.err("expected comparison operator")),
        };
        let right = self.term()?;
        let mut offset = 0.0;
        if matches!(self.peek(), Some(Tok::Plus) | Some(Tok::Minus)) {
            let negate = self.peek() == Some(&Tok::Minus);
            self.pos += 1;
            match self.bump() {
                Some(Tok::Num(n)) => offset = if negate { -n } else { n },
                _ => return Err(self.err("expected number after '+'/'-'")),
            }
        }
        Ok(BodyAtom::Compare {
            left,
            op,
            right,
            offset,
        })
    }

    fn term(&mut self) -> Result<Term, SyntaxError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == "NULL" => Ok(Term::Null),
            Some(Tok::Ident(s)) => Ok(Term::Var(s)),
            Some(Tok::Num(n)) => Ok(Term::Num(n)),
            Some(Tok::Str(s)) => Ok(Term::Str(s)),
            _ => Err(self.err("expected a term")),
        }
    }

    fn constraint_arg(&mut self) -> Result<ConstraintArg, SyntaxError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(ConstraintArg::Symbol(s)),
            Some(Tok::Num(n)) => Ok(ConstraintArg::Num(n)),
            Some(Tok::Str(s)) => Ok(ConstraintArg::Str(s)),
            _ => Err(self.err("expected constraint value (yes/no/number/string)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BodyAtom;

    #[test]
    fn parses_figure_2_program() {
        let src = r#"
            % Figure 2.c of the paper
            houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
            schools(s)? :- schoolPages(y), extractSchools(#y, s).
            Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                             a > 4500, approxMatch(#h, #s).
            extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                          numeric(p) = yes, numeric(a) = yes.
            extractSchools(#y, s) :- from(#y, s), bold-font(s) = yes.
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.rules.len(), 5);
        assert_eq!(prog.query, "Q");
        let houses = &prog.rules[0];
        assert_eq!(houses.head.annotated_vars(), vec!["p", "a", "h"]);
        assert!(!houses.head.existence);
        let schools = &prog.rules[1];
        assert!(schools.head.existence);
        assert!(prog.rules[3].is_description());
        assert!(prog.rules[4].is_description());
        assert_eq!(prog.description_rules().count(), 2);
    }

    #[test]
    fn constraint_forms() {
        let r = parse_rule(
            r#"e(#d, x) :- from(#d, x), preceded-by(x) = "Price:", max-value(x) = 100, bold-font(x) = distinct-yes."#,
        )
        .unwrap();
        let consts: Vec<_> = r
            .body
            .iter()
            .filter(|a| matches!(a, BodyAtom::Constraint { .. }))
            .collect();
        assert_eq!(consts.len(), 3);
    }

    #[test]
    fn comparisons_including_null() {
        let r = parse_rule("t4(t) :- pubs(t, jy), jy != NULL, t = t.").unwrap();
        assert!(matches!(
            &r.body[1],
            BodyAtom::Compare {
                right: Term::Null,
                op: CmpOp::Ne,
                ..
            }
        ));
    }

    #[test]
    fn query_defaults_to_last_non_description() {
        let src = r#"
            a(x) :- base(x).
            e(#d, x) :- from(#d, x).
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.query, "a");
    }

    #[test]
    fn string_constants_in_predicates() {
        let r = parse_rule(r#"q(x) :- p(x, "Lincoln"), x > 3."#).unwrap();
        match &r.body[0] {
            BodyAtom::Pred { args, .. } => {
                assert_eq!(args[1].term, Term::Str("Lincoln".into()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse_rule("q(x)").is_err()); // no body
        assert!(parse_rule("q(x) :- p(x)").is_err()); // missing dot
        assert!(parse_rule("q(x) :- numeric(a, b) = yes.").is_err()); // 2-arg constraint
        assert!(parse_rule("q(x) :- numeric(3) = yes.").is_err()); // const constraint
        assert!(parse_rule("q(<x) :- p(x).").is_err()); // unclosed annotation
        assert!(parse_program("q(x) :- p(x). extra").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = "houses(x, <p>)? :- housePages(x), numeric(p) = yes, p > 500000.";
        let r = parse_rule(src).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn task_t8_style_rule() {
        let r = parse_rule(
            "t8(title) :- amazon(x), extractAmazon(#x, listPrice, newPrice, usedPrice), listPrice = newPrice, usedPrice < newPrice.",
        )
        .unwrap();
        assert_eq!(r.body.len(), 4);
        assert!(matches!(&r.body[2], BodyAtom::Compare { op: CmpOp::Eq, .. }));
    }
}
