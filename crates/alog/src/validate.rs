//! Static checks on Alog programs: safety (§2.2.2), no recursion, sane
//! annotations, and bound constraint variables.

use crate::ast::{BodyAtom, Program, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What the validator knows about the outside world.
#[derive(Debug, Clone, Default)]
pub struct ValidateEnv {
    /// Extensional relation names (tables provided to the program).
    pub extensional: BTreeSet<String>,
    /// Registered p-predicates / p-functions (procedures), e.g.
    /// `approxMatch`, `similar`, or cleanup procedures.
    pub procedures: BTreeSet<String>,
}

impl ValidateEnv {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds extensional relation names.
    pub fn with_extensional(mut self, names: &[&str]) -> Self {
        self.extensional.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Adds registered procedure names.
    pub fn with_procedures(mut self, names: &[&str]) -> Self {
        self.procedures.extend(names.iter().map(|s| s.to_string()));
        self
    }
}

/// A validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// A head variable is not bound by the body (unsafe rule).
    Unsafe {
        /// The offending rule, rendered.
        rule: String,
        /// The variable concerned.
        var: String,
    },
    /// The dependency graph has a cycle (Xlog forbids recursion).
    Recursive {
        /// The predicate on the cycle.
        predicate: String,
    },
    /// A constraint refers to a variable not bound by any predicate.
    UnboundConstraintVar {
        /// The offending rule, rendered.
        rule: String,
        /// The variable concerned.
        var: String,
    },
    /// A description-rule head carries annotations (not allowed; annotate
    /// the rule that *uses* the IE predicate instead).
    AnnotatedDescription {
        /// The offending rule, rendered.
        rule: String,
    },
    /// A body predicate is neither extensional, intensional, a description
    /// rule head, a registered procedure, nor the built-in `from`.
    UnknownPredicate {
        /// The offending rule, rendered.
        rule: String,
        /// The predicate / relation name.
        name: String,
    },
    /// The query predicate has no defining rule.
    MissingQuery {
        /// The predicate / relation name.
        name: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Unsafe { rule, var } => {
                write!(f, "unsafe rule (head var {var} unbound): {rule}")
            }
            ValidateError::Recursive { predicate } => {
                write!(f, "recursion through predicate {predicate} is not allowed")
            }
            ValidateError::UnboundConstraintVar { rule, var } => {
                write!(f, "constraint variable {var} is not bound in: {rule}")
            }
            ValidateError::AnnotatedDescription { rule } => {
                write!(f, "description rule may not be annotated: {rule}")
            }
            ValidateError::UnknownPredicate { rule, name } => {
                write!(f, "unknown predicate {name} in: {rule}")
            }
            ValidateError::MissingQuery { name } => {
                write!(f, "query predicate {name} has no defining rule")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates `program` against `env`. Returns all errors found.
pub fn validate(program: &Program, env: &ValidateEnv) -> Vec<ValidateError> {
    let mut errors = Vec::new();
    let heads: BTreeSet<&str> = program.rules.iter().map(|r| r.head.name.as_str()).collect();
    let desc_heads: BTreeSet<&str> = program
        .description_rules()
        .map(|r| r.head.name.as_str())
        .collect();

    // Query must exist.
    if !program.query.is_empty() && !heads.contains(program.query.as_str()) {
        errors.push(ValidateError::MissingQuery {
            name: program.query.clone(),
        });
    }

    for rule in &program.rules {
        let rule_str = rule.to_string();

        // Annotated description rules are rejected.
        if rule.is_description() && (rule.head.existence || !rule.head.annotated_vars().is_empty())
        {
            errors.push(ValidateError::AnnotatedDescription {
                rule: rule_str.clone(),
            });
        }

        // Bound variables: appear (as non-input or input) in some predicate.
        let mut bound: BTreeSet<&str> = BTreeSet::new();
        // Description-rule inputs are provided by the caller.
        for a in &rule.head.args {
            if a.input {
                bound.insert(a.var.as_str());
            }
        }
        for atom in &rule.body {
            if let BodyAtom::Pred { args, .. } = atom {
                for a in args {
                    if let Term::Var(v) = &a.term {
                        bound.insert(v.as_str());
                    }
                }
            }
        }

        // Safety: every non-input head var bound.
        for a in &rule.head.args {
            if !a.input && !bound.contains(a.var.as_str()) {
                errors.push(ValidateError::Unsafe {
                    rule: rule_str.clone(),
                    var: a.var.clone(),
                });
            }
        }

        // Constraint vars bound.
        for atom in &rule.body {
            if let BodyAtom::Constraint { var, .. } = atom {
                if !bound.contains(var.as_str()) {
                    errors.push(ValidateError::UnboundConstraintVar {
                        rule: rule_str.clone(),
                        var: var.clone(),
                    });
                }
            }
        }

        // Known predicates.
        for atom in &rule.body {
            if let BodyAtom::Pred { name, .. } = atom {
                let known = name == "from"
                    || heads.contains(name.as_str())
                    || desc_heads.contains(name.as_str())
                    || env.extensional.contains(name)
                    || env.procedures.contains(name);
                if !known {
                    errors.push(ValidateError::UnknownPredicate {
                        rule: rule_str.clone(),
                        name: name.clone(),
                    });
                }
            }
        }
    }

    // Recursion check: DFS over head → body-predicate edges.
    let mut deps: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in &program.rules {
        let entry = deps.entry(rule.head.name.as_str()).or_default();
        for atom in &rule.body {
            if let BodyAtom::Pred { name, .. } = atom {
                if heads.contains(name.as_str()) {
                    entry.insert(name.as_str());
                }
            }
        }
    }
    let mut visiting: BTreeSet<&str> = BTreeSet::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    fn dfs<'a>(
        node: &'a str,
        deps: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        visiting: &mut BTreeSet<&'a str>,
        done: &mut BTreeSet<&'a str>,
    ) -> Option<&'a str> {
        if done.contains(node) {
            return None;
        }
        if !visiting.insert(node) {
            return Some(node);
        }
        if let Some(next) = deps.get(node) {
            for n in next {
                if let Some(cyc) = dfs(n, deps, visiting, done) {
                    return Some(cyc);
                }
            }
        }
        visiting.remove(node);
        done.insert(node);
        None
    }
    let nodes: Vec<&str> = deps.keys().copied().collect();
    for n in nodes {
        if let Some(cyc) = dfs(n, &deps, &mut visiting, &mut done) {
            errors.push(ValidateError::Recursive {
                predicate: cyc.to_string(),
            });
            break;
        }
    }

    errors
}

/// Topological evaluation order of intensional predicates (dependencies
/// first). Fails when the program is recursive.
pub fn evaluation_order(program: &Program) -> Result<Vec<String>, ValidateError> {
    let heads: BTreeSet<&str> = program
        .rules
        .iter()
        .filter(|r| !r.is_description())
        .map(|r| r.head.name.as_str())
        .collect();
    let mut deps: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in program.rules.iter().filter(|r| !r.is_description()) {
        let entry = deps.entry(rule.head.name.as_str()).or_default();
        for atom in &rule.body {
            if let BodyAtom::Pred { name, .. } = atom {
                if heads.contains(name.as_str()) && name != &rule.head.name {
                    entry.insert(name.as_str());
                }
            }
        }
    }
    let mut order: Vec<String> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let mut guard = 0usize;
    while done.len() < deps.len() {
        guard += 1;
        if guard > deps.len() + 1 {
            return Err(ValidateError::Recursive {
                predicate: deps
                    .keys()
                    .find(|k| !done.contains(**k))
                    .copied()
                    .unwrap_or("?")
                    .to_string(),
            });
        }
        for (head, ds) in &deps {
            if done.contains(head) {
                continue;
            }
            if ds.iter().all(|d| done.contains(d)) {
                done.insert(head);
                order.push(head.to_string());
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn env() -> ValidateEnv {
        ValidateEnv::new()
            .with_extensional(&["housePages", "schoolPages"])
            .with_procedures(&["approxMatch"])
    }

    #[test]
    fn figure_2_program_validates() {
        let prog = parse_program(
            r#"
            houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
            schools(s)? :- schoolPages(y), extractSchools(#y, s).
            Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                             a > 4500, approxMatch(#h, #s).
            extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                          numeric(p) = yes, numeric(a) = yes.
            extractSchools(#y, s) :- from(#y, s), bold-font(s) = yes.
        "#,
        )
        .unwrap();
        assert_eq!(validate(&prog, &env()), vec![]);
    }

    #[test]
    fn unsafe_rule_detected() {
        // §2.2.2: extractHouses without `from` is unsafe.
        let prog = parse_program(
            "extractHouses(#x, p, a) :- numeric(p) = yes, numeric(a) = yes.",
        )
        .unwrap();
        let errs = validate(&prog, &env());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::Unsafe { var, .. } if var == "p")));
        // constraint vars also unbound
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnboundConstraintVar { .. })));
    }

    #[test]
    fn recursion_detected() {
        let prog = parse_program(
            r#"
            a(x) :- b(x).
            b(x) :- a(x).
        "#,
        )
        .unwrap();
        let errs = validate(&prog, &env());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::Recursive { .. })));
        assert!(evaluation_order(&prog).is_err());
    }

    #[test]
    fn unknown_predicate_detected() {
        let prog = parse_program("a(x) :- mystery(x).").unwrap();
        let errs = validate(&prog, &env());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnknownPredicate { name, .. } if name == "mystery")));
    }

    #[test]
    fn annotated_description_rejected() {
        let prog = parse_program("e(#d, <x>) :- from(#d, x).").unwrap();
        let errs = validate(&prog, &env());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::AnnotatedDescription { .. })));
    }

    #[test]
    fn evaluation_order_respects_deps() {
        let prog = parse_program(
            r#"
            base2(x) :- housePages(x).
            mid(x) :- base2(x).
            top(x) :- mid(x), base2(x).
        "#,
        )
        .unwrap();
        let order = evaluation_order(&prog).unwrap();
        let pos = |n: &str| order.iter().position(|o| o == n).unwrap();
        assert!(pos("base2") < pos("mid"));
        assert!(pos("mid") < pos("top"));
    }

    #[test]
    fn missing_query_detected() {
        let mut prog = parse_program("a(x) :- housePages(x).").unwrap();
        prog.query = "nothere".into();
        let errs = validate(&prog, &env());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MissingQuery { .. })));
    }
}
