//! Abstract syntax of Alog programs (§2).
//!
//! An Alog program is a set of rules `head :- body.` where:
//!
//! * the head may carry an **existence annotation** (`p(...)? :- ...`) and
//!   per-attribute **attribute annotations** (`p(x, <y>) :- ...`);
//! * body atoms are predicates (extensional, intensional, or p-predicates
//!   with `#`-marked input arguments), comparisons (`p > 500000`,
//!   `listPrice = newPrice`, `journalYear != NULL`), and **domain
//!   constraints** (`numeric(p) = yes`, `preceded-by(p) = "Price:"`);
//! * rules whose head has `#`-marked input variables are **description
//!   rules** partially implementing an IE predicate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// A variable (`x`, `price`).
    Var(String),
    /// A numeric constant (`500000`).
    Num(f64),
    /// A string constant (`"Lincoln"`).
    Str(String),
    /// The NULL constant.
    Null,
}

impl Term {
    /// The variable name, when this term is one.
    pub fn var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Term::Str(s) => write!(f, "{s:?}"),
            Term::Null => write!(f, "NULL"),
        }
    }
}

/// Comparison operators allowed in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        })
    }
}

/// The right-hand side of a domain constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConstraintArg {
    /// `yes`, `distinct-yes`, `no`, `distinct-no`, `unknown`.
    Symbol(String),
    /// A number (`max-value(p) = 1000000`).
    Num(f64),
    /// A string (`preceded-by(p) = "Price:"`).
    Str(String),
}

impl fmt::Display for ConstraintArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintArg::Symbol(s) => write!(f, "{s}"),
            ConstraintArg::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            ConstraintArg::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// One argument of a predicate atom: a term plus its input marker (`#x`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arg {
    /// The term.
    pub term: Term,
    /// True when written `#x`: the argument is an *input* the predicate
    /// must be given (the paper's overlined variables).
    pub input: bool,
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.input {
            write!(f, "#")?;
        }
        write!(f, "{}", self.term)
    }
}

/// A body atom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BodyAtom {
    /// `name(arg, ...)` — extensional/intensional relation, p-predicate, or
    /// the built-in `from(#x, y)`.
    Pred {
        /// The predicate / relation name.
        name: String,
        /// Arguments in order.
        args: Vec<Arg>,
    },
    /// `left OP right (+ offset)` — the optional constant offset supports
    /// bounds like `lastPage < firstPage + 5` (task T5).
    Compare {
        /// Left operand.
        left: Term,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Term,
        /// Constant added to the right operand.
        offset: f64,
    },
    /// `feature(var) = value` — a domain constraint (§2.2.2).
    Constraint {
        /// The feature name.
        feature: String,
        /// The variable concerned.
        var: String,
        /// The constraint value.
        value: ConstraintArg,
    },
}

impl fmt::Display for BodyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyAtom::Pred { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            BodyAtom::Compare {
                left,
                op,
                right,
                offset,
            } => {
                write!(f, "{left} {op} {right}")?;
                if *offset > 0.0 {
                    write!(f, " + {offset}")?;
                } else if *offset < 0.0 {
                    write!(f, " - {}", -offset)?;
                }
                Ok(())
            }
            BodyAtom::Constraint {
                feature,
                var,
                value,
            } => write!(f, "{feature}({var}) = {value}"),
        }
    }
}

/// One head argument: a variable, its input marker, and its attribute
/// annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadArg {
    /// The var.
    pub var: String,
    /// `#x`: input variable of a description-rule head.
    pub input: bool,
    /// `<x>`: attribute annotation (Definition 2).
    pub annotated: bool,
}

impl fmt::Display for HeadArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.input {
            write!(f, "#")?;
        }
        if self.annotated {
            write!(f, "<{}>", self.var)
        } else {
            write!(f, "{}", self.var)
        }
    }
}

/// A rule head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Head {
    /// The name.
    pub name: String,
    /// The args.
    pub args: Vec<HeadArg>,
    /// `p(...)?`: existence annotation (Definition 1).
    pub existence: bool,
}

impl Head {
    /// Names of attribute-annotated head variables.
    pub fn annotated_vars(&self) -> Vec<&str> {
        self.args
            .iter()
            .filter(|a| a.annotated)
            .map(|a| a.var.as_str())
            .collect()
    }

    /// True when some argument is an input (`#x`): the rule is a
    /// description rule for an IE predicate.
    pub fn has_inputs(&self) -> bool {
        self.args.iter().any(|a| a.input)
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if self.existence {
            write!(f, "?")?;
        }
        Ok(())
    }
}

/// A rule `head :- body.`
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The head.
    pub head: Head,
    /// The body.
    pub body: Vec<BodyAtom>,
}

impl Rule {
    /// True when this rule (partially) implements an IE predicate.
    pub fn is_description(&self) -> bool {
        self.head.has_inputs()
    }

    /// The rule's annotation pair `(f, A)` of §2.2.3.
    pub fn annotations(&self) -> (bool, Vec<&str>) {
        (self.head.existence, self.head.annotated_vars())
    }

    /// Variables appearing in the body inside predicate atoms.
    pub fn body_pred_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for atom in &self.body {
            if let BodyAtom::Pred { args, .. } = atom {
                for a in args {
                    if let Term::Var(v) = &a.term {
                        out.push(v.as_str());
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A whole program: rules plus the designated query predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
    /// Name of the query predicate; defaults to the head of the last
    /// non-description rule.
    pub query: String,
}

impl Program {
    /// Rules whose head is `name`.
    pub fn rules_for<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Rule> + 'a {
        self.rules.iter().filter(move |r| r.head.name == name)
    }

    /// The description rules, keyed by the IE predicate they implement.
    pub fn description_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.is_description())
    }

    /// Head predicate names of non-description rules (intensional preds).
    pub fn intensional_names(&self) -> Vec<&str> {
        self.rules
            .iter()
            .filter(|r| !r.is_description())
            .map(|r| r.head.name.as_str())
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shapes() {
        let rule = Rule {
            head: Head {
                name: "houses".into(),
                args: vec![
                    HeadArg {
                        var: "x".into(),
                        input: false,
                        annotated: false,
                    },
                    HeadArg {
                        var: "p".into(),
                        input: false,
                        annotated: true,
                    },
                ],
                existence: true,
            },
            body: vec![
                BodyAtom::Pred {
                    name: "housePages".into(),
                    args: vec![Arg {
                        term: Term::Var("x".into()),
                        input: false,
                    }],
                },
                BodyAtom::Constraint {
                    feature: "numeric".into(),
                    var: "p".into(),
                    value: ConstraintArg::Symbol("yes".into()),
                },
                BodyAtom::Compare {
                    left: Term::Var("p".into()),
                    op: CmpOp::Gt,
                    right: Term::Num(500000.0),
                    offset: 0.0,
                },
            ],
        };
        let s = rule.to_string();
        assert_eq!(
            s,
            "houses(x, <p>)? :- housePages(x), numeric(p) = yes, p > 500000."
        );
        assert_eq!(rule.annotations(), (true, vec!["p"]));
        assert!(!rule.is_description());
    }

    #[test]
    fn description_rule_detection() {
        let rule = Rule {
            head: Head {
                name: "extractHouses".into(),
                args: vec![
                    HeadArg {
                        var: "x".into(),
                        input: true,
                        annotated: false,
                    },
                    HeadArg {
                        var: "p".into(),
                        input: false,
                        annotated: false,
                    },
                ],
                existence: false,
            },
            body: vec![],
        };
        assert!(rule.is_description());
        assert_eq!(rule.head.to_string(), "extractHouses(#x, p)");
    }
}
