//! # iflex-alog
//!
//! **Alog**: the declarative language for *approximate* information-
//! extraction programs introduced by iFlex (§2 of *Toward Best-Effort
//! Information Extraction*, SIGMOD 2008). Alog extends Xlog (a Datalog
//! variant with embedded extraction predicates) with:
//!
//! * **predicate description rules** — partial implementations of IE
//!   predicates as sets of domain constraints over text features
//!   (`numeric(p) = yes`, `bold-font(s) = distinct-yes`);
//! * **annotations** giving rules a possible-worlds semantics: existence
//!   annotations (`head(...)? :- ...`) and attribute annotations
//!   (`head(x, <p>) :- ...`).
//!
//! This crate provides the surface syntax (lexer + parser), the AST,
//! static validation (safety, no recursion), and description-rule
//! unfolding. Execution lives in `iflex-engine`.
//!
//! ```
//! use iflex_alog::{parse_program, validate, ValidateEnv};
//!
//! let prog = parse_program(r#"
//!     houses(x, <p>) :- housePages(x), extractPrice(#x, p).
//!     extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
//! "#).unwrap();
//! let env = ValidateEnv::new().with_extensional(&["housePages"]);
//! assert!(validate(&prog, &env).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lex;
pub mod parse;
pub mod unfold;
pub mod validate;

pub use ast::{Arg, BodyAtom, CmpOp, ConstraintArg, Head, HeadArg, Program, Rule, Term};
pub use lex::SyntaxError;
pub use parse::{parse_program, parse_rule};
pub use unfold::unfold;
pub use validate::{evaluation_order, validate, ValidateEnv, ValidateError};
