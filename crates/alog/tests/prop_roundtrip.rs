//! Whole-program property tests: random valid Alog programs (description
//! rules + a query rule over them) must round-trip through the
//! pretty-printer — `parse ∘ display` is the identity on ASTs and
//! `display ∘ parse` reaches a fixpoint after one render — and `unfold`
//! must be a deterministic function whose output survives the same
//! round-trip (fresh variables it invents are printable, re-parseable
//! identifiers).

use iflex_alog::{parse_program, unfold, Program};
use proptest::prelude::*;

const FEATURES: &[&str] = &["numeric", "bold-font", "in-title", "max-value"];
const OPS: &[&str] = &["<", ">", "<=", ">=", "="];

/// Renders one random, well-formed program from structured choices:
/// `n_desc` IE predicates (the first with `variants` alternative
/// description rules), each description rule optionally carrying a domain
/// constraint and a comparison, then a query rule calling every IE
/// predicate with `#`-input document args, optional ψ annotation,
/// optional existence `?`, and an optional offset comparison.
#[allow(clippy::too_many_arguments)]
fn render_program(
    n_desc: usize,
    variants: usize,
    feature: usize,
    op: usize,
    threshold: u32,
    offset: u32,
    annotate: bool,
    existence: bool,
    constrain_desc: bool,
) -> String {
    let mut src = String::new();
    for k in 0..n_desc {
        let n_variants = if k == 0 { variants } else { 1 };
        for i in 0..n_variants {
            let mut body = format!("from(#d, o{i})");
            if constrain_desc {
                body += &format!(
                    ", {}(o{i}) = yes",
                    FEATURES[(feature + i) % FEATURES.len()]
                );
            }
            if i % 2 == 0 {
                body += &format!(", o{i} {} {threshold}", OPS[op % OPS.len()]);
            }
            src += &format!("e{k}(#d, o{i}) :- {body}.\n");
        }
    }
    let mut head_args: Vec<String> = vec!["x".into()];
    let mut body = String::from("t(x)");
    for k in 0..n_desc {
        let v = format!("v{k}");
        head_args.push(if annotate && k == 0 {
            format!("<{v}>")
        } else {
            v.clone()
        });
        body += &format!(", e{k}(#x, {v})");
    }
    if n_desc >= 2 && offset > 0 {
        body += &format!(", v0 {} v1 + {offset}", OPS[(op + 1) % OPS.len()]);
    }
    let q = if existence { "?" } else { "" };
    src += &format!("q({}){q} :- {body}.\n", head_args.join(", "));
    src
}

fn roundtrip(src: &str) -> (Program, Program) {
    let p1 = parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let s1 = p1.to_string();
    let p2 = parse_program(&s1).unwrap_or_else(|e| panic!("{e}\n{s1}"));
    (p1, p2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `display ∘ parse` fixpoint: the AST survives a render unchanged,
    /// and a second render is byte-identical to the first.
    #[test]
    fn program_display_parse_roundtrip(
        n_desc in 1usize..4,
        variants in 1usize..3,
        feature in 0usize..4,
        op in 0usize..5,
        threshold in 0u32..1_000_000,
        offset in 0u32..100,
        flags in 0u8..8,
    ) {
        let (annotate, existence, constrain_desc) =
            (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let src = render_program(
            n_desc, variants, feature, op, threshold, offset,
            annotate, existence, constrain_desc,
        );
        let (p1, p2) = roundtrip(&src);
        prop_assert_eq!(&p1, &p2, "AST changed across a render\n{}", &src);
        prop_assert_eq!(p1.to_string(), p2.to_string());
        // The implicit query predicate survives the render (Display omits
        // it; the parser re-derives it from the last non-description rule).
        prop_assert_eq!(&p2.query, "q");
    }

    /// `unfold` is deterministic — equal inputs give structurally equal,
    /// byte-identically rendered outputs — and commutes with the
    /// display/parse round-trip.
    #[test]
    fn unfold_is_deterministic_and_roundtrips(
        n_desc in 1usize..4,
        variants in 1usize..3,
        feature in 0usize..4,
        op in 0usize..5,
        threshold in 0u32..1_000_000,
        offset in 0u32..100,
        flags in 0u8..8,
    ) {
        let (annotate, existence, constrain_desc) =
            (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let src = render_program(
            n_desc, variants, feature, op, threshold, offset,
            annotate, existence, constrain_desc,
        );
        let (p1, p2) = roundtrip(&src);
        let u1 = unfold(&p1);
        let u1_again = unfold(&p1);
        prop_assert_eq!(&u1, &u1_again, "unfold not deterministic\n{}", &src);
        prop_assert_eq!(&u1, &unfold(&p2), "unfold diverges after a render");
        // The first description predicate has `variants` alternatives, so
        // the single query rule multiplies into exactly that many unfolded
        // variants; no description rule survives.
        prop_assert_eq!(u1.rules.len(), variants);
        prop_assert!(u1.rules.iter().all(|r| !r.is_description()));
        prop_assert!(!u1.to_string().contains("e0("), "IE call left in place");
        // Unfolded programs (with freshened local variables) round-trip
        // through the pretty-printer just like source programs.
        let (r1, r2) = roundtrip(&u1.to_string());
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&u1, &r1, "unfolded AST changed across a render");
    }
}
