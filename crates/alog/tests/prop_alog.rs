//! Property tests: Alog display ↔ parse round-trips and parser robustness.

use iflex_alog::{parse_program, parse_rule, ConstraintArg, Term};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,6}".prop_map(|s| s)
}

proptest! {
    #[test]
    fn rule_display_parse_roundtrip(
        head in ident(),
        table in ident(),
        v1 in ident(),
        v2 in ident(),
        existence in proptest::bool::ANY,
        annotated in proptest::bool::ANY,
        threshold in 0u32..1_000_000,
    ) {
        prop_assume!(head != table && v1 != v2);
        let ann = if annotated { format!("<{v2}>") } else { v2.clone() };
        let q = if existence { "?" } else { "" };
        let src = format!(
            "{head}({v1}, {ann}){q} :- {table}({v1}), from(#{v1}, {v2}), \
             numeric({v2}) = yes, {v2} > {threshold}."
        );
        let r1 = parse_rule(&src).unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = parse_program(&src);
    }

    #[test]
    fn constraint_values_roundtrip(
        feature in "[a-z]{1,4}(-[a-z]{1,4}){0,2}",
        var in ident(),
        num in 0.0f64..1e6,
    ) {
        for value in [
            ConstraintArg::Symbol("distinct-yes".into()),
            ConstraintArg::Num(num.round()),
            ConstraintArg::Str("Price: $".into()),
        ] {
            let src = format!("q({var}) :- t({var}), {feature}({var}) = {value}.");
            let r = parse_rule(&src).unwrap();
            let r2 = parse_rule(&r.to_string()).unwrap();
            prop_assert_eq!(r, r2);
        }
    }

    #[test]
    fn numbers_parse_back_exactly(n in 0u32..10_000_000) {
        let src = format!("q(x) :- t(x), x > {n}.");
        let r = parse_rule(&src).unwrap();
        match &r.body[1] {
            iflex_alog::BodyAtom::Compare { right: Term::Num(v), .. } => {
                prop_assert_eq!(*v, n as f64);
            }
            other => prop_assert!(false, "unexpected atom {other:?}"),
        }
    }

    #[test]
    fn offsets_roundtrip(off in 1u32..100) {
        let src = format!("q(a, b) :- t(a, b), a < b + {off}.");
        let r = parse_rule(&src).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        prop_assert_eq!(r, r2);
    }
}
