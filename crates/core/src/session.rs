//! The iFlex development session: the execute → examine → refine loop of
//! §2.2.4 and §5, driven by a question-selection strategy and a developer
//! (human or simulated).

use crate::cost::{CostModel, SimClock};
use crate::developer::Developer;
use iflex_alog::Program;
use iflex_assistant::{
    add_constraint, attributes, implied_answers, Answer, AssistContext, ConvergenceMonitor,
    Examples, Strategy,
};
use iflex_ctable::CompactTable;
use iflex_engine::obs::{trace_path_from_env, SpanId, SpanKind};
use iflex_engine::{Engine, EngineError, ExecStats, Sample};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// How an iteration executed (Table 4 distinguishes subset-evaluation
/// iterations from the final reuse-mode full run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Subset evaluation over a sampled input (§5.2).
    Subset,
    /// Full input with the reuse cache warm.
    Reuse,
    /// A retry of the final run over a shrunken sample after the full run
    /// degraded (best-effort backoff).
    Fallback,
}

/// One row of the session log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// The iteration.
    pub iteration: usize,
    /// The mode.
    pub mode: ExecMode,
    /// Result size (expanded tuples) this iteration.
    pub result_tuples: usize,
    /// The assignments.
    pub assignments: usize,
    /// The questions this iter.
    pub questions_this_iter: usize,
    /// Rules the engine degraded this iteration (0 for an exact run).
    pub degradations: usize,
}

/// Why the session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The convergence monitor fired (§5.1).
    Converged,
    /// The question space was exhausted.
    QuestionsExhausted,
    /// The iteration cap was hit.
    MaxIterations,
    /// Consecutive subset iterations degraded — refining further on a
    /// result dominated by widened stand-ins would chase noise, so the
    /// loop stops early and reports what it has.
    Degraded,
}

/// Session tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Questions asked per iteration (the paper's volunteers answered
    /// roughly two per iteration — Table 4).
    pub questions_per_iteration: usize,
    /// Probability of "I do not know" assumed by the simulation strategy.
    pub alpha: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Seed for subset sampling.
    pub sample_seed: u64,
    /// Disable to always execute on the full input.
    pub use_sampling: bool,
    /// Final-run retries on shrinking samples after a degraded full run.
    pub max_retries: usize,
    /// Factor the sample fraction shrinks by between retries.
    pub retry_shrink: f64,
    /// Wall-clock deadline applied to every engine run in this session.
    pub run_deadline: Option<std::time::Duration>,
    /// Consecutive degraded subset iterations tolerated before the loop
    /// stops with [`StopReason::Degraded`].
    pub max_degraded_iterations: usize,
    /// Worker threads for the engine's sharded operators. `None` keeps
    /// the engine's own default (`IFLEX_THREADS` or the machine's core
    /// count, capped); `Some(1)` forces serial execution.
    pub threads: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            questions_per_iteration: 2,
            alpha: 0.1,
            max_iterations: 30,
            sample_seed: 7,
            use_sampling: true,
            max_retries: 3,
            retry_shrink: 0.5,
            run_deadline: None,
            max_degraded_iterations: 2,
            threads: None,
        }
    }
}

/// The outcome of a full session run.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The final result over the full input (or the last subset result
    /// scaled check `full_run_within_budget`). Shared, not cloned: the
    /// engine's result tables travel by `Arc` through the retry ladder.
    pub table: Arc<CompactTable>,
    /// False when the final full execution exceeded the engine budget and
    /// the subset result was returned instead (an unconverged program over
    /// the full input can be enormous — the user would refine further).
    pub full_run_within_budget: bool,
    /// The stop.
    pub stop: StopReason,
    /// The iterations.
    pub iterations: usize,
    /// Total questions asked across the session.
    pub questions_asked: usize,
    /// Simulated developer + machine minutes (Tables 3–6).
    pub minutes: f64,
    /// Cleanup-writing minutes (parenthesized in Table 3).
    pub cleanup_minutes: f64,
    /// Per-iteration log (Table 4 rows).
    pub records: Vec<IterationRecord>,
    /// Wall-clock seconds of the final full-input execution (§6.3 reports
    /// this for the DBLife programs).
    pub final_run_secs: f64,
    /// Total machine seconds across the whole session.
    pub machine_secs: f64,
    /// Iterations (subset, fallback, or final) whose result was degraded.
    pub degraded_iterations: usize,
    /// Fallback retries spent on the final run.
    pub retries: usize,
    /// Engine statistics of the run that produced [`Self::table`] — the
    /// chosen final attempt, not necessarily the last one executed. The
    /// engine resets its metrics registry at the start of every run, so
    /// these counters (including `feature_cache_*`, `par_sections`, and
    /// `shard_busy_us`) describe exactly one execution; nothing leaks
    /// across [`ExecMode::Fallback`] retries.
    pub final_stats: ExecStats,
}

/// An interactive best-effort IE session.
pub struct Session {
    /// The engine.
    pub engine: Engine,
    program: Program,
    strategy: Box<dyn Strategy>,
    developer: Box<dyn Developer>,
    asked: BTreeSet<(String, String)>,
    monitor: ConvergenceMonitor,
    /// The cost.
    pub cost: CostModel,
    /// The clock.
    pub clock: SimClock,
    /// The config.
    pub config: SessionConfig,
    records: Vec<IterationRecord>,
    questions_asked: usize,
    examples: Examples,
}

impl Session {
    /// Starts a session: charges the skeleton-writing cost and takes
    /// ownership of the engine and the initial approximate program.
    pub fn new(
        engine: Engine,
        program: Program,
        strategy: Box<dyn Strategy>,
        developer: Box<dyn Developer>,
    ) -> Self {
        let cost = CostModel::default();
        let mut clock = SimClock::new();
        clock.charge(cost.write_skeleton_secs);
        Session {
            engine,
            program,
            strategy,
            developer,
            asked: BTreeSet::new(),
            monitor: ConvergenceMonitor::paper_default(),
            cost,
            clock,
            config: SessionConfig::default(),
            records: Vec::new(),
            questions_asked: 0,
            examples: Examples::new(),
        }
    }

    /// Records a developer-highlighted true value for an attribute
    /// (§5.1.1 "mark up a sample title"), charging one inspection's worth
    /// of time. Answers the example contradicts are pruned from the
    /// simulation strategy's answer spaces. With `derive_constraints`,
    /// the example's tri-state feature values are folded straight into
    /// the description rules (and marked as asked).
    pub fn add_example(
        &mut self,
        attr_display: &str,
        span: iflex_text::Span,
        derive_constraints: bool,
    ) -> bool {
        let Some(attr) = attributes(&self.program)
            .into_iter()
            .find(|a| a.display() == attr_display)
        else {
            return false;
        };
        self.clock.charge(self.cost.answer_question_secs);
        self.examples.add(&attr, span);
        if derive_constraints {
            for (feature, arg) in implied_answers(&self.engine, span) {
                self.asked.insert((attr.display(), feature.clone()));
                self.program = add_constraint(&self.program, &attr, &feature, &arg);
            }
        }
        true
    }

    /// The current program text.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Registers a cleanup procedure (§2.2.4), charging its writing cost.
    pub fn add_cleanup_generator(
        &mut self,
        name: &str,
        out_arity: usize,
        f: impl Fn(&iflex_text::DocumentStore, &[iflex_ctable::Value]) -> Vec<Vec<iflex_ctable::Value>>
            + Send
            + Sync
            + 'static,
    ) {
        self.clock.charge_cleanup(self.cost.write_cleanup_secs);
        self.engine.procs_mut().register_generator(name, out_arity, f);
    }

    /// Registers a cleanup filter (§2.2.4), charging its writing cost.
    pub fn add_cleanup_filter(
        &mut self,
        name: &str,
        f: impl Fn(&iflex_text::DocumentStore, &[iflex_ctable::Value]) -> bool
            + Send
            + Sync
            + 'static,
    ) {
        self.clock.charge_cleanup(self.cost.write_cleanup_secs);
        self.engine.procs_mut().register_filter(name, f);
    }

    /// Replaces the program wholesale (manual refinement outside the
    /// assistant loop).
    pub fn set_program(&mut self, program: Program) {
        self.program = program;
    }

    fn input_size(&self) -> usize {
        self.engine.ext_tables().map(|(_, t)| t.len()).max().unwrap_or(0)
    }

    fn sample(&self) -> Sample {
        if self.config.use_sampling {
            Sample::auto(self.input_size(), self.config.sample_seed)
        } else {
            Sample::new(1.0, self.config.sample_seed)
        }
    }

    fn timed_run(
        &mut self,
        sample: Option<Sample>,
    ) -> Result<Arc<CompactTable>, EngineError> {
        let t0 = Instant::now();
        let out = match sample {
            Some(s) if s.fraction < 1.0 => self.engine.run_sampled(&self.program, s),
            _ => self.engine.run(&self.program),
        };
        self.clock.charge_machine(t0.elapsed().as_secs_f64());
        out
    }

    /// One attempt of the final phase. `Ok(Some((table, stats)))` on a
    /// result (possibly degraded); `Ok(None)` when a strict-mode engine
    /// surfaced a recoverable condition (budget, deadline, cancellation)
    /// as a hard error, so a shrunken retry still makes sense.
    ///
    /// The stats snapshot is taken immediately after the run, while the
    /// engine's registry still describes this attempt: the engine resets
    /// every counter at run start, so each attempt in the retry ladder
    /// reads a clean slate and the snapshot carried with the chosen
    /// attempt is self-contained.
    fn final_attempt(
        &mut self,
        sample: Option<Sample>,
    ) -> Result<Option<(Arc<CompactTable>, ExecStats)>, EngineError> {
        match self.timed_run(sample) {
            Ok(t) => Ok(Some((t, self.engine.stats.clone()))),
            Err(e) if iflex_engine::degrade_cause(&e).is_some() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Runs the full loop: subset iterations with questions until the
    /// monitor converges (or the space/iteration budget is exhausted),
    /// then one full reuse-mode execution.
    ///
    /// When [`iflex_engine::Limits::trace`] is set — or the `IFLEX_TRACE`
    /// environment variable requests a dump — the engine's tracer is
    /// enabled and the session wraps the loop in assistant spans
    /// (`session → iteration → question`, with the engine nesting
    /// `run → rule → operator → shard` and the strategy nesting `probe`
    /// underneath). With `IFLEX_TRACE` set, the journal is written as
    /// JSONL next to a `*.metrics.json` snapshot of the final run's
    /// metrics registry when the session completes.
    pub fn run(&mut self) -> Result<SessionOutcome, EngineError> {
        if let Some(d) = self.config.run_deadline {
            self.engine.budget.deadline = Some(d);
        }
        if let Some(n) = self.config.threads {
            self.engine.limits.threads = n.max(1);
        }
        let trace_path = trace_path_from_env();
        if self.engine.limits.trace || trace_path.is_some() {
            self.engine.tracer.enable();
        }
        let tracer = self.engine.tracer.clone();
        let session_span = tracer.begin(SpanId::NONE, SpanKind::Session, "session");
        let sample = self.sample();
        let mut stop = StopReason::MaxIterations;
        let mut degraded_streak = 0usize;
        for iter in 1..=self.config.max_iterations {
            let iter_span = match tracer.ctx(session_span) {
                Some((t, parent)) => {
                    t.begin(parent, SpanKind::Iteration, &format!("iteration{iter}"))
                }
                None => SpanId::NONE,
            };
            self.engine.trace_parent = iter_span;
            let table = match self.timed_run(Some(sample)) {
                Ok(t) => t,
                Err(e) => {
                    tracer.end(iter_span);
                    tracer.end(session_span);
                    return Err(e);
                }
            };
            let mut stats = table.stats();
            // The paper's result size counts expanded tuples; its monitor
            // watches the assignments of the whole extraction process.
            stats.tuples = table.expanded_len(self.engine.store()).min(usize::MAX as u64) as usize;
            stats.assignments = self.engine.stats.assignments_produced;
            self.monitor.observe(&stats);
            if let Some((t, parent)) = tracer.ctx(iter_span) {
                t.instant(
                    parent,
                    SpanKind::Mark,
                    "monitor",
                    Some(&format!(
                        "stable {}/{}",
                        self.monitor.stability_streak(),
                        self.monitor.k()
                    )),
                );
            }
            self.clock.charge(self.cost.review_iteration_secs);
            let mut rec = IterationRecord {
                iteration: iter,
                mode: ExecMode::Subset,
                result_tuples: stats.tuples,
                assignments: stats.assignments,
                questions_this_iter: 0,
                degradations: self.engine.stats.degradations.len(),
            };
            if self.monitor.converged() {
                self.records.push(rec);
                stop = StopReason::Converged;
                tracer.end(iter_span);
                break;
            }
            if rec.degradations > 0 {
                degraded_streak += 1;
                if degraded_streak >= self.config.max_degraded_iterations {
                    // Refining against a result dominated by widened
                    // stand-ins chases noise; stop and report.
                    self.records.push(rec);
                    stop = StopReason::Degraded;
                    tracer.end(iter_span);
                    break;
                }
            } else {
                degraded_streak = 0;
            }
            // Ask questions and fold answers in.
            let mut asked_now = 0usize;
            for qn in 0..self.config.questions_per_iteration {
                let q_span = match tracer.ctx(iter_span) {
                    Some((t, parent)) => {
                        t.begin(parent, SpanKind::Question, &format!("question{qn}"))
                    }
                    None => SpanId::NONE,
                };
                self.engine.trace_parent = q_span;
                let question = {
                    let mut ctx = AssistContext {
                        program: &self.program,
                        engine: &mut self.engine,
                        asked: &self.asked,
                        sample,
                        alpha: self.config.alpha,
                        current_size: stats.tuples,
                        examples: self.examples.clone(),
                    };
                    self.strategy.next_question(&mut ctx)
                };
                self.engine.trace_parent = iter_span;
                let Some(q) = question else {
                    tracer.end(q_span);
                    break;
                };
                if let Some((t, parent)) = tracer.ctx(q_span) {
                    t.instant(
                        parent,
                        SpanKind::Mark,
                        "chosen",
                        Some(&format!("{}.{}", q.attr.display(), q.feature)),
                    );
                }
                tracer.end(q_span);
                self.asked.insert((q.attr.display(), q.feature.clone()));
                self.clock.charge(self.cost.answer_question_secs);
                self.questions_asked += 1;
                asked_now += 1;
                if let Answer::Value(v) = self.developer.answer(&q) {
                    self.program = add_constraint(&self.program, &q.attr, &q.feature, &v);
                }
            }
            rec.questions_this_iter = asked_now;
            self.records.push(rec);
            tracer.end_with(
                iter_span,
                &[
                    ("iteration", iter as u64),
                    ("questions", asked_now as u64),
                    ("size", rec.result_tuples as u64),
                ],
            );
            if asked_now == 0 {
                stop = StopReason::QuestionsExhausted;
                break;
            }
        }
        self.engine.trace_parent = session_span;

        // Final full execution; reuse makes this cheap for the rules the
        // last refinements did not touch. If the (possibly unconverged)
        // program degrades over the full input — budget, deadline, or a
        // contained rule panic — retry over shrinking samples and keep the
        // least-degraded result seen (best-effort backoff).
        let machine_before_final = self.clock.machine_secs;
        let final_span = match tracer.ctx(session_span) {
            Some((t, parent)) => t.begin(parent, SpanKind::Iteration, "final"),
            None => SpanId::NONE,
        };
        self.engine.trace_parent = final_span;
        let mut retries = 0usize;
        let mut chosen = match self.final_attempt(None) {
            Ok(c) => c,
            Err(e) => {
                tracer.end(final_span);
                tracer.end(session_span);
                return Err(e);
            }
        };
        let clean = |c: &Option<(Arc<CompactTable>, ExecStats)>| {
            matches!(c, Some((_, st)) if st.degradations.is_empty())
        };
        let full_run_within_budget = clean(&chosen);
        if !full_run_within_budget {
            let mut fraction = sample.fraction;
            for retry in 1..=self.config.max_retries {
                fraction *= self.config.retry_shrink;
                let s = Sample::new(fraction, self.config.sample_seed.wrapping_add(retry as u64));
                retries += 1;
                // The incremental cache carries across iterations, but a
                // Fallback retry follows a degraded full run: drop it so
                // the shrunken attempt re-evaluates every rule from
                // scratch instead of mixing in entries produced alongside
                // the degradation (degraded results themselves are never
                // cached, and each retry samples a fresh subset anyway).
                self.engine.clear_cache();
                let attempt = match self.final_attempt(Some(s)) {
                    Ok(a) => a,
                    Err(e) => {
                        tracer.end(final_span);
                        tracer.end(session_span);
                        return Err(e);
                    }
                };
                let Some((t, st)) = attempt else {
                    continue;
                };
                let d = st.degradations.len();
                let tuples =
                    t.expanded_len(self.engine.store()).min(usize::MAX as u64) as usize;
                self.records.push(IterationRecord {
                    iteration: self.records.len() + 1,
                    mode: ExecMode::Fallback,
                    result_tuples: tuples,
                    assignments: st.assignments_produced,
                    questions_this_iter: 0,
                    degradations: d,
                });
                let better = match &chosen {
                    Some((_, best)) => d < best.degradations.len(),
                    None => true,
                };
                if better {
                    chosen = Some((t, st));
                }
                if clean(&chosen) {
                    break;
                }
            }
        }
        tracer.end_with(final_span, &[("items", retries as u64)]);
        let Some((table, final_stats)) = chosen else {
            tracer.end(session_span);
            return Err(EngineError::TooLarge(
                "final run exceeded the budget after fallback retries".into(),
            ));
        };
        let final_run_secs = self.clock.machine_secs - machine_before_final;
        let mut stats = table.stats();
        stats.tuples = table.expanded_len(self.engine.store()).min(usize::MAX as u64) as usize;
        stats.assignments = final_stats.assignments_produced;
        self.records.push(IterationRecord {
            iteration: self.records.len() + 1,
            mode: ExecMode::Reuse,
            result_tuples: stats.tuples,
            assignments: stats.assignments,
            questions_this_iter: 0,
            degradations: final_stats.degradations.len(),
        });
        tracer.end_with(
            session_span,
            &[
                ("iteration", self.records.len() as u64),
                ("questions", self.questions_asked as u64),
                ("assignments", stats.assignments as u64),
                ("degradations", final_stats.degradations.len() as u64),
            ],
        );
        if let Some(path) = trace_path {
            if let Err(e) = self.engine.tracer.write_jsonl(&path) {
                eprintln!("iflex: could not write trace {}: {e}", path.display());
            } else {
                eprintln!("iflex: trace written to {}", path.display());
            }
            // The registry describes the most recent engine run (counters
            // reset per run), i.e. the last final-phase attempt.
            let mpath = path.with_extension("metrics.json");
            if std::fs::write(&mpath, self.engine.metrics.render_json()).is_ok() {
                eprintln!("iflex: metrics written to {}", mpath.display());
            }
        }
        Ok(SessionOutcome {
            table,
            full_run_within_budget,
            final_run_secs,
            machine_secs: self.clock.machine_secs,
            stop,
            iterations: self.records.len(),
            questions_asked: self.questions_asked,
            minutes: self.clock.total_minutes(),
            cleanup_minutes: self.clock.cleanup_minutes(),
            records: self.records.clone(),
            degraded_iterations: self.records.iter().filter(|r| r.degradations > 0).count(),
            retries,
            final_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::developer::{OracleSpec, SimulatedDeveloper};
    use iflex_alog::parse_program;
    use iflex_assistant::Sequential;
    use iflex_features::FeatureArg;
    use iflex_text::DocumentStore;
    use std::sync::Arc;

    fn engine() -> Engine {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(store.add_markup(&format!(
                "junk {} words <b>{}</b> tail {}",
                i * 3 + 1,
                (i + 1) * 100,
                i * 7 + 2
            )));
        }
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        eng
    }

    fn program() -> Program {
        parse_program(
            r#"
            q(x, <v>) :- pages(x), extractV(#x, v).
            extractV(#x, v) :- from(#x, v), numeric(v) = yes.
        "#,
        )
        .unwrap()
    }

    #[test]
    fn session_converges_with_oracle() {
        let oracle = OracleSpec::new().knows("extractV.v", "bold-font", FeatureArg::yes());
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(oracle)),
        );
        session.config.use_sampling = false;
        let out = session.run().unwrap();
        assert_eq!(out.stop, StopReason::Converged);
        // After the bold-font answer every page has exactly one candidate.
        assert_eq!(out.table.len(), 6);
        let store = session.engine.store();
        for t in out.table.tuples() {
            assert_eq!(t.cells[1].value_set(store).len(), 1);
        }
        assert!(out.questions_asked >= 1);
        assert!(out.minutes > 0.0);
        // last record is the reuse-mode full run
        assert_eq!(out.records.last().unwrap().mode, ExecMode::Reuse);
    }

    #[test]
    fn ignorant_developer_exhausts_or_converges() {
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        session.config.use_sampling = false;
        session.config.max_iterations = 50;
        let out = session.run().unwrap();
        // Nothing changes, so the monitor converges quickly.
        assert_eq!(out.stop, StopReason::Converged);
        assert!(out.iterations <= 5);
    }

    #[test]
    fn cleanup_registration_charges_time() {
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        let before = session.clock.cleanup_minutes();
        session.add_cleanup_filter("alwaysTrue", |_, _| true);
        assert!(session.clock.cleanup_minutes() > before);
    }

    #[test]
    fn max_iterations_cap_stops_the_loop() {
        // a developer who keeps giving useful-looking but size-neutral
        // answers forever is cut off at the cap
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        session.config.max_iterations = 2;
        session.config.use_sampling = false;
        let out = session.run().unwrap();
        assert!(out.iterations <= 3); // 2 subset + 1 reuse
    }

    #[test]
    fn sampling_mode_still_produces_full_final_result() {
        let oracle = OracleSpec::new().knows("extractV.v", "bold-font", FeatureArg::yes());
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(oracle)),
        );
        session.config.use_sampling = true;
        let out = session.run().unwrap();
        // final reuse-mode run covers the full input: 6 pages
        assert_eq!(out.records.last().unwrap().result_tuples, 6);
        assert!(out.machine_secs >= 0.0);
        assert!(out.final_run_secs >= 0.0);
    }

    #[test]
    fn injected_rule_panic_degrades_session_not_abort() {
        use iflex_engine::{fault, Fault, Trigger};
        let eng = engine();
        eng.fault.arm(
            fault::site::EVAL_RULE,
            Trigger::Always,
            Fault::Panic("session boom".into()),
            9,
        );
        let mut session = Session::new(
            eng,
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        session.config.use_sampling = false;
        let out = session.run().unwrap();
        // every run degrades, so the session completes with the
        // degradation visible rather than aborting
        assert!(out.degraded_iterations > 0);
        assert!(out.records.iter().any(|r| r.degradations > 0));
        assert!(!out.table.is_empty(), "widened fallback keeps a result");
    }

    #[test]
    fn tight_budget_triggers_fallback_retries() {
        use iflex_engine::{fault, Fault, Trigger};
        let eng = engine();
        // every run overflows the budget, so the final phase must walk
        // the whole retry ladder and keep the least-degraded result
        eng.fault
            .arm(fault::site::EVAL_RULE, Trigger::Always, Fault::TooLarge, 5);
        let mut session = Session::new(
            eng,
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        session.config.use_sampling = false;
        session.config.max_retries = 2;
        let out = session.run().unwrap();
        assert!(!out.full_run_within_budget);
        assert!(out.retries >= 1 && out.retries <= 2);
        assert!(out
            .records
            .iter()
            .any(|r| r.mode == ExecMode::Fallback));
        assert!(!out.table.is_empty(), "degraded final result is kept");
        assert!(out.records.last().unwrap().mode == ExecMode::Reuse);
    }

    #[test]
    fn zero_deadline_degrades_but_completes() {
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        session.config.use_sampling = false;
        session.config.run_deadline = Some(std::time::Duration::ZERO);
        session.config.max_retries = 1;
        let out = session.run().unwrap();
        assert_eq!(
            session.engine.budget.deadline,
            Some(std::time::Duration::ZERO)
        );
        assert!(out.degraded_iterations > 0);
        assert!(!out.table.is_empty());
    }

    #[test]
    fn consecutive_degraded_iterations_stop_the_loop() {
        use iflex_engine::{fault, Fault, Trigger};
        let eng = engine();
        eng.fault.arm(
            fault::site::EVAL_RULE,
            Trigger::Always,
            Fault::TooLarge,
            3,
        );
        let mut session = Session::new(
            eng,
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(OracleSpec::new())),
        );
        session.config.use_sampling = false;
        session.config.max_degraded_iterations = 1;
        let out = session.run().unwrap();
        assert_eq!(out.stop, StopReason::Degraded);
        // one subset iteration, then the final phase
        assert!(out.records.iter().filter(|r| r.mode == ExecMode::Subset).count() == 1);
    }

    #[test]
    fn record_log_shapes() {
        let oracle = OracleSpec::new().knows("extractV.v", "bold-font", FeatureArg::yes());
        let mut session = Session::new(
            engine(),
            program(),
            Box::new(Sequential),
            Box::new(SimulatedDeveloper::new(oracle)),
        );
        session.config.use_sampling = false;
        let out = session.run().unwrap();
        assert!(!out.records.is_empty());
        assert!(out
            .records
            .iter()
            .take(out.records.len() - 1)
            .all(|r| r.mode == ExecMode::Subset));
        // result sizes monotonically shrink or stay (bold answer narrows)
        let sizes: Vec<usize> = out.records.iter().map(|r| r.result_tuples).collect();
        assert!(sizes.windows(2).all(|w| w[1] <= w[0] || w[1] == sizes[sizes.len() - 1]));
    }
}
