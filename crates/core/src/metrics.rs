//! Result-quality metrics: superset size relative to ground truth, and
//! coverage (does the approximate result still contain every true tuple?).

use iflex_ctable::{CompactTable, Value};
use iflex_engine::obs::Registry;
use iflex_text::DocumentStore;

/// Normalizes a text cell for ground-truth comparison: lowercase,
/// alphanumeric tokens joined by single spaces, numbers canonicalized.
pub fn norm_text(s: &str) -> String {
    if let Some(n) = iflex_text::parse_number(s) {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            return format!("{}", n as i64);
        }
        return format!("{n}");
    }
    let mut out = String::with_capacity(s.len());
    let mut in_word = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if !in_word && !out.is_empty() {
                out.push(' ');
            }
            out.push(c.to_ascii_lowercase());
            in_word = true;
        } else {
            in_word = false;
        }
    }
    out
}

/// A ground-truth relation: normalized text rows.
pub type Truth = Vec<Vec<String>>;

/// Builds a truth relation from raw strings.
pub fn truth_rows(rows: &[Vec<&str>]) -> Truth {
    rows.iter()
        .map(|r| r.iter().map(|c| norm_text(c)).collect())
        .collect()
}

/// Quality of an approximate result against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Result tuples (what the user must sift through).
    pub result_tuples: usize,
    /// True tuples.
    pub correct_tuples: usize,
    /// `result / correct` in percent — Table 4/5's "Superset Size".
    pub superset_pct: f64,
    /// Fraction of true tuples covered by some result tuple.
    pub recall: f64,
    /// Tuples present in *every* possible world (`certain ⊆ truth`):
    /// the lower bound of the answer bracket.
    pub certain_tuples: usize,
    /// Fraction of certain tuples that are actually true — 1.0 whenever
    /// the superset guarantee holds (a certain tuple cannot be wrong
    /// unless the program itself is wrong).
    pub certain_precision: f64,
}

impl Quality {
    /// Mirrors the quality figures into a metrics registry under
    /// `session.quality.*` (ratios are scaled to basis points so the
    /// integer counters can carry them). Lets a `BENCH_*`-style
    /// snapshot of `Engine::metrics` include result quality next to the
    /// execution counters.
    pub fn export(&self, reg: &Registry) {
        reg.counter("session.quality.result_tuples")
            .set(self.result_tuples as u64);
        reg.counter("session.quality.correct_tuples")
            .set(self.correct_tuples as u64);
        reg.counter("session.quality.certain_tuples")
            .set(self.certain_tuples as u64);
        let bp = |f: f64| {
            if f.is_finite() {
                (f * 10_000.0).round().max(0.0) as u64
            } else {
                u64::MAX
            }
        };
        reg.counter("session.quality.recall_bp").set(bp(self.recall));
        reg.counter("session.quality.superset_bp")
            .set(bp(self.superset_pct / 100.0));
        reg.counter("session.quality.certain_precision_bp")
            .set(bp(self.certain_precision));
    }
}

/// One tuple's normalized text values for the compared columns;
/// `None` marks a cell too large to enumerate (treated as covering,
/// which is superset-safe for recall).
type TupleSets = Vec<Option<std::collections::BTreeSet<String>>>;

fn tuple_sets(
    t: &iflex_ctable::CompactTuple,
    cols: &[usize],
    store: &DocumentStore,
    cap: u64,
) -> TupleSets {
    cols.iter()
        .map(|&c| {
            let cell = &t.cells[c];
            if cell.value_count(store) > cap {
                return None;
            }
            Some(
                cell.values(store)
                    .map(|v| match &v {
                        Value::Span(s) => norm_text(store.span_text(s)),
                        other => norm_text(&other.as_text(store)),
                    })
                    .collect(),
            )
        })
        .collect()
}

fn sets_cover_row(sets: &TupleSets, row: &[String]) -> bool {
    row.iter().zip(sets).all(|(truth_cell, set)| match set {
        None => true,
        Some(s) => s.contains(truth_cell),
    })
}

/// Scores `result` against `truth`, comparing the given result columns
/// (in truth-column order). Per-tuple value sets are computed once, so
/// scoring is `O(tuples·values + rows·tuples)` rather than re-enumerating
/// cells per row.
pub fn score(
    result: &CompactTable,
    cols: &[usize],
    truth: &Truth,
    store: &DocumentStore,
) -> Quality {
    let cap = 256;
    let expanded = result.expanded_len(store).min(usize::MAX as u64) as usize;
    let all_sets: Vec<TupleSets> = result
        .tuples()
        .iter()
        .map(|t| tuple_sets(t, cols, store, cap))
        .collect();
    let covered = truth
        .iter()
        .filter(|row| all_sets.iter().any(|sets| sets_cover_row(sets, row)))
        .count();
    let correct = truth.len();
    // Certain tuples, normalized for comparison against the truth rows.
    let truth_set: std::collections::BTreeSet<&[String]> =
        truth.iter().map(|r| r.as_slice()).collect();
    let certain: Vec<Vec<String>> = result
        .certain_tuples(store, 100_000)
        .into_iter()
        .map(|row| {
            cols.iter()
                .map(|&c| match &row[c] {
                    Value::Span(s) => norm_text(store.span_text(s)),
                    other => norm_text(&other.as_text(store)),
                })
                .collect::<Vec<String>>()
        })
        .collect();
    let certain_true = certain
        .iter()
        .filter(|r| truth_set.contains(r.as_slice()))
        .count();
    Quality {
        result_tuples: expanded,
        correct_tuples: correct,
        superset_pct: if correct == 0 {
            if expanded == 0 {
                100.0
            } else {
                f64::INFINITY
            }
        } else {
            expanded as f64 / correct as f64 * 100.0
        },
        recall: if correct == 0 {
            1.0
        } else {
            covered as f64 / correct as f64
        },
        certain_tuples: certain.len(),
        certain_precision: if certain.is_empty() {
            1.0
        } else {
            certain_true as f64 / certain.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_ctable::{Cell, CompactTuple};
    use std::sync::Arc;

    #[test]
    fn norm_text_cases() {
        assert_eq!(norm_text("The  Big, Sleep!"), "the big sleep");
        assert_eq!(norm_text("351,000"), "351000");
        assert_eq!(norm_text("$35.99"), "35.99");
    }

    #[test]
    fn score_exact_match() {
        let mut store = DocumentStore::new();
        let d = store.add_plain("alpha beta");
        let store = Arc::new(store);
        let mut t = CompactTable::new(vec!["w".into()]);
        t.push(CompactTuple::new(vec![Cell::exact(Value::Span(
            iflex_text::Span::new(d, 0, 5),
        ))]));
        let truth = truth_rows(&[vec!["Alpha"]]);
        let q = score(&t, &[0], &truth, &store);
        assert_eq!(q.result_tuples, 1);
        assert_eq!(q.correct_tuples, 1);
        assert!((q.superset_pct - 100.0).abs() < 1e-9);
        assert!((q.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn superset_pct_reflects_overextraction() {
        let store = Arc::new(DocumentStore::new());
        let mut t = CompactTable::new(vec!["v".into()]);
        for i in 0..4 {
            t.push(CompactTuple::new(vec![Cell::exact(Value::Num(i as f64))]));
        }
        let truth = truth_rows(&[vec!["2"], vec!["3"]]);
        let q = score(&t, &[0], &truth, &store);
        assert!((q.superset_pct - 200.0).abs() < 1e-9);
        assert!((q.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_truth_lowers_recall() {
        let store = Arc::new(DocumentStore::new());
        let mut t = CompactTable::new(vec!["v".into()]);
        t.push(CompactTuple::new(vec![Cell::exact(Value::Num(1.0))]));
        let truth = truth_rows(&[vec!["1"], vec!["7"]]);
        let q = score(&t, &[0], &truth, &store);
        assert!((q.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_truth_scores() {
        let store = Arc::new(DocumentStore::new());
        let t = CompactTable::new(vec!["v".into()]);
        let q = score(&t, &[0], &truth_rows(&[]), &store);
        assert_eq!(q.superset_pct, 100.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn quality_exports_into_registry() {
        let q = Quality {
            result_tuples: 12,
            correct_tuples: 9,
            superset_pct: 150.0,
            recall: 0.75,
            certain_tuples: 5,
            certain_precision: 1.0,
        };
        let reg = Registry::new();
        q.export(&reg);
        let snap = reg.snapshot();
        let get = |name: &str| snap.counters[name];
        assert_eq!(get("session.quality.result_tuples"), 12);
        assert_eq!(get("session.quality.correct_tuples"), 9);
        assert_eq!(get("session.quality.certain_tuples"), 5);
        assert_eq!(get("session.quality.recall_bp"), 7_500);
        assert_eq!(get("session.quality.superset_bp"), 15_000);
        assert_eq!(get("session.quality.certain_precision_bp"), 10_000);
    }
}
