//! # iflex
//!
//! A from-scratch Rust reproduction of **iFlex** — the best-effort
//! information-extraction system of *Toward Best-Effort Information
//! Extraction* (Shen, DeRose, McCann, Doan, Ramakrishnan — SIGMOD 2008).
//!
//! iFlex relaxes the precise-IE requirement: a developer writes an initial
//! *approximate* extraction program in the declarative **Alog** language,
//! executes it immediately to get a well-defined approximate result (a
//! possible-worlds superset), then iteratively refines it — assisted by a
//! **next-effort assistant** that suggests which feature question to
//! answer next — until the result converges.
//!
//! ## Crate map
//!
//! * [`iflex_text`] — documents, spans, markup, tokens
//! * [`iflex_pattern`] — regex-lite engine
//! * [`iflex_ctable`] — compact tables / a-tables / possible worlds
//! * [`iflex_features`] — text features with `Verify`/`Refine`
//! * [`iflex_alog`] — the Alog language
//! * [`iflex_engine`] — the approximate query processor
//! * [`iflex_assistant`] — question selection + convergence
//! * this crate — the [`Session`] loop, simulated [`developer`]s, the
//!   [`cost`] model, and result [`metrics`]
//!
//! ## Quickstart
//!
//! ```
//! use iflex::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. a tiny corpus
//! let mut store = DocumentStore::new();
//! let page = store.add_markup("beds 3 price <b>351000</b> sqft 2750");
//! let mut engine = Engine::new(Arc::new(store));
//! engine.add_doc_table("pages", &[page]);
//!
//! // 2. an initial approximate program
//! let prog = parse_program(r#"
//!     q(x, <p>) :- pages(x), extractPrice(#x, p).
//!     extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
//! "#).unwrap();
//!
//! // 3. execute best-effort, immediately
//! let result = engine.run(&prog).unwrap();
//! assert_eq!(result.len(), 1); // one house, price still ambiguous
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleanup;
pub mod io;
pub mod cost;
pub mod developer;
pub mod metrics;
pub mod session;

pub use cost::{CostModel, SimClock};
pub use developer::{Developer, OracleSpec, SimulatedDeveloper};
pub use io::{load_dir, load_dir_report, load_dir_report_with, LoadReport};
pub use metrics::{norm_text, score, truth_rows, Quality, Truth};
pub use session::{ExecMode, IterationRecord, Session, SessionConfig, SessionOutcome, StopReason};

// Re-export the stack for single-dependency consumers.
pub use iflex_alog as alog;
pub use iflex_assistant as assistant;
pub use iflex_ctable as ctable;
pub use iflex_engine as engine;
pub use iflex_features as features;
pub use iflex_pattern as pattern;
pub use iflex_text as text;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::cost::{CostModel, SimClock};
    pub use crate::developer::{Developer, OracleSpec, SimulatedDeveloper};
    pub use crate::metrics::{score, truth_rows, Quality};
    pub use crate::session::{Session, SessionConfig, SessionOutcome, StopReason};
    pub use iflex_alog::{parse_program, parse_rule, Program};
    pub use iflex_assistant::{Answer, Question, Sequential, Simulation, Strategy};
    pub use iflex_ctable::{Assignment, Cell, CompactTable, CompactTuple, Value};
    pub use iflex_engine::{
        CancelToken, DegradeCause, Engine, EngineError, Fault, FaultPlan, RunBudget, Sample,
        Trigger,
    };
    pub use iflex_features::{FeatureArg, FeatureRegistry, FeatureValue};
    pub use iflex_text::{DocId, DocumentStore, Span};
}
