//! Filesystem loading: turn a directory of page files into an extensional
//! document table — the on-ramp for using iFlex on your own data.
//!
//! ```no_run
//! use iflex::prelude::*;
//! use std::sync::Arc;
//!
//! let mut store = DocumentStore::new();
//! let pages = iflex::io::load_dir(&mut store, "crawl/houses").unwrap();
//! let mut engine = Engine::new(Arc::new(store));
//! engine.add_doc_table("housePages", &pages);
//! ```

use iflex_text::{DocId, DocumentStore};
use std::io;
use std::path::Path;

/// File extensions treated as markup (parsed for formatting/structure);
/// everything else is loaded as plain text.
const MARKUP_EXTS: &[&str] = &["html", "htm", "xml"];

/// Loads every regular file in `dir` (non-recursively, in name order) as
/// one document each. `.html`/`.htm`/`.xml` files go through the markup
/// parser; other files are plain text. Returns the new documents' ids.
pub fn load_dir(store: &mut DocumentStore, dir: impl AsRef<Path>) -> io::Result<Vec<DocId>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut ids = Vec::with_capacity(paths.len());
    for p in paths {
        ids.push(load_file(store, &p)?);
    }
    Ok(ids)
}

/// Loads one file as a document.
pub fn load_file(store: &mut DocumentStore, path: impl AsRef<Path>) -> io::Result<DocId> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let is_markup = path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| MARKUP_EXTS.contains(&e.to_ascii_lowercase().as_str()))
        .unwrap_or(false);
    Ok(if is_markup {
        store.add_markup(&text)
    } else {
        store.add_plain(text)
    })
}

/// Splits one big file into one document per record, on a separator line
/// (e.g. `"---"`): the "divide each page into a set of records" step of
/// §6's methodology.
pub fn load_records(
    store: &mut DocumentStore,
    path: impl AsRef<Path>,
    separator: &str,
    markup: bool,
) -> io::Result<Vec<DocId>> {
    let text = std::fs::read_to_string(path)?;
    let mut ids = Vec::new();
    for rec in text.split(separator) {
        let rec = rec.trim();
        if rec.is_empty() {
            continue;
        }
        ids.push(if markup {
            store.add_markup(rec)
        } else {
            store.add_plain(rec.to_string())
        });
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("iflex-io-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn load_dir_orders_and_parses_by_extension() {
        let d = tmpdir("dir");
        std::fs::write(d.join("b.html"), "<b>bold</b> text").unwrap();
        std::fs::write(d.join("a.txt"), "<b>not parsed</b>").unwrap();
        let mut store = DocumentStore::new();
        let ids = load_dir(&mut store, &d).unwrap();
        assert_eq!(ids.len(), 2);
        // a.txt first (name order), kept verbatim
        assert_eq!(store.doc(ids[0]).text(), "<b>not parsed</b>");
        // b.html parsed: tags stripped, bold run recorded
        assert_eq!(store.doc(ids[1]).text(), "bold text");
        assert_eq!(store.doc(ids[1]).runs().len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn load_records_splits_on_separator() {
        let d = tmpdir("records");
        let f = d.join("pages.html");
        std::fs::write(&f, "rec one\n---\n<b>rec</b> two\n---\n\n").unwrap();
        let mut store = DocumentStore::new();
        let ids = load_records(&mut store, &f, "---", true).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(store.doc(ids[1]).text(), "rec two");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_dir_errors() {
        let mut store = DocumentStore::new();
        assert!(load_dir(&mut store, "/no/such/dir/iflex").is_err());
    }
}
