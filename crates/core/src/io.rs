//! Filesystem loading: turn a directory of page files into an extensional
//! document table — the on-ramp for using iFlex on your own data.
//!
//! Loading is **best-effort** to match the engine's degradation semantics:
//! a crawl directory in the wild contains unreadable files, binary blobs,
//! and near-UTF-8 text, and one bad page must not sink the corpus.
//! [`load_dir_report`] skips what it cannot read and says so in a
//! [`LoadReport`]; [`load_dir`] keeps the historical fail-fast contract.
//!
//! ```no_run
//! use iflex::prelude::*;
//! use std::sync::Arc;
//!
//! let mut store = DocumentStore::new();
//! let report = iflex::io::load_dir_report(&mut store, "crawl/houses").unwrap();
//! for (path, why) in &report.skipped {
//!     eprintln!("skipped {}: {}", path.display(), why);
//! }
//! let mut engine = Engine::new(Arc::new(store));
//! engine.add_doc_table("housePages", &report.loaded);
//! ```

use iflex_engine::{fault, Fault, FaultPlan};
use iflex_text::{DocId, DocumentStore};
use std::io;
use std::path::{Path, PathBuf};

/// File extensions treated as markup (parsed for formatting/structure);
/// everything else is loaded as plain text.
const MARKUP_EXTS: &[&str] = &["html", "htm", "xml"];

/// What a best-effort directory load actually did: the documents that made
/// it into the store, and the files that were skipped with the reason.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// Ids of the documents loaded, in file-name order.
    pub loaded: Vec<DocId>,
    /// Files skipped (unreadable, vanished mid-scan, injected fault), with
    /// a human-readable reason each.
    pub skipped: Vec<(PathBuf, String)>,
    /// Files whose bytes were not valid UTF-8 and were loaded lossily
    /// (invalid sequences replaced with U+FFFD).
    pub lossy: Vec<PathBuf>,
}

impl LoadReport {
    /// True when every file loaded cleanly.
    pub fn clean(&self) -> bool {
        self.skipped.is_empty() && self.lossy.is_empty()
    }
}

/// Loads every regular file in `dir` (non-recursively, in name order) as
/// one document each. `.html`/`.htm`/`.xml` files go through the markup
/// parser; other files are plain text. Returns the new documents' ids.
///
/// Fail-fast: the first unreadable file aborts the load. Prefer
/// [`load_dir_report`] for crawl data of uneven quality.
pub fn load_dir(store: &mut DocumentStore, dir: impl AsRef<Path>) -> io::Result<Vec<DocId>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut ids = Vec::with_capacity(paths.len());
    for p in paths {
        ids.push(load_file(store, &p)?);
    }
    Ok(ids)
}

/// Best-effort [`load_dir`]: unreadable files are skipped and reported
/// instead of aborting the load, and near-UTF-8 files are read lossily.
/// Only the `read_dir` on `dir` itself can fail.
pub fn load_dir_report(
    store: &mut DocumentStore,
    dir: impl AsRef<Path>,
) -> io::Result<LoadReport> {
    load_dir_report_with(store, dir, &FaultPlan::disarmed())
}

/// [`load_dir_report`] with fault injection at the per-file read
/// (site [`fault::site::IO_READ`]) for testing skip handling.
pub fn load_dir_report_with(
    store: &mut DocumentStore,
    dir: impl AsRef<Path>,
    faults: &FaultPlan,
) -> io::Result<LoadReport> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut report = LoadReport::default();
    for p in paths {
        if let Some(f) = faults.hit(fault::site::IO_READ) {
            let why = match f {
                Fault::Io(msg) => format!("injected i/o fault: {msg}"),
                other => format!("injected fault: {other:?}"),
            };
            report.skipped.push((p, why));
            continue;
        }
        match std::fs::read(&p) {
            Ok(bytes) => {
                let (text, was_lossy) = match String::from_utf8(bytes) {
                    Ok(s) => (s, false),
                    Err(e) => (String::from_utf8_lossy(e.as_bytes()).into_owned(), true),
                };
                if was_lossy {
                    report.lossy.push(p.clone());
                }
                report.loaded.push(add_text(store, &p, text));
            }
            Err(e) => report.skipped.push((p, e.to_string())),
        }
    }
    Ok(report)
}

/// Loads one file as a document.
pub fn load_file(store: &mut DocumentStore, path: impl AsRef<Path>) -> io::Result<DocId> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    Ok(add_text(store, path, text))
}

/// Adds already-read text to the store, markup-parsing by extension.
fn add_text(store: &mut DocumentStore, path: &Path, text: String) -> DocId {
    let is_markup = path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| MARKUP_EXTS.contains(&e.to_ascii_lowercase().as_str()))
        .unwrap_or(false);
    if is_markup {
        store.add_markup(&text)
    } else {
        store.add_plain(text)
    }
}

/// Splits one big file into one document per record, on a separator line
/// (e.g. `"---"`): the "divide each page into a set of records" step of
/// §6's methodology.
pub fn load_records(
    store: &mut DocumentStore,
    path: impl AsRef<Path>,
    separator: &str,
    markup: bool,
) -> io::Result<Vec<DocId>> {
    let text = std::fs::read_to_string(path)?;
    let mut ids = Vec::new();
    for rec in text.split(separator) {
        let rec = rec.trim();
        if rec.is_empty() {
            continue;
        }
        ids.push(if markup {
            store.add_markup(rec)
        } else {
            store.add_plain(rec.to_string())
        });
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_engine::Trigger;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("iflex-io-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn load_dir_orders_and_parses_by_extension() {
        let d = tmpdir("dir");
        std::fs::write(d.join("b.html"), "<b>bold</b> text").unwrap();
        std::fs::write(d.join("a.txt"), "<b>not parsed</b>").unwrap();
        let mut store = DocumentStore::new();
        let ids = load_dir(&mut store, &d).unwrap();
        assert_eq!(ids.len(), 2);
        // a.txt first (name order), kept verbatim
        assert_eq!(store.doc(ids[0]).text(), "<b>not parsed</b>");
        // b.html parsed: tags stripped, bold run recorded
        assert_eq!(store.doc(ids[1]).text(), "bold text");
        assert_eq!(store.doc(ids[1]).runs().len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn load_records_splits_on_separator() {
        let d = tmpdir("records");
        let f = d.join("pages.html");
        std::fs::write(&f, "rec one\n---\n<b>rec</b> two\n---\n\n").unwrap();
        let mut store = DocumentStore::new();
        let ids = load_records(&mut store, &f, "---", true).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(store.doc(ids[1]).text(), "rec two");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_dir_errors() {
        let mut store = DocumentStore::new();
        assert!(load_dir(&mut store, "/no/such/dir/iflex").is_err());
    }

    #[test]
    fn report_load_survives_invalid_utf8() {
        let d = tmpdir("lossy");
        std::fs::write(d.join("good.txt"), "fine text").unwrap();
        std::fs::write(d.join("near.txt"), [b'p', b'r', 0xFF, b'c', b'e']).unwrap();
        let mut store = DocumentStore::new();
        let report = load_dir_report(&mut store, &d).unwrap();
        assert_eq!(report.loaded.len(), 2);
        assert_eq!(report.lossy.len(), 1);
        assert!(report.skipped.is_empty());
        assert!(!report.clean());
        // the replacement character stands in for the bad byte
        assert!(store.doc(report.loaded[1]).text().contains('\u{FFFD}'));
        // strict loader refuses the same directory
        let mut strict = DocumentStore::new();
        assert!(load_dir(&mut strict, &d).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn injected_read_fault_skips_file_not_load() {
        let d = tmpdir("fault");
        std::fs::write(d.join("a.txt"), "first").unwrap();
        std::fs::write(d.join("b.txt"), "second").unwrap();
        let faults = FaultPlan::disarmed();
        faults.arm(
            fault::site::IO_READ,
            Trigger::Nth(0),
            Fault::Io("disk on fire".into()),
            42,
        );
        let mut store = DocumentStore::new();
        let report = load_dir_report_with(&mut store, &d, &faults).unwrap();
        assert_eq!(report.loaded.len(), 1);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("disk on fire"));
        assert_eq!(store.doc(report.loaded[0]).text(), "second");
        let _ = std::fs::remove_dir_all(&d);
    }
}
