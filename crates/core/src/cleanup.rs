//! Reusable cleanup procedures (§2.2.4): when a sub-task is cumbersome to
//! express declaratively — the paper's example is extracting the *last
//! author* from an author list, since Alog has no ordered sequences — the
//! developer writes a procedural p-predicate and plugs it in. This module
//! provides the common ones as ready-made generator closures for
//! [`iflex_engine::ProcRegistry::register_generator`].

use iflex_ctable::Value;
use iflex_pattern::Pattern;
use iflex_text::{DocumentStore, Span};

/// Splits a span on `sep`, yielding one trimmed sub-span per element —
/// e.g. an author list `"A. Lee, B. Cho"` into its authors. Non-span
/// inputs produce nothing.
pub fn split_list(sep: char) -> impl Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> {
    move |store, args| {
        let Some(Value::Span(s)) = args.first() else {
            return vec![];
        };
        element_spans(store, *s, sep)
            .into_iter()
            .map(|e| vec![Value::Span(e)])
            .collect()
    }
}

/// The paper's §2.2.4 scenario: the *last* element of a separated list
/// ("extract the individual authors and select the last author").
pub fn last_of_list(sep: char) -> impl Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> {
    move |store, args| {
        let Some(Value::Span(s)) = args.first() else {
            return vec![];
        };
        match element_spans(store, *s, sep).into_iter().last() {
            Some(e) => vec![vec![Value::Span(e)]],
            None => vec![],
        }
    }
}

/// The first element of a separated list.
pub fn first_of_list(sep: char) -> impl Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> {
    move |store, args| {
        let Some(Value::Span(s)) = args.first() else {
            return vec![];
        };
        element_spans(store, *s, sep)
            .into_iter()
            .next()
            .map(|e| vec![vec![Value::Span(e)]])
            .unwrap_or_default()
    }
}

/// The first regex-lite match inside the span, as a sub-span.
/// Panics at registration time on an invalid pattern — cleanup code is
/// developer-written and should fail fast.
pub fn first_match(pattern: &str) -> impl Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> {
    let pat = Pattern::new(pattern).expect("valid cleanup pattern");
    move |store, args| {
        let Some(Value::Span(s)) = args.first() else {
            return vec![];
        };
        let text = store.span_text(s);
        pat.find(text)
            .map(|m| {
                vec![vec![Value::Span(Span::new(
                    s.doc,
                    s.start + m.start as u32,
                    s.start + m.end as u32,
                ))]]
            })
            .unwrap_or_default()
    }
}

/// Classifies a span by the label immediately before it: returns the
/// first of `labels` (as a string value) such that the preceding text
/// ends with `"<label><suffix>"` — the Chair task's `extractType`.
pub fn label_before(
    labels: Vec<String>,
    suffix: &str,
) -> impl Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> {
    let suffix = suffix.to_string();
    move |store, args| {
        let Some(Value::Span(s)) = args.first() else {
            return vec![];
        };
        let text = store.doc(s.doc).text();
        let before = text[..s.start as usize].trim_end();
        for l in &labels {
            if before.ends_with(&format!("{l}{suffix}")) {
                return vec![vec![Value::Str(l.clone())]];
            }
        }
        vec![]
    }
}

/// Token-aligned element spans of `span` split on `sep`.
fn element_spans(store: &DocumentStore, span: Span, sep: char) -> Vec<Span> {
    let doc = store.doc(span.doc);
    let text = &doc.text()[span.range()];
    let mut out = Vec::new();
    let mut start = 0usize;
    let bytes_len = text.len();
    for (i, c) in text.char_indices().chain(std::iter::once((bytes_len, sep))) {
        if c != sep {
            continue;
        }
        let piece = &text[start..i];
        let lead = piece.len() - piece.trim_start().len();
        let trail = piece.len() - piece.trim_end().len();
        if lead + trail < piece.len() {
            out.push(Span::new(
                span.doc,
                span.start + (start + lead) as u32,
                span.start + (i - trail) as u32,
            ));
        }
        start = i + sep.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(text: &str) -> (DocumentStore, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        let s = st.doc(id).full_span();
        (st, s)
    }

    #[test]
    fn split_list_yields_trimmed_elements() {
        let (st, s) = store_with("Alice Lee, Bob Cho,  Carol Wu");
        let f = split_list(',');
        let rows = f(&st, &[Value::Span(s)]);
        let texts: Vec<&str> = rows
            .iter()
            .map(|r| st.span_text(&r[0].span().unwrap()))
            .collect();
        assert_eq!(texts, vec!["Alice Lee", "Bob Cho", "Carol Wu"]);
    }

    #[test]
    fn last_author_scenario() {
        // the paper's §2.2.4 example verbatim
        let (st, s) = store_with("H. Garcia-Molina, J. Widom, J. Ullman");
        let f = last_of_list(',');
        let rows = f(&st, &[Value::Span(s)]);
        assert_eq!(rows.len(), 1);
        assert_eq!(st.span_text(&rows[0][0].span().unwrap()), "J. Ullman");
    }

    #[test]
    fn first_of_list_and_empty_pieces() {
        let (st, s) = store_with(",,Alice,,Bob,");
        let f = first_of_list(',');
        let rows = f(&st, &[Value::Span(s)]);
        assert_eq!(st.span_text(&rows[0][0].span().unwrap()), "Alice");
    }

    #[test]
    fn first_match_extracts_subspan() {
        let (st, s) = store_with("published in VLDB 1998 proceedings");
        let f = first_match("19\\d\\d|20\\d\\d");
        let rows = f(&st, &[Value::Span(s)]);
        assert_eq!(st.span_text(&rows[0][0].span().unwrap()), "1998");
    }

    #[test]
    fn label_before_classifies() {
        let (st, _) = store_with("PC Chair: Alice Lee and General Chair: Bob Cho");
        let text = st.doc(iflex_text::DocId(0)).text().to_string();
        let alice = text.find("Alice").unwrap() as u32;
        let span = Span::new(iflex_text::DocId(0), alice, alice + 9);
        let f = label_before(vec!["PC".into(), "General".into()], " Chair:");
        let rows = f(&st, &[Value::Span(span)]);
        assert_eq!(rows, vec![vec![Value::Str("PC".into())]]);
        let bob = text.find("Bob").unwrap() as u32;
        let span = Span::new(iflex_text::DocId(0), bob, bob + 7);
        let rows = f(&st, &[Value::Span(span)]);
        assert_eq!(rows, vec![vec![Value::Str("General".into())]]);
    }

    #[test]
    fn non_span_inputs_produce_nothing() {
        let (st, _) = store_with("x");
        assert!(split_list(',')(&st, &[Value::Num(3.0)]).is_empty());
        assert!(first_match("a")(&st, &[]).is_empty());
    }
}
