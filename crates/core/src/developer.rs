//! Developers: the human in the paper's loop, abstracted. The experiments
//! use a [`SimulatedDeveloper`] whose answers come from the corpus
//! generator's ground truth ("volunteers" in §6 answered after visual
//! inspection; our oracle answers from the template that generated the
//! pages — see DESIGN.md, substitution table).

use iflex_assistant::{Answer, Question};
use iflex_features::FeatureArg;
use std::collections::BTreeMap;

/// Something that can answer next-effort-assistant questions.
pub trait Developer {
    /// Answers a question (possibly with "I do not know").
    fn answer(&mut self, question: &Question) -> Answer;
}

/// Ground-truth feature knowledge about the attributes of one task:
/// `(attribute display name, feature name) → answer`.
#[derive(Debug, Clone, Default)]
pub struct OracleSpec {
    answers: BTreeMap<(String, String), FeatureArg>,
}

impl OracleSpec {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `feature(attr) = value` truly holds on the corpus.
    pub fn knows(mut self, attr: &str, feature: &str, value: FeatureArg) -> Self {
        self.answers
            .insert((attr.to_string(), feature.to_string()), value);
        self
    }

    /// Looks up the true answer, if the oracle knows one.
    pub fn lookup(&self, attr: &str, feature: &str) -> Option<&FeatureArg> {
        self.answers.get(&(attr.to_string(), feature.to_string()))
    }

    /// Number of known facts.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when the oracle knows nothing.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

/// A developer that answers from an [`OracleSpec`], saying "I do not know"
/// for anything outside it. Records every question asked.
#[derive(Debug, Clone)]
pub struct SimulatedDeveloper {
    oracle: OracleSpec,
    /// `(question text, answered)` log, in order.
    pub transcript: Vec<(String, bool)>,
}

impl SimulatedDeveloper {
    /// Creates a new instance.
    pub fn new(oracle: OracleSpec) -> Self {
        SimulatedDeveloper {
            oracle,
            transcript: Vec::new(),
        }
    }

    /// Questions answered with a concrete value so far.
    pub fn answered_count(&self) -> usize {
        self.transcript.iter().filter(|(_, a)| *a).count()
    }
}

impl Developer for SimulatedDeveloper {
    fn answer(&mut self, question: &Question) -> Answer {
        let key = question.attr.display();
        match self.oracle.lookup(&key, &question.feature) {
            Some(v) => {
                self.transcript.push((question.text.clone(), true));
                Answer::Value(v.clone())
            }
            None => {
                self.transcript.push((question.text.clone(), false));
                Answer::DontKnow
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_assistant::Attribute;

    fn q(attr: &str, var: &str, feature: &str) -> Question {
        Question {
            attr: Attribute {
                pred: attr.to_string(),
                var: var.to_string(),
                pos: 1,
            },
            feature: feature.to_string(),
            text: format!("is {attr}.{var} {feature}?"),
        }
    }

    #[test]
    fn oracle_answers_known_questions() {
        let oracle = OracleSpec::new().knows("extractV.p", "bold-font", FeatureArg::yes());
        let mut dev = SimulatedDeveloper::new(oracle);
        match dev.answer(&q("extractV", "p", "bold-font")) {
            Answer::Value(v) => assert_eq!(v, FeatureArg::yes()),
            _ => panic!("expected an answer"),
        }
        assert_eq!(dev.answered_count(), 1);
    }

    #[test]
    fn unknown_questions_get_dont_know() {
        let mut dev = SimulatedDeveloper::new(OracleSpec::new());
        assert_eq!(dev.answer(&q("e", "x", "in-title")), Answer::DontKnow);
        assert_eq!(dev.answered_count(), 0);
        assert_eq!(dev.transcript.len(), 1);
    }

    #[test]
    fn spec_accessors() {
        let o = OracleSpec::new().knows("a.b", "numeric", FeatureArg::yes());
        assert_eq!(o.len(), 1);
        assert!(!o.is_empty());
        assert!(o.lookup("a.b", "numeric").is_some());
        assert!(o.lookup("a.b", "bold-font").is_none());
    }
}
