//! The simulated developer-time cost model.
//!
//! The paper's Tables 3–6 report *human development minutes* measured on
//! volunteers. We reproduce them by charging each developer action a fixed
//! cost and adding real machine time. The constants below were calibrated
//! once against the magnitudes in Table 3 (e.g. a precise Perl extractor ≈
//! 25–30 min including debugging; answering a visual question ≈ 10 s;
//! manually inspecting one record ≈ 0.7 s) — after calibration, every
//! ordering and crossover in the reproduced tables is produced by counting
//! the *actions* each method actually needs, not by the constants.

/// Per-action costs in (simulated) seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Manual method: visually inspecting one record for the answer.
    pub inspect_record_secs: f64,
    /// Manual method: fixed setup (opening pages, understanding layout).
    pub manual_setup_secs: f64,
    /// Writing the initial Xlog/Alog skeleton rules for one task.
    pub write_skeleton_secs: f64,
    /// Xlog method: implementing one precise procedural extractor.
    pub write_extractor_secs: f64,
    /// Xlog method: one run-and-debug cycle per extractor.
    pub debug_cycle_secs: f64,
    /// iFlex: answering one assistant question (after visual inspection).
    pub answer_question_secs: f64,
    /// iFlex: reviewing one iteration's result before continuing.
    pub review_iteration_secs: f64,
    /// iFlex: writing one procedural cleanup predicate (§2.2.4).
    pub write_cleanup_secs: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            inspect_record_secs: 0.7,
            manual_setup_secs: 30.0,
            write_skeleton_secs: 25.0,
            write_extractor_secs: 25.0 * 60.0,
            debug_cycle_secs: 3.0 * 60.0,
            answer_question_secs: 10.0,
            review_iteration_secs: 5.0,
            write_cleanup_secs: 5.0 * 60.0,
        }
    }
}

/// A clock accumulating simulated developer time and real machine time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    /// Simulated developer seconds spent.
    pub developer_secs: f64,
    /// Measured machine seconds spent.
    pub machine_secs: f64,
    /// Portion of developer time spent writing cleanup code (reported in
    /// parentheses in Table 3).
    pub cleanup_secs: f64,
}

impl SimClock {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges developer time.
    pub fn charge(&mut self, secs: f64) {
        self.developer_secs += secs;
    }

    /// Charges cleanup-writing time (counted inside developer time too).
    pub fn charge_cleanup(&mut self, secs: f64) {
        self.developer_secs += secs;
        self.cleanup_secs += secs;
    }

    /// Adds measured machine time.
    pub fn charge_machine(&mut self, secs: f64) {
        self.machine_secs += secs;
    }

    /// Total elapsed (developer + machine) in seconds.
    pub fn total_secs(&self) -> f64 {
        self.developer_secs + self.machine_secs
    }

    /// Total in minutes (the unit of Tables 3–6).
    pub fn total_minutes(&self) -> f64 {
        self.total_secs() / 60.0
    }

    /// Cleanup minutes (parenthesized component of Table 3).
    pub fn cleanup_minutes(&self) -> f64 {
        self.cleanup_secs / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3_magnitudes() {
        let c = CostModel::default();
        // One extractor + a few debug cycles lands in Table 3's Xlog band
        // (~28–35 min for single-extractor tasks).
        let xlog_one = c.write_skeleton_secs + c.write_extractor_secs + 2.0 * c.debug_cycle_secs;
        assert!((25.0 * 60.0..40.0 * 60.0).contains(&xlog_one));
        // A handful of questions stays near a minute (Table 3, iFlex T1).
        let iflex_small = c.write_skeleton_secs + 4.0 * c.answer_question_secs;
        assert!(iflex_small < 2.0 * 60.0);
    }

    #[test]
    fn clock_accumulates() {
        let mut clk = SimClock::new();
        clk.charge(60.0);
        clk.charge_machine(30.0);
        clk.charge_cleanup(120.0);
        assert_eq!(clk.developer_secs, 180.0);
        assert_eq!(clk.cleanup_secs, 120.0);
        assert_eq!(clk.total_secs(), 210.0);
        assert!((clk.total_minutes() - 3.5).abs() < 1e-9);
        assert!((clk.cleanup_minutes() - 2.0).abs() < 1e-9);
    }
}
