//! The Manual baseline (§6, "Methods"): a human inspects the raw records
//! and collects the answer by hand. The cost model is calibrated against
//! Table 3's Manual column; join tasks charge a per-record lookup across
//! the other list(s), which is what makes Manual "not scale to large data
//! sets".

use iflex_corpus::TaskId;

/// Per-record inspection seconds (single-table part), calibrated per task
/// family: simple lists ≈ 0.7 s; records needing arithmetic or several
/// fields ≈ 2.3 s.
pub fn inspect_secs(id: TaskId) -> f64 {
    match id {
        TaskId::T1 | TaskId::T2 => 0.72,
        TaskId::T4 => 0.96,
        TaskId::T5 | TaskId::T8 => 2.3,
        TaskId::T7 => 2.4,
        // joins: dominated by lookup_secs below
        TaskId::T3 | TaskId::T6 | TaskId::T9 => 0.7,
        // DBLife: heterogeneous pages, slow scanning
        _ => 4.0,
    }
}

/// Extra per-record seconds spent looking the record up in the other
/// list(s) (join tasks only). Sorted, short movie lists are quick to scan;
/// fuzzy bookstore titles with price comparisons are very slow.
pub fn lookup_secs(id: TaskId) -> f64 {
    match id {
        TaskId::T3 => 7.7,
        TaskId::T6 => 45.0,
        TaskId::T9 => 80.0,
        _ => 0.0,
    }
}

/// Fixed setup seconds (opening the pages, understanding the layout).
pub const SETUP_SECS: f64 = 30.0;

/// Volunteers gave up past this point — reported as "—" in Table 3.
pub const PATIENCE_MINUTES: f64 = 140.0;

/// Simulated Manual minutes for `records` rows of the primary table;
/// `None` means "did not finish" (the paper's "—").
pub fn manual_minutes(id: TaskId, records: usize) -> Option<f64> {
    let secs = SETUP_SECS + records as f64 * (inspect_secs(id) + lookup_secs(id));
    let minutes = secs / 60.0;
    (minutes <= PATIENCE_MINUTES).then_some(minutes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table3_magnitudes() {
        // Table 3 Manual column spot checks.
        let t1_250 = manual_minutes(TaskId::T1, 250).unwrap();
        assert!((2.0..5.0).contains(&t1_250), "{t1_250}");
        let t5_500 = manual_minutes(TaskId::T5, 500).unwrap();
        assert!((15.0..25.0).contains(&t5_500), "{t5_500}");
        let t9_100 = manual_minutes(TaskId::T9, 100).unwrap();
        assert!((120.0..140.0).contains(&t9_100), "{t9_100}");
    }

    #[test]
    fn large_scenarios_time_out() {
        assert!(manual_minutes(TaskId::T6, 500).is_none());
        assert!(manual_minutes(TaskId::T9, 500).is_none());
        assert!(manual_minutes(TaskId::T9, 2490).is_none());
    }

    #[test]
    fn small_scenarios_are_quick() {
        let m = manual_minutes(TaskId::T1, 10).unwrap();
        assert!(m < 1.0);
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;

    #[test]
    fn manual_time_is_monotone_in_records() {
        for id in [TaskId::T1, TaskId::T5, TaskId::T9] {
            let mut last = 0.0;
            for n in [10usize, 100, 400] {
                match manual_minutes(id, n) {
                    Some(m) => {
                        assert!(m >= last, "{id:?} at {n}");
                        last = m;
                    }
                    None => break, // once over patience, stays over
                }
            }
        }
    }

    #[test]
    fn join_tasks_cost_more_per_record() {
        let single = manual_minutes(TaskId::T1, 100).unwrap();
        let join = manual_minutes(TaskId::T3, 100).unwrap();
        assert!(join > single * 3.0);
    }
}
