//! The precise-Xlog baseline (§6, "Methods"): hand-written procedural
//! extractors — the Rust equivalent of the paper's Perl modules — that
//! produce exact results, plus the development-time model calibrated
//! against Table 3's Xlog column (skeleton ≈ 4 min, one extractor ≈
//! 12 min + 6 min per extracted attribute, including debugging cycles).


use iflex_corpus::{Corpus, TaskId};
use iflex_text::{markup::style, Document};

/// Simulated development minutes for the precise-Xlog method.
pub fn xlog_dev_minutes(id: TaskId) -> f64 {
    let skeleton = 4.0;
    // (number of extractors, attrs extracted by each)
    let extractors: &[usize] = match id {
        TaskId::T1 | TaskId::T2 => &[2],
        TaskId::T3 => &[1, 1, 1],
        TaskId::T4 => &[2],
        TaskId::T5 => &[3],
        TaskId::T6 => &[2, 2],
        TaskId::T7 => &[2],
        TaskId::T8 => &[4],
        TaskId::T9 => &[2, 2],
        // DBLife tasks (§6.3): "2-3 hours" per program in Perl
        TaskId::Panel | TaskId::Project => &[1, 1],
        TaskId::Chair => &[1, 1, 1],
    };
    let per_extractor: f64 = extractors.iter().map(|&attrs| 12.0 + 6.0 * attrs as f64).sum();
    // DBLife pages are heterogeneous: extractors take ~3x longer (the
    // paper reports 2-3 hours per task vs ~30-60 min for the homogeneous
    // domains).
    let heterogeneity = match id {
        TaskId::Panel | TaskId::Project | TaskId::Chair => 3.0,
        _ => 1.0,
    };
    skeleton + per_extractor * heterogeneity
}

/// The first styled region of a record with the given flag, as text.
fn styled_text(doc: &Document, flag: u8) -> Option<String> {
    let (s, e) = doc.styled_regions(0, doc.len(), flag).into_iter().next()?;
    Some(doc.text()[s as usize..e as usize].to_string())
}

/// The number right after `label` (first occurrence).
fn number_after(doc: &Document, label: &str) -> Option<f64> {
    let text = doc.text();
    let pos = text.find(label)? + label.len();
    let rest = text[pos..].trim_start_matches([' ', '$', ':']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == ','))
        .unwrap_or(rest.len());
    iflex_text::parse_number(&rest[..end])
}

/// Precise extraction results (exact text rows) for a task over the given
/// record documents. Each extractor is the "Perl procedure" of §2.1.
pub fn run_precise(corpus: &Corpus, id: TaskId, n: Option<usize>) -> Vec<Vec<String>> {
    use iflex::engine::similarity::approx_match;
    let task = corpus.task(id, n);
    let store = &corpus.store;
    let docs = |t: usize| -> Vec<&Document> {
        task.tables[t].1.iter().map(|&d| store.doc(d)).collect()
    };
    let norm = iflex::norm_text;
    match id {
        TaskId::T1 => docs(0)
            .iter()
            .filter_map(|d| {
                let title = styled_text(d, style::BOLD)?;
                let votes = number_after(d, "votes")?;
                (votes < 25_000.0).then(|| vec![norm(&title)])
            })
            .collect(),
        TaskId::T2 => docs(0)
            .iter()
            .filter_map(|d| {
                let title = styled_text(d, style::ITALIC)?;
                let year = number_after(d, "released")?;
                (1950.0..1970.0).contains(&year).then(|| vec![norm(&title)])
            })
            .collect(),
        TaskId::T3 => {
            let imdb: Vec<String> = docs(0)
                .iter()
                .filter_map(|d| styled_text(d, style::BOLD))
                .collect();
            let ebert: Vec<String> = docs(1)
                .iter()
                .filter_map(|d| styled_text(d, style::ITALIC))
                .collect();
            let pras: Vec<String> = docs(2)
                .iter()
                .filter_map(|d| styled_text(d, style::BOLD))
                .collect();
            let mut out = Vec::new();
            for t1 in &imdb {
                for t2 in &ebert {
                    if !approx_match(t1, t2) {
                        continue;
                    }
                    for t3 in &pras {
                        if approx_match(t2, t3) {
                            out.push(vec![norm(t1)]);
                        }
                    }
                }
            }
            out
        }
        TaskId::T4 => docs(0)
            .iter()
            .filter_map(|d| {
                let title = styled_text(d, style::ITALIC)?;
                number_after(d, "journal year").map(|_| vec![norm(&title)])
            })
            .collect(),
        TaskId::T5 => docs(0)
            .iter()
            .filter_map(|d| {
                let title = styled_text(d, style::BOLD)?;
                let fp = number_after(d, "pages")?;
                let text = d.text();
                let pages_at = text.find("pages")?;
                let dash_at = pages_at + text[pages_at..].find('-')?;
                let after = &text[dash_at + 1..];
                let end = after
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(after.len());
                let lp = iflex_text::parse_number(&after[..end])?;
                (lp < fp + 5.0).then(|| vec![norm(&title)])
            })
            .collect(),
        TaskId::T6 => {
            let extract = |ds: Vec<&Document>| -> Vec<(String, String)> {
                ds.iter()
                    .filter_map(|d| {
                        Some((
                            styled_text(d, style::BOLD)?,
                            styled_text(d, style::ITALIC)?,
                        ))
                    })
                    .collect()
            };
            let sigmod = extract(docs(0));
            let icde = extract(docs(1));
            let mut out = Vec::new();
            for (t1, a1) in &sigmod {
                for (_, a2) in &icde {
                    if approx_match(a1, a2) {
                        out.push(vec![norm(t1)]);
                    }
                }
            }
            out
        }
        TaskId::T7 => docs(0)
            .iter()
            .filter_map(|d| {
                let title = styled_text(d, style::BOLD)?;
                let price = number_after(d, "our price")?;
                (price > 100.0).then(|| vec![norm(&title)])
            })
            .collect(),
        TaskId::T8 => docs(0)
            .iter()
            .filter_map(|d| {
                let title = styled_text(d, style::BOLD)?;
                let lp = number_after(d, "List:")?;
                let np = number_after(d, "New:")?;
                let up = number_after(d, "Used:")?;
                (lp == np && up < np).then(|| vec![norm(&title)])
            })
            .collect(),
        TaskId::T9 => {
            let amazon: Vec<(String, f64)> = docs(0)
                .iter()
                .filter_map(|d| {
                    Some((styled_text(d, style::BOLD)?, number_after(d, "New:")?))
                })
                .collect();
            let barnes: Vec<(String, f64)> = docs(1)
                .iter()
                .filter_map(|d| {
                    Some((styled_text(d, style::BOLD)?, number_after(d, "our price")?))
                })
                .collect();
            let mut out = Vec::new();
            for (t1, np) in &amazon {
                for (t2, bp) in &barnes {
                    if approx_match(t1, t2) && np < bp {
                        out.push(vec![norm(t1)]);
                    }
                }
            }
            out
        }
        TaskId::Panel | TaskId::Project | TaskId::Chair => {
            // DBLife ground truth is stored directly on the corpus.
            match id {
                TaskId::Panel => corpus
                    .dblife
                    .panels
                    .iter()
                    .map(|(p, c)| vec![norm(p), norm(c)])
                    .collect(),
                TaskId::Project => corpus
                    .dblife
                    .projects
                    .iter()
                    .map(|(p, c)| vec![norm(p), norm(c)])
                    .collect(),
                _ => corpus
                    .dblife
                    .chairs
                    .iter()
                    .map(|(p, t, c)| vec![norm(p), norm(c), norm(t)])
                    .collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_corpus::CorpusConfig;

    #[test]
    fn xlog_times_match_table3_band() {
        // Table 3 Xlog column: T1 ≈ 28-29, T3 ≈ 58, T8 ≈ 42-43.
        assert!((26.0..32.0).contains(&xlog_dev_minutes(TaskId::T1)));
        assert!((54.0..62.0).contains(&xlog_dev_minutes(TaskId::T3)));
        assert!((38.0..46.0).contains(&xlog_dev_minutes(TaskId::T8)));
        // DBLife ≈ 2-3 hours
        assert!(xlog_dev_minutes(TaskId::Panel) >= 100.0);
    }

    #[test]
    fn precise_extractors_reproduce_truth() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in [TaskId::T1, TaskId::T2, TaskId::T4, TaskId::T7, TaskId::T8] {
            let task = c.task(id, Some(30));
            let mut got = run_precise(&c, id, Some(30));
            let mut want = task.truth.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want, "{id:?}");
        }
    }

    #[test]
    fn precise_join_extractors_reproduce_truth() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in [TaskId::T3, TaskId::T6, TaskId::T9] {
            let task = c.task(id, Some(30));
            let mut got = run_precise(&c, id, Some(30));
            let mut want = task.truth.clone();
            got.sort();
            want.sort();
            assert_eq!(got.len(), want.len(), "{id:?}");
            assert_eq!(got, want, "{id:?}");
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use iflex_corpus::CorpusConfig;

    #[test]
    fn precise_extractors_respect_scenario_subsets() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in [TaskId::T1, TaskId::T5] {
            let small = run_precise(&c, id, Some(10)).len();
            let large = run_precise(&c, id, Some(30)).len();
            assert!(small <= large, "{id:?}");
        }
    }

    #[test]
    fn dblife_xlog_model_is_hours_not_minutes() {
        for id in iflex_corpus::TaskId::DBLIFE {
            let m = xlog_dev_minutes(id);
            assert!((90.0..240.0).contains(&m), "{id:?}: {m}");
        }
    }

    #[test]
    fn t5_precise_page_arithmetic() {
        let c = Corpus::build(CorpusConfig::tiny());
        let got = run_precise(&c, TaskId::T5, Some(40));
        let want = c.task(TaskId::T5, Some(40)).truth;
        assert_eq!(got.len(), want.len());
    }
}
