//! # iflex-baseline
//!
//! The two comparison methods of §6:
//!
//! * [`manual`] — a human collects the answer by hand from the raw
//!   records (cost model calibrated against Table 3's Manual column);
//! * [`xlog`] — the precise-Xlog method: hand-written procedural
//!   extractors (the Rust equivalent of the paper's Perl modules) that
//!   produce exact results, plus its development-time model.
//!
//! The precise extractors double as an independent cross-check of the
//! corpus ground truth: `xlog::run_precise` must reproduce `Task::truth`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manual;
pub mod xlog;

pub use manual::manual_minutes;
pub use xlog::{run_precise, xlog_dev_minutes};
