//! Rendering for JSONL trace dumps: a per-rule self-time table (the
//! flamegraph numbers, flattened) and the assistant's iteration timeline.
//!
//! Consumed by the `exp_trace` binary and the trace-replay integration
//! test. Input is the validated span list from
//! [`iflex_engine::obs::replay`].

use iflex_engine::obs::{QuantileSketch, Span, SpanKind, Window};
use std::collections::BTreeMap;

/// Aggregated cost of one rule (by rule text) across every run in the
/// trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRow {
    /// The rule text (the span name).
    pub name: String,
    /// How many times the rule span appeared.
    pub count: u64,
    /// Total inclusive time, µs.
    pub inclusive_us: u64,
    /// Total self time (inclusive minus direct operator children), µs.
    pub self_us: u64,
    /// Total tuples the rule produced (summed `tuples_out`).
    pub tuples_out: u64,
}

/// Aggregated cost of one operator kind across the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRow {
    /// Operator name (`scan_ext`, `cross_join`, …).
    pub name: String,
    /// Span count.
    pub count: u64,
    /// Total inclusive time, µs — operators nest, so this over-counts
    /// relative to wall clock; self time is what sums to the rule total.
    pub inclusive_us: u64,
    /// Total self time (inclusive minus direct operator children), µs.
    pub self_us: u64,
}

/// One assistant iteration for the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationRow {
    /// Span name (`iteration3`, `final`).
    pub name: String,
    /// Start offset from the first span in the trace, µs.
    pub start_us: u64,
    /// Inclusive duration, µs.
    pub dur_us: u64,
    /// Engine runs begun directly under this iteration.
    pub runs: u64,
    /// Probe spans anywhere below this iteration.
    pub probes: u64,
    /// Questions asked (the `questions` arg, when present).
    pub questions: Option<u64>,
    /// Result size (the `size` arg, when present).
    pub size: Option<u64>,
}

/// One logical-plan-optimizer record (DESIGN.md §11): the rule and the
/// pass summary + estimated-vs-actual selectivity the engine emitted as
/// an `opt` instant under the rule span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptRow {
    /// The rule text (the parent rule span's name).
    pub rule: String,
    /// The rewrite summary (`pushdowns=… reorders=… … act_sel=…`).
    pub note: String,
    /// How many runs emitted this exact rule/summary pair.
    pub count: u64,
}

/// Collects the optimizer instants, deduplicated by (rule, summary) —
/// a session re-optimizes the same rule every run, so identical
/// rewrites collapse into one row with a count.
pub fn optimizer_notes(
    spans: &[Span],
    events: &[iflex_engine::obs::trace::TraceEvent],
) -> Vec<OptRow> {
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut rows: Vec<OptRow> = Vec::new();
    for e in events
        .iter()
        .filter(|e| e.ph == iflex_engine::obs::Phase::Instant && e.name == "opt")
    {
        let rule = by_id
            .get(&e.parent)
            .map(|s| s.name.as_str())
            .unwrap_or("<unknown rule>")
            .to_string();
        let note = e.note.clone().unwrap_or_default();
        match rows.iter_mut().find(|r| r.rule == rule && r.note == note) {
            Some(r) => r.count += 1,
            None => rows.push(OptRow { rule, note, count: 1 }),
        }
    }
    rows
}

/// Renders the optimizer table.
pub fn render_optimizer(rows: &[OptRow]) -> String {
    let mut out = String::from("Logical-plan optimizer (per rule)\n");
    if rows.is_empty() {
        out += "  (no rules optimized)\n";
        return out;
    }
    for r in rows {
        out += &format!("  ×{:<4} {}\n        {}\n", r.count, r.rule, r.note);
    }
    out
}

fn children_index(spans: &[Span]) -> BTreeMap<u64, Vec<usize>> {
    let mut by_parent: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_parent.entry(s.parent).or_default().push(i);
    }
    by_parent
}

/// Self time of span `i`: inclusive duration minus the durations of its
/// direct children (any kind — a rule's cost below its operators, an
/// operator's cost below its shards, belongs to the child).
fn self_us(spans: &[Span], by_parent: &BTreeMap<u64, Vec<usize>>, i: usize) -> u64 {
    let child_total: u64 = by_parent
        .get(&spans[i].id)
        .map(|cs| cs.iter().map(|&c| spans[c].dur_us()).sum())
        .unwrap_or(0);
    spans[i].dur_us().saturating_sub(child_total)
}

/// Aggregates rule spans into per-rule rows, sorted by self time
/// (descending), ties broken by name.
pub fn rule_self_time(spans: &[Span]) -> Vec<RuleRow> {
    let by_parent = children_index(spans);
    let mut agg: BTreeMap<&str, RuleRow> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::Rule {
            continue;
        }
        let row = agg.entry(&s.name).or_insert_with(|| RuleRow {
            name: s.name.clone(),
            count: 0,
            inclusive_us: 0,
            self_us: 0,
            tuples_out: 0,
        });
        row.count += 1;
        row.inclusive_us += s.dur_us();
        row.self_us += self_us(spans, &by_parent, i);
        row.tuples_out += s.arg("tuples_out").unwrap_or(0);
    }
    let mut rows: Vec<RuleRow> = agg.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    rows
}

/// Aggregates operator spans into per-operator rows, sorted by self time.
pub fn operator_self_time(spans: &[Span]) -> Vec<OpRow> {
    let by_parent = children_index(spans);
    let mut agg: BTreeMap<&str, OpRow> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::Operator {
            continue;
        }
        let row = agg.entry(&s.name).or_insert_with(|| OpRow {
            name: s.name.clone(),
            count: 0,
            inclusive_us: 0,
            self_us: 0,
        });
        row.count += 1;
        row.inclusive_us += s.dur_us();
        row.self_us += self_us(spans, &by_parent, i);
    }
    let mut rows: Vec<OpRow> = agg.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    rows
}

fn count_below(spans: &[Span], by_parent: &BTreeMap<u64, Vec<usize>>, root: usize, kind: SpanKind) -> u64 {
    let mut n = 0;
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if let Some(cs) = by_parent.get(&spans[i].id) {
            for &c in cs {
                if spans[c].kind == kind {
                    n += 1;
                }
                stack.push(c);
            }
        }
    }
    n
}

/// Extracts the assistant iteration timeline, in start order. The epoch
/// is the earliest `t0` in the trace.
pub fn iteration_timeline(spans: &[Span]) -> Vec<IterationRow> {
    let by_parent = children_index(spans);
    let epoch = spans.iter().map(|s| s.t0).min().unwrap_or(0);
    let mut rows = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::Iteration {
            continue;
        }
        let runs = by_parent
            .get(&s.id)
            .map(|cs| cs.iter().filter(|&&c| spans[c].kind == SpanKind::Run).count() as u64)
            .unwrap_or(0);
        rows.push(IterationRow {
            name: s.name.clone(),
            start_us: s.t0 - epoch,
            dur_us: s.dur_us(),
            runs,
            probes: count_below(spans, &by_parent, i, SpanKind::Probe),
            questions: s.arg("questions"),
            size: s.arg("size"),
        });
    }
    rows.sort_by_key(|r| r.start_us);
    rows
}

/// Per-name latency quantiles of span duration — the offline replay
/// analogue of the live `run_us` sketch series the service exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Span name (rule text or operator name).
    pub name: String,
    /// Span count feeding the sketch.
    pub count: u64,
    /// Median duration, µs.
    pub p50_us: f64,
    /// 95th-percentile duration, µs.
    pub p95_us: f64,
    /// 99th-percentile duration, µs.
    pub p99_us: f64,
}

/// Builds p50/p95/p99 duration rows for every span of `kind`, sorted by
/// p99 (descending), ties broken by name. Each name gets its own
/// [`QuantileSketch`], so the numbers carry the same relative-error
/// guarantee as the live endpoint.
pub fn latency_quantiles(spans: &[Span], kind: SpanKind) -> Vec<LatencyRow> {
    let mut agg: BTreeMap<&str, QuantileSketch> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.kind == kind) {
        agg.entry(&s.name).or_default().observe(s.dur_us());
    }
    let mut rows: Vec<LatencyRow> = agg
        .into_iter()
        .map(|(name, sk)| LatencyRow {
            name: name.to_string(),
            count: sk.count(),
            p50_us: sk.quantile(0.50).unwrap_or(0.0),
            p95_us: sk.quantile(0.95).unwrap_or(0.0),
            p99_us: sk.quantile(0.99).unwrap_or(0.0),
        })
        .collect();
    rows.sort_by(|a, b| b.p99_us.total_cmp(&a.p99_us).then(a.name.cmp(&b.name)));
    rows
}

/// Renders the latency-quantile table for one span kind.
pub fn render_latency(rows: &[LatencyRow], what: &str) -> String {
    let mut out = format!("{what} latency quantiles\n");
    out += &format!(
        "{:>6} {:>10} {:>10} {:>10}  {}\n",
        "spans", "p50 ms", "p95 ms", "p99 ms", what.to_lowercase()
    );
    for r in rows {
        out += &format!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2}  {}\n",
            r.count,
            r.p50_us / 1000.0,
            r.p95_us / 1000.0,
            r.p99_us / 1000.0,
            r.name
        );
    }
    out
}

/// Trailing engine-run rates reconstructed from the trace: run spans
/// replayed through a [`Window`] via `observe_at`, read at the last
/// run's start — the same 1s/10s/60s horizons the live endpoint serves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRates {
    /// Total run spans in the trace.
    pub runs: u64,
    /// Runs per second over the trailing 1s / 10s / 60s windows.
    pub rates: [f64; 3],
    /// Mean run duration (µs) over the trailing 60s window.
    pub mean_us_60s: f64,
}

/// Replays run-span start times into a sliding window and reads the
/// trailing rates at trace end.
pub fn run_rates(spans: &[Span]) -> RunRates {
    let w = Window::new();
    let mut runs = 0;
    let mut end = 0;
    for s in spans.iter().filter(|s| s.kind == SpanKind::Run) {
        w.observe_at(s.t0, s.dur_us());
        runs += 1;
        end = end.max(s.t0);
    }
    let rate = |secs: u64| w.stats_at(end, secs).rate();
    RunRates {
        runs,
        rates: [rate(1), rate(10), rate(60)],
        mean_us_60s: w.stats_at(end, 60).mean(),
    }
}

/// Renders the windowed run-rate summary.
pub fn render_run_rates(r: &RunRates) -> String {
    format!(
        "Engine run rate (trailing windows at trace end)\n  \
         {} runs — {:.1}/s over 1s, {:.1}/s over 10s, {:.1}/s over 60s; \
         mean run {:.2} ms (60s)\n",
        r.runs,
        r.rates[0],
        r.rates[1],
        r.rates[2],
        r.mean_us_60s / 1000.0
    )
}

/// The `dropped` count from the journal's truncation marker, when the
/// tracer hit its event cap while recording ([`Tracer::to_jsonl`]
/// appends the marker); `None` for a complete journal.
pub fn truncation(events: &[iflex_engine::obs::trace::TraceEvent]) -> Option<u64> {
    events.iter().find(|e| e.name == "journal_truncated").map(|e| {
        e.args
            .iter()
            .find(|(k, _)| *k == "dropped")
            .map(|(_, v)| *v)
            .unwrap_or(0)
    })
}

fn fmt_ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1000.0)
}

/// Renders the per-rule self-time table.
pub fn render_rule_table(rows: &[RuleRow]) -> String {
    let mut out = String::from("Per-rule self time\n");
    out += &format!(
        "{:>6} {:>10} {:>10} {:>10}  rule\n",
        "runs", "self ms", "incl ms", "tuples"
    );
    for r in rows {
        out += &format!(
            "{:>6} {:>10} {:>10} {:>10}  {}\n",
            r.count,
            fmt_ms(r.self_us),
            fmt_ms(r.inclusive_us),
            r.tuples_out,
            r.name
        );
    }
    out
}

/// Renders the per-operator self-time table.
pub fn render_operator_table(rows: &[OpRow]) -> String {
    let mut out = String::from("Per-operator self time\n");
    out += &format!("{:>6} {:>10} {:>10}  operator\n", "calls", "self ms", "incl ms");
    for r in rows {
        out += &format!(
            "{:>6} {:>10} {:>10}  {}\n",
            r.count,
            fmt_ms(r.self_us),
            fmt_ms(r.inclusive_us),
            r.name
        );
    }
    out
}

/// Renders the assistant iteration timeline.
pub fn render_timeline(rows: &[IterationRow]) -> String {
    let mut out = String::from("Assistant iteration timeline\n");
    out += &format!(
        "{:>12} {:>10} {:>10} {:>5} {:>7} {:>10} {:>10}\n",
        "iteration", "start ms", "dur ms", "runs", "probes", "questions", "size"
    );
    let opt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "—".into());
    for r in rows {
        out += &format!(
            "{:>12} {:>10} {:>10} {:>5} {:>7} {:>10} {:>10}\n",
            r.name,
            fmt_ms(r.start_us),
            fmt_ms(r.dur_us),
            r.runs,
            r.probes,
            opt(r.questions),
            opt(r.size)
        );
    }
    out
}

/// The full report: a truncation warning when the journal overflowed,
/// then the rule table, operator table, latency quantiles, windowed run
/// rates, iteration timeline, and the degradation instants (rule +
/// cause/site notes), when any.
pub fn render_report(spans: &[Span], events: &[iflex_engine::obs::trace::TraceEvent]) -> String {
    let mut out = String::new();
    if let Some(dropped) = truncation(events) {
        out += &format!(
            "WARNING: trace truncated — {dropped} events dropped at the journal \
             cap; every table below under-reports.\n\n"
        );
    }
    out += &render_rule_table(&rule_self_time(spans));
    out += "\n";
    out += &render_operator_table(&operator_self_time(spans));
    out += "\n";
    out += &render_latency(&latency_quantiles(spans, SpanKind::Rule), "Per-rule");
    out += "\n";
    out += &render_latency(&latency_quantiles(spans, SpanKind::Operator), "Per-operator");
    out += "\n";
    out += &render_run_rates(&run_rates(spans));
    out += "\n";
    out += &render_optimizer(&optimizer_notes(spans, events));
    out += "\n";
    out += &render_timeline(&iteration_timeline(spans));
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let degs: Vec<String> = events
        .iter()
        .filter(|e| e.ph == iflex_engine::obs::Phase::Instant && e.name == "degradation")
        .map(|e| {
            let rule = by_id
                .get(&e.parent)
                .map(|s| s.name.as_str())
                .unwrap_or("<unknown rule>");
            format!(
                "  {} — {}",
                e.note.as_deref().unwrap_or("<no cause>"),
                rule
            )
        })
        .collect();
    if !degs.is_empty() {
        out += "\nDegradations\n";
        for d in &degs {
            out += d;
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_engine::obs::{parse_jsonl, validate_nesting, SpanId, Tracer};

    fn sample_trace() -> Tracer {
        let t = Tracer::enabled();
        let session = t.begin(SpanId::NONE, SpanKind::Session, "session");
        let it = t.begin(session, SpanKind::Iteration, "iteration1");
        let run = t.begin(it, SpanKind::Run, "run:sampled");
        let rule = t.begin(run, SpanKind::Rule, "q(x) :- p(x).");
        let op = t.begin(rule, SpanKind::Operator, "scan_ext");
        t.end_with(op, &[("tuples_out", 10)]);
        t.end_with(rule, &[("tuples_out", 10)]);
        t.end(run);
        let q = t.begin(it, SpanKind::Question, "question0");
        let probe = t.begin(q, SpanKind::Probe, "probe");
        t.end(probe);
        t.end(q);
        t.end_with(it, &[("questions", 1), ("size", 10)]);
        t.end(session);
        t
    }

    #[test]
    fn rule_and_operator_aggregation() {
        let t = sample_trace();
        let spans = validate_nesting(&t.events()).expect("well-formed");
        let rules = rule_self_time(&spans);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].count, 1);
        assert_eq!(rules[0].tuples_out, 10);
        assert!(rules[0].self_us <= rules[0].inclusive_us);
        let ops = operator_self_time(&spans);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].name, "scan_ext");
    }

    #[test]
    fn timeline_sees_runs_probes_and_args() {
        let t = sample_trace();
        let spans = validate_nesting(&t.events()).expect("well-formed");
        let tl = iteration_timeline(&spans);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].runs, 1);
        assert_eq!(tl[0].probes, 1);
        assert_eq!(tl[0].questions, Some(1));
        assert_eq!(tl[0].size, Some(10));
    }

    #[test]
    fn report_renders_from_a_round_tripped_dump() {
        let t = sample_trace();
        let events = parse_jsonl(&t.to_jsonl()).expect("parse");
        let spans = validate_nesting(&events).expect("well-formed");
        let report = render_report(&spans, &events);
        assert!(report.contains("Per-rule self time"));
        assert!(report.contains("q(x) :- p(x)."));
        assert!(report.contains("Assistant iteration timeline"));
        assert!(report.contains("iteration1"));
        assert!(report.contains("Per-rule latency quantiles"));
        assert!(report.contains("Engine run rate"));
        // A complete journal renders no truncation warning.
        assert!(!report.contains("WARNING: trace truncated"));
    }

    #[test]
    fn latency_quantiles_and_run_rates_aggregate() {
        let t = sample_trace();
        let spans = validate_nesting(&t.events()).expect("well-formed");
        let rules = latency_quantiles(&spans, SpanKind::Rule);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].count, 1);
        assert!(rules[0].p50_us <= rules[0].p99_us);
        let r = run_rates(&spans);
        assert_eq!(r.runs, 1);
        // A single run at t0 lands inside every trailing horizon.
        assert!(r.rates.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn truncated_journal_surfaces_a_warning() {
        let t = iflex_engine::obs::Tracer::with_cap(2);
        let a = t.begin(SpanId::NONE, SpanKind::Run, "run");
        let b = t.begin(a, SpanKind::Rule, "r");
        t.end(b);
        t.end(a);
        let events = parse_jsonl(&t.to_jsonl()).expect("parse");
        assert_eq!(truncation(&events), Some(2));
        // The dropped End events orphan the spans, so skip nesting
        // validation and render against the open-span-free view.
        let report = render_report(&[], &events);
        assert!(report.contains("WARNING: trace truncated — 2 events dropped"));
    }
}
