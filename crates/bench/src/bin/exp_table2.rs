//! Table 2: the nine IE tasks and their initial (approximate) programs.

use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn main() {
    let corpus = Corpus::build(CorpusConfig::tiny());
    println!("Table 2: IE tasks for our experiments\n");
    for id in TaskId::TABLE2 {
        let task = corpus.task(id, Some(10));
        println!("== {} ({}) — {}", id.name(), id.domain(), id.description());
        println!("{}", task.program);
    }
}
