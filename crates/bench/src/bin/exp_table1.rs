//! Table 1: the real-world domains and tables for the experiments.

use iflex_corpus::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::build(CorpusConfig::default());
    println!("Table 1: Real-world domains for our experiments (synthetic reproduction)");
    println!("{:<8} {:<14} {:<40} {:>8}", "Domain", "Table", "Description", "Records");
    println!("{}", "-".repeat(74));
    for (domain, table, desc, n) in corpus.table1() {
        println!("{domain:<8} {table:<14} {desc:<40} {n:>8}");
    }
    println!(
        "{:<8} {:<14} {:<40} {:>8}",
        "DBLife",
        "snapshot",
        "crawled community pages (conf/proj/noise)",
        corpus.dblife.docs.len()
    );
    println!("\ntotal documents in store: {}", corpus.store.len());
}
