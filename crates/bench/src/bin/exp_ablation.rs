//! Ablation experiment: measures each design choice DESIGN.md calls out
//! by turning it off and re-running a representative workload —
//!
//! * ψ path: exact BAnnotate (a-table) vs compact-direct;
//! * reuse: warm per-rule cache vs cold re-execution per iteration;
//! * subset evaluation: simulation over a 15 % sample vs the full input.
//!
//! Reported as wall-clock of a fixed work unit; lower is better.

use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use iflex_engine::AnnotatePolicy;
use std::time::Instant;

fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let corpus = Corpus::build(CorpusConfig::tiny());
    println!("Ablations (tiny corpus; seconds per run, lower is better)\n");

    // --- ψ path: a program with attribute annotations over many values
    let t1 = corpus.task(TaskId::T1, Some(30));
    let annotated = parse_program(
        r#"
        q(x, <v>) :- imdb(x), e(#x, v).
        e(#x, v) :- from(#x, v), numeric(v) = yes.
    "#,
    )
    .unwrap();
    for (label, policy) in [
        ("psi/auto", AnnotatePolicy::Auto),
        ("psi/force-exact", AnnotatePolicy::ForceExact),
        ("psi/force-compact", AnnotatePolicy::ForceCompact),
    ] {
        let mut eng = t1.engine(&corpus);
        eng.limits.annotate_policy = policy;
        let secs = time(
            || {
                eng.clear_cache();
                let _ = eng.run(&annotated).unwrap();
            },
            20,
        );
        println!("{label:<22} {secs:.4}s");
    }

    // --- reuse: iterate a refinement sequence with and without the cache
    println!();
    let t8 = corpus.task(TaskId::T8, Some(40));
    let refinements = [
        ("underlined", FeatureArg::distinct_yes()),
        ("max-value", FeatureArg::Num(200.0)),
    ];
    for (label, reuse) in [("reuse/on", true), ("reuse/off", false)] {
        let mut eng = t8.engine(&corpus);
        eng.limits.reuse_enabled = reuse;
        let attrs = iflex::assistant::attributes(&t8.program);
        let lp = attrs.iter().find(|a| a.var == "lp").unwrap().clone();
        let secs = time(
            || {
                let mut prog = t8.program.clone();
                eng.run(&prog).unwrap();
                for (feature, arg) in &refinements {
                    prog = iflex::assistant::add_constraint(&prog, &lp, feature, arg);
                    eng.run(&prog).unwrap();
                }
            },
            10,
        );
        println!("{label:<22} {secs:.4}s");
    }

    // --- subset evaluation: one simulation-style run per fraction
    println!();
    let t9 = corpus.task(TaskId::T9, Some(40));
    for pct in [5u32, 15, 30, 100] {
        let mut eng = t9.engine(&corpus);
        let sample = Sample::new(pct as f64 / 100.0, 7);
        let secs = time(
            || {
                eng.clear_cache();
                let _ = eng.run_sampled(&t9.program, sample).unwrap();
            },
            10,
        );
        println!("subset/{pct:<3}%            {secs:.4}s");
    }
}
