//! Table 5: evaluating the question-selection strategies — for each of
//! nine scenarios, the sequential and simulation strategies' iterations,
//! questions asked, total time, and superset size. The expected shape:
//! sequential is faster (no simulation cost) but can converge early to
//! much larger supersets on multi-attribute and join tasks.

use iflex_bench::{fmt_pct, run_session, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let cfg = if (scale - 1.0).abs() < 1e-9 {
        CorpusConfig::default()
    } else {
        CorpusConfig::scaled(scale)
    };
    eprintln!("building corpus (scale {scale})...");
    let corpus = Corpus::build(cfg);

    // The paper's nine Table 5 scenarios.
    let scenarios: [(TaskId, Option<usize>); 9] = [
        (TaskId::T1, Some(100)),
        (TaskId::T2, Some(100)),
        (TaskId::T3, Some(100)),
        (TaskId::T4, Some(100)),
        (TaskId::T5, Some(500)),
        (TaskId::T6, Some(500)),
        (TaskId::T7, Some(500)),
        (TaskId::T8, Some(500)),
        (TaskId::T9, Some(500)),
    ];

    println!("Table 5: Evaluating question selection strategies");
    println!(
        "{:<5} {:>7} {:>8} {:<6} {:>6} {:>5} {:>9} {:>10}",
        "Task", "Tuples", "Correct", "Scheme", "Iters", "Qs", "Time(m)", "Superset"
    );
    println!("{}", "-".repeat(64));
    for (id, n) in scenarios {
        let task = corpus.task(id, n);
        for strat in [Strat::Seq, Strat::Sim] {
            let run = run_session(&corpus, &task, strat);
            let superset = if run.outcome.full_run_within_budget {
                fmt_pct(run.quality.superset_pct)
            } else {
                format!("{}†", fmt_pct(run.quality.superset_pct))
            };
            println!(
                "{:<5} {:>7} {:>8} {:<6} {:>6} {:>5} {:>9.2} {:>10}",
                id.name(),
                task.tables[0].1.len(),
                run.quality.correct_tuples,
                strat.name(),
                run.outcome.iterations,
                run.outcome.questions_asked,
                run.outcome.minutes,
                superset,
            );
        }
    }
    println!("† full run exceeded the materialization budget; subset-estimate shown");
}
