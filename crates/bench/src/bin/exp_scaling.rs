//! Machine-time scaling: final-program execution wall clock vs corpus
//! scale, one representative task per domain. §6.3's anecdotal claim —
//! "the approximate query processor proves quite efficient even on large
//! data sets" — corresponds to near-linear growth here.

use iflex_bench::{run_session, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use std::time::Instant;

fn main() {
    println!("Scaling: session wall clock (seconds) vs corpus scale");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "scale", "T1", "T5", "T8", "Panel"
    );
    for scale in [0.1, 0.25, 0.5, 1.0] {
        let corpus = Corpus::build(CorpusConfig::scaled(scale));
        let mut row = format!("{scale:>6}");
        for id in [TaskId::T1, TaskId::T5, TaskId::T8, TaskId::Panel] {
            let task = corpus.task(id, None);
            let t0 = Instant::now();
            let run = run_session(&corpus, &task, Strat::Sim);
            assert!(run.quality.recall > 0.99, "{id:?} at scale {scale}");
            row += &format!(" {:>9.2}s", t0.elapsed().as_secs_f64());
        }
        println!("{row}");
    }
}
