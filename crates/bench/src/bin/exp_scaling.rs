//! Machine-time scaling: final-program execution wall clock vs corpus
//! scale, one representative task per domain. §6.3's anecdotal claim —
//! "the approximate query processor proves quite efficient even on large
//! data sets" — corresponds to near-linear growth here.
//!
//! Modes:
//! * no arguments — the original scaling table;
//! * `--scale <f>` (repeatable) — run the scaling table at the given
//!   corpus scale(s) instead of the default ladder; factors ≥10× the
//!   paper's sizes are supported (the corpus generators stay injective
//!   at any scale);
//! * `--parallel-report [path] [--smoke]` — sweeps the parallel-execution
//!   knobs (serial baseline without the feature memo, serial with it,
//!   threaded with it) at corpus scales 1 and 10, asserts the threaded
//!   result is byte-identical to serial, and — on hosts with ≥4 cores —
//!   asserts the morsel executor actually beats serial+memo at scale 10;
//!   writes a `BENCH_parallel.json` report. With `--smoke` the sweep is
//!   the speedup gate alone (or, on smaller hosts, a tiny identity-only
//!   sweep with a skip notice);
//! * `--smoke [path]` — alias for `--parallel-report [path] --smoke`,
//!   kept for the tier-1 gate;
//! * `--plan-report [path] [--smoke] [--scale f]...` — the logical-plan
//!   optimizer ablation (DESIGN.md §11) plus the columnar-core ablation
//!   (DESIGN.md §14): serial / +feature-memo / +optimizer / row-core,
//!   single-threaded with sampling and the incremental cache off so
//!   plan-execution cost is isolated, writing `BENCH_plan.json`,
//!   asserting all configurations produce identical results and that
//!   `Limits::use_columnar` on/off is byte-identical (table, stop
//!   reason, degradations); on ≥4-core hosts the full sweep also gates
//!   the columnar core beating the row core on T5/T8 at scale 10;
//! * `--telemetry-report [path] [--smoke]` — the live-telemetry overhead
//!   gate (DESIGN.md §12): the same session with the engine's window /
//!   sketch / flight-recorder instrumentation off vs on, asserting the
//!   results are identical and (in full mode) that the enabled arm costs
//!   under 5% extra wall clock on T1, writing `BENCH_telemetry.json`.

use iflex_bench::{run_session, run_session_configured, ExecConfig, RunResult, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use iflex_engine::default_threads;
use std::time::Instant;

fn scaling_table(scales: &[f64]) {
    println!("Scaling: session wall clock (seconds) vs corpus scale");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "scale", "T1", "T5", "T8", "Panel"
    );
    for &scale in scales {
        let corpus = Corpus::build(CorpusConfig::scaled(scale));
        let mut row = format!("{scale:>6}");
        for id in [TaskId::T1, TaskId::T5, TaskId::T8, TaskId::Panel] {
            let task = corpus.task(id, None);
            let t0 = Instant::now();
            let run = run_session(&corpus, &task, Strat::Sim);
            assert!(run.quality.recall > 0.99, "{id:?} at scale {scale}");
            row += &format!(" {:>9.2}s", t0.elapsed().as_secs_f64());
        }
        println!("{row}");
    }
}

struct Workload {
    id: TaskId,
    scale: f64,
}

struct Row {
    task: String,
    scale: f64,
    baseline_secs: f64,
    serial_secs: f64,
    threaded_secs: f64,
    memo_hits: usize,
    memo_misses: usize,
    /// Morsels dispensed by the threaded final run's work-stealing
    /// executor, and how many of them were stolen from another
    /// participant's segment.
    par_morsels: u64,
    par_steals: u64,
    /// min/max/imbalance summary of the threaded final run's
    /// per-participant busy time; `None` when the run had no parallel
    /// sections.
    shard_balance: Option<ShardBalance>,
}

#[derive(Clone, Copy)]
struct ShardBalance {
    min_us: u64,
    max_us: u64,
    /// max / mean — 1.0 is perfect balance.
    imbalance: f64,
}

fn shard_balance(busy_us: &[u64]) -> Option<ShardBalance> {
    if busy_us.is_empty() {
        return None;
    }
    let min_us = *busy_us.iter().min().unwrap();
    let max_us = *busy_us.iter().max().unwrap();
    let mean = busy_us.iter().sum::<u64>() as f64 / busy_us.len() as f64;
    Some(ShardBalance {
        min_us,
        max_us,
        imbalance: if mean > 0.0 { max_us as f64 / mean } else { 1.0 },
    })
}

fn timed(corpus: &Corpus, id: TaskId, exec: ExecConfig) -> (f64, RunResult) {
    let task = corpus.task(id, None);
    let run = run_session_configured(corpus, &task, Strat::Sim, exec);
    // Session wall-clock only: iterations + probes + final execution.
    // Engine construction and truth scoring are configuration-independent.
    (run.session_secs, run)
}

/// Sweeps one workload across the three configurations, checking that
/// every configuration produces the byte-identical result table (parallel
/// execution and memoization are performance levers, not semantics).
fn sweep(workload: &Workload, threads: usize) -> Row {
    let corpus = Corpus::build(CorpusConfig::scaled(workload.scale));
    let baseline = ExecConfig {
        threads: Some(1),
        use_feature_memo: false,
        ..ExecConfig::default()
    };
    let serial = ExecConfig {
        threads: Some(1),
        ..ExecConfig::default()
    };
    let threaded = ExecConfig {
        threads: Some(threads),
        ..ExecConfig::default()
    };
    let (baseline_secs, b) = timed(&corpus, workload.id, baseline);
    let (serial_secs, s) = timed(&corpus, workload.id, serial);
    let (threaded_secs, t) = timed(&corpus, workload.id, threaded);
    let b_table = format!("{:?}", b.outcome.table);
    for run in [&s, &t] {
        assert_eq!(
            run.quality.result_tuples, b.quality.result_tuples,
            "{:?} scale {}: config changed the result",
            workload.id, workload.scale
        );
        assert!((run.quality.recall - b.quality.recall).abs() < 1e-12);
        // The determinism contract is byte-level, not just count-level:
        // morsel-parallel execution must fold to the exact serial table.
        assert_eq!(
            format!("{:?}", run.outcome.table),
            b_table,
            "{:?} scale {}: config changed the result bytes",
            workload.id, workload.scale
        );
    }
    let stats = &t.outcome.final_stats;
    Row {
        task: format!("{:?}", workload.id),
        scale: workload.scale,
        baseline_secs,
        serial_secs,
        threaded_secs,
        memo_hits: t.memo_hits,
        memo_misses: t.memo_misses,
        par_morsels: stats.par_morsels,
        par_steals: stats.par_steals,
        shard_balance: shard_balance(&stats.shard_busy_us),
    }
}

/// Hand-rendered JSON (the workspace deliberately carries no JSON
/// dependency).
fn render_json(rows: &[Row], threads: usize) -> String {
    let mut out = String::from("{\n");
    out += &format!("  \"threads\": {threads},\n");
    out += &format!("  \"requested_threads\": {threads},\n");
    out += &format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    out += "  \"workloads\": [\n";
    for (i, r) in rows.iter().enumerate() {
        let hit_rate = if r.memo_hits + r.memo_misses > 0 {
            r.memo_hits as f64 / (r.memo_hits + r.memo_misses) as f64
        } else {
            0.0
        };
        out += "    {\n";
        out += &format!("      \"task\": \"{}\",\n", r.task);
        out += &format!("      \"scale\": {},\n", r.scale);
        out += &format!("      \"serial_baseline_secs\": {:.4},\n", r.baseline_secs);
        out += &format!("      \"serial_memo_secs\": {:.4},\n", r.serial_secs);
        out += &format!("      \"threaded_memo_secs\": {:.4},\n", r.threaded_secs);
        out += &format!(
            "      \"speedup_vs_baseline\": {:.2},\n",
            r.baseline_secs / r.threaded_secs.max(1e-9)
        );
        out += &format!(
            "      \"speedup_vs_serial_memo\": {:.2},\n",
            r.serial_secs / r.threaded_secs.max(1e-9)
        );
        out += &format!("      \"feature_cache_hits\": {},\n", r.memo_hits);
        out += &format!("      \"feature_cache_misses\": {},\n", r.memo_misses);
        out += &format!("      \"feature_cache_hit_rate\": {hit_rate:.4},\n");
        out += &format!("      \"par_morsels\": {},\n", r.par_morsels);
        out += &format!("      \"par_steals\": {},\n", r.par_steals);
        match r.shard_balance {
            Some(b) => {
                out += &format!("      \"shard_busy_us_min\": {},\n", b.min_us);
                out += &format!("      \"shard_busy_us_max\": {},\n", b.max_us);
                out += &format!("      \"shard_imbalance_ratio\": {:.3}\n", b.imbalance);
            }
            None => out += "      \"shard_imbalance_ratio\": null\n",
        }
        out += if i + 1 == rows.len() { "    }\n" } else { "    },\n" };
    }
    out += "  ]\n}\n";
    out
}

/// Warns (once per process) when the requested worker count exceeds the
/// host's available parallelism. The sweep still runs — the output stays
/// correct by construction — but threaded timings on an oversubscribed
/// host mostly measure scheduler churn, so the report records both
/// counts and the console says so up front. Returns the host count.
fn warn_if_oversubscribed(requested: usize) -> usize {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested > host {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "exp_scaling: warning: {requested} worker threads requested on a host \
                 with {host} available core(s); threaded timings will be dominated by \
                 oversubscription (both counts are recorded in the report)"
            );
        });
    }
    host
}

/// The corpus scale at which the morsel executor must demonstrably beat
/// serial+memo (per-tuple work is deep enough to amortize dispatch).
const GATE_SCALE: f64 = 10.0;
/// Required threaded speedup over serial+memo at [`GATE_SCALE`].
const GATE_SPEEDUP: f64 = 1.3;

fn parallel_report(path: &str, smoke: bool) {
    let threads = default_threads().max(4);
    let host = warn_if_oversubscribed(threads);
    // A host without ≥4 real cores cannot show a 4-thread speedup; the
    // gate is skipped there (with a notice), never silently weakened.
    let gate = host >= 4;
    let workloads: Vec<Workload> = if smoke {
        if gate {
            vec![Workload {
                id: TaskId::T1,
                scale: GATE_SCALE,
            }]
        } else {
            println!(
                "parallel speedup gate SKIPPED: host has {host} core(s), the gate \
                 needs >= 4; running the tiny identity-only sweep instead"
            );
            vec![Workload {
                id: TaskId::T1,
                scale: 0.1,
            }]
        }
    } else {
        vec![
            Workload {
                id: TaskId::T1,
                scale: 1.0,
            },
            Workload {
                id: TaskId::T5,
                scale: 1.0,
            },
            Workload {
                id: TaskId::T8,
                scale: 1.0,
            },
            Workload {
                id: TaskId::Panel,
                scale: 1.0,
            },
            Workload {
                id: TaskId::T1,
                scale: GATE_SCALE,
            },
            Workload {
                id: TaskId::T5,
                scale: GATE_SCALE,
            },
            Workload {
                id: TaskId::T8,
                scale: GATE_SCALE,
            },
        ]
    };
    let rows: Vec<Row> = workloads.iter().map(|w| sweep(w, threads)).collect();
    for r in &rows {
        let balance = match r.shard_balance {
            Some(b) => format!(
                "shards {:.1}–{:.1}ms ({:.2}x imbalance)",
                b.min_us as f64 / 1000.0,
                b.max_us as f64 / 1000.0,
                b.imbalance
            ),
            None => "no parallel sections".to_string(),
        };
        println!(
            "{:>6} @{}: baseline {:.2}s  serial+memo {:.2}s  {}-threads+memo {:.2}s  \
             ({:.2}x vs baseline)  morsels {} (stolen {})  {balance}",
            r.task,
            r.scale,
            r.baseline_secs,
            r.serial_secs,
            threads,
            r.threaded_secs,
            r.baseline_secs / r.threaded_secs.max(1e-9),
            r.par_morsels,
            r.par_steals,
        );
    }
    if gate {
        // The perf gate proper: threads must not lose to serial+memo at
        // scale 1, and must beat it by GATE_SPEEDUP at GATE_SCALE (Panel
        // is excluded — its sessions are dominated by question rounds,
        // not engine runs).
        for r in rows.iter().filter(|r| r.task != "Panel") {
            let speedup = r.serial_secs / r.threaded_secs.max(1e-9);
            if r.scale >= GATE_SCALE {
                let need = if smoke { 1.0 } else { GATE_SPEEDUP };
                assert!(
                    speedup >= need,
                    "{} @{}: threaded speedup vs serial+memo is {speedup:.2}x, \
                     below the {need:.1}x gate",
                    r.task,
                    r.scale
                );
            } else if (r.scale - 1.0).abs() < f64::EPSILON {
                assert!(
                    speedup >= 1.0,
                    "{} @{}: threads lose to serial+memo ({speedup:.2}x)",
                    r.task,
                    r.scale
                );
            }
        }
        println!("parallel speedup gate: OK");
    } else if !smoke {
        println!(
            "parallel speedup gate SKIPPED: host has {host} core(s), the gate needs >= 4 \
             (byte-identity was still asserted on every row)"
        );
    }
    std::fs::write(path, render_json(&rows, threads)).expect("write report");
    println!("wrote {path}");
}

/// One workload of the incremental ablation: the same session with the
/// DESIGN.md §9 incremental engine off (full re-execution every run) and
/// on, asserting identical results.
struct IncrRow {
    task: String,
    scale: f64,
    full_secs: f64,
    incremental_secs: f64,
    /// Incremental-cache hits/misses of the final full run (per-run
    /// counters; the session's iteration runs reset them).
    incr_hits: usize,
    incr_misses: usize,
    incr_invalidations: usize,
}

fn render_incr_json(rows: &[IncrRow]) -> String {
    let mut out = String::from("{\n");
    out += &format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    out += "  \"strategy\": \"Simulation\",\n";
    out += "  \"workloads\": [\n";
    for (i, r) in rows.iter().enumerate() {
        out += "    {\n";
        out += &format!("      \"task\": \"{}\",\n", r.task);
        out += &format!("      \"scale\": {},\n", r.scale);
        out += &format!("      \"full_reexec_secs\": {:.4},\n", r.full_secs);
        out += &format!("      \"incremental_secs\": {:.4},\n", r.incremental_secs);
        out += &format!(
            "      \"speedup\": {:.2},\n",
            r.full_secs / r.incremental_secs.max(1e-9)
        );
        out += &format!("      \"final_run_incr_hits\": {},\n", r.incr_hits);
        out += &format!("      \"final_run_incr_misses\": {},\n", r.incr_misses);
        out += &format!(
            "      \"final_run_incr_invalidations\": {}\n",
            r.incr_invalidations
        );
        out += if i + 1 == rows.len() { "    }\n" } else { "    },\n" };
    }
    out += "  ]\n}\n";
    out
}

/// The incremental-ablation sweep (`--incremental-report`): multi-iteration
/// sessions with the Simulation strategy, `use_incremental` off vs on,
/// single-threaded so the comparison isolates re-execution cost. The
/// binary asserts both configurations converge to the identical result.
fn incremental_report(path: &str, smoke: bool) {
    let workloads: Vec<Workload> = if smoke {
        vec![Workload {
            id: TaskId::T1,
            scale: 0.1,
        }]
    } else {
        vec![
            Workload {
                id: TaskId::T1,
                scale: 1.0,
            },
            Workload {
                id: TaskId::T5,
                scale: 1.0,
            },
        ]
    };
    let mut rows = Vec::new();
    for w in &workloads {
        let corpus = Corpus::build(CorpusConfig::scaled(w.scale));
        let full = ExecConfig {
            threads: Some(1),
            use_incremental: false,
            use_sampling: false,
            ..ExecConfig::default()
        };
        let incremental = ExecConfig {
            threads: Some(1),
            use_sampling: false,
            ..ExecConfig::default()
        };
        let (full_secs, f) = timed(&corpus, w.id, full);
        let (incremental_secs, i) = timed(&corpus, w.id, incremental);
        assert_eq!(
            i.quality.result_tuples, f.quality.result_tuples,
            "{:?} scale {}: incremental execution changed the result",
            w.id, w.scale
        );
        assert!((i.quality.recall - f.quality.recall).abs() < 1e-12);
        let st = &i.outcome.final_stats;
        rows.push(IncrRow {
            task: format!("{:?}", w.id),
            scale: w.scale,
            full_secs,
            incremental_secs,
            incr_hits: st.incr_hits,
            incr_misses: st.incr_misses,
            incr_invalidations: st.incr_invalidations,
        });
    }
    for r in &rows {
        println!(
            "{:>6} @{}: full re-exec {:.2}s  incremental {:.2}s  ({:.2}x)  final-run hits/misses {}/{}",
            r.task,
            r.scale,
            r.full_secs,
            r.incremental_secs,
            r.full_secs / r.incremental_secs.max(1e-9),
            r.incr_hits,
            r.incr_misses,
        );
    }
    std::fs::write(path, render_incr_json(&rows)).expect("write report");
    println!("wrote {path}");
}

/// One workload of the optimizer ablation: the same single-threaded
/// session under three plans-and-caches configurations plus the
/// columnar-core ablation arm, asserting every arm converges to the
/// identical result.
struct PlanRow {
    task: String,
    scale: f64,
    serial_secs: f64,
    memo_secs: f64,
    optimized_secs: f64,
    row_core_secs: f64,
    result_tuples: usize,
}

fn render_plan_json(rows: &[PlanRow], columnar_gate: &str) -> String {
    let mut out = String::from("{\n");
    out += &format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    out += "  \"strategy\": \"Simulation\",\n";
    out += "  \"regime\": \"threads=1, sampling off, incremental off\",\n";
    out += &format!("  \"columnar_gate\": \"{columnar_gate}\",\n");
    out += "  \"workloads\": [\n";
    for (i, r) in rows.iter().enumerate() {
        out += "    {\n";
        out += &format!("      \"task\": \"{}\",\n", r.task);
        out += &format!("      \"scale\": {},\n", r.scale);
        out += &format!("      \"serial_secs\": {:.4},\n", r.serial_secs);
        out += &format!("      \"serial_memo_secs\": {:.4},\n", r.memo_secs);
        out += &format!("      \"optimized_secs\": {:.4},\n", r.optimized_secs);
        out += &format!("      \"row_core_secs\": {:.4},\n", r.row_core_secs);
        out += &format!(
            "      \"speedup_vs_serial\": {:.2},\n",
            r.serial_secs / r.optimized_secs.max(1e-9)
        );
        out += &format!(
            "      \"speedup_vs_serial_memo\": {:.2},\n",
            r.memo_secs / r.optimized_secs.max(1e-9)
        );
        out += &format!(
            "      \"columnar_speedup_vs_row\": {:.2},\n",
            r.row_core_secs / r.optimized_secs.max(1e-9)
        );
        out += &format!("      \"result_tuples\": {}\n", r.result_tuples);
        out += if i + 1 == rows.len() { "    }\n" } else { "    },\n" };
    }
    out += "  ]\n}\n";
    out
}

/// The logical-plan optimizer sweep (`--plan-report`): three
/// configurations per workload — `serial` (no feature memo, no
/// optimizer), `memo` (feature memo, no optimizer), `optimized` (both)
/// — plus the columnar-core ablation arm `row` (optimized, but with
/// `use_columnar` off; DESIGN.md §14). Single-threaded, sampling and
/// the incremental cache off, so the comparison isolates plan-execution
/// cost; the binary asserts every configuration converges to the
/// identical result (tuple-for-tuple count and recall — the optimizer
/// is byte-exact, see the `prop_opt` property suite for the byte-level
/// ablation), and that the columnar and row cores are **byte-identical**
/// end to end: the final table's `Debug` rendering, the session's
/// `StopReason`, and the final run's degradation records.
///
/// On hosts with ≥4 cores the full sweep additionally gates the columnar
/// core's win: it must beat the row core on T5 and T8 at scale 10. On
/// smaller hosts the gate is skipped with a notice recorded in the
/// report — identity is still asserted on every row.
fn plan_report(path: &str, smoke: bool, scales: &[f64]) {
    let base = ExecConfig {
        threads: Some(1),
        use_incremental: false,
        use_sampling: false,
        ..ExecConfig::default()
    };
    let serial = ExecConfig {
        use_feature_memo: false,
        use_optimizer: false,
        ..base
    };
    let memo = ExecConfig {
        use_optimizer: false,
        ..base
    };
    let optimized = base;
    let row_core = ExecConfig {
        use_columnar: false,
        ..base
    };
    let (scales, tasks): (Vec<f64>, Vec<TaskId>) = if smoke {
        (vec![0.1], vec![TaskId::T1])
    } else {
        let scales = if scales.is_empty() {
            vec![1.0, 10.0]
        } else {
            scales.to_vec()
        };
        (scales, vec![TaskId::T1, TaskId::T5, TaskId::T8, TaskId::Panel])
    };
    let mut rows = Vec::new();
    for &scale in &scales {
        let corpus = Corpus::build(CorpusConfig::scaled(scale));
        for &id in &tasks {
            let (serial_secs, s) = timed(&corpus, id, serial);
            let (memo_secs, m) = timed(&corpus, id, memo);
            let (optimized_secs, o) = timed(&corpus, id, optimized);
            let (row_core_secs, r) = timed(&corpus, id, row_core);
            for run in [&m, &o, &r] {
                assert_eq!(
                    run.quality.result_tuples, s.quality.result_tuples,
                    "{id:?} scale {scale}: configuration changed the result"
                );
                assert!((run.quality.recall - s.quality.recall).abs() < 1e-12);
            }
            // The columnar ablation contract is stronger than identical
            // quality: byte-identical tables, stop reasons, and
            // degradation records.
            assert_eq!(
                format!("{:?}", o.outcome.table),
                format!("{:?}", r.outcome.table),
                "{id:?} scale {scale}: columnar core changed the result table"
            );
            assert_eq!(
                format!("{:?}", o.outcome.stop),
                format!("{:?}", r.outcome.stop),
                "{id:?} scale {scale}: columnar core changed the stop reason"
            );
            assert_eq!(
                format!("{:?}", o.outcome.final_stats.degradations),
                format!("{:?}", r.outcome.final_stats.degradations),
                "{id:?} scale {scale}: columnar core changed the degradation records"
            );
            let r = PlanRow {
                task: format!("{id:?}"),
                scale,
                serial_secs,
                memo_secs,
                optimized_secs,
                row_core_secs,
                result_tuples: o.quality.result_tuples,
            };
            println!(
                "{:>6} @{}: serial {:.2}s  serial+memo {:.2}s  optimized {:.2}s  \
                 ({:.2}x vs serial+memo)  row core {:.2}s  (columnar {:.2}x vs row)",
                r.task,
                r.scale,
                r.serial_secs,
                r.memo_secs,
                r.optimized_secs,
                r.memo_secs / r.optimized_secs.max(1e-9),
                r.row_core_secs,
                r.row_core_secs / r.optimized_secs.max(1e-9),
            );
            rows.push(r);
        }
    }
    println!("columnar/row byte-identity: OK on every workload");
    // The columnar perf gate, PR-8 convention: a 1-core container's
    // timings are too noisy to gate on — skip with a recorded notice,
    // never silently weaken.
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let columnar_gate = if smoke {
        "smoke: byte-identity only".to_string()
    } else if host >= 4 {
        for r in rows
            .iter()
            .filter(|r| (r.task == "T5" || r.task == "T8") && (r.scale - 10.0).abs() < f64::EPSILON)
        {
            assert!(
                r.optimized_secs < r.row_core_secs,
                "{} @{}: columnar core ({:.2}s) does not beat the row core ({:.2}s)",
                r.task,
                r.scale,
                r.optimized_secs,
                r.row_core_secs
            );
        }
        println!("columnar perf gate (T5/T8 @10): OK");
        "OK".to_string()
    } else {
        let note = format!(
            "SKIPPED: host has {host} core(s), the gate needs >= 4 \
             (byte-identity was still asserted on every row)"
        );
        println!("columnar perf gate {note}");
        note
    };
    std::fs::write(path, render_plan_json(&rows, &columnar_gate)).expect("write report");
    println!("wrote {path}");
}

/// One workload of the telemetry-overhead comparison: the identical
/// session with live telemetry off and on.
struct TelRow {
    task: String,
    scale: f64,
    off_secs: f64,
    on_secs: f64,
    result_tuples: usize,
}

impl TelRow {
    /// Extra wall clock of the enabled arm, as a percentage of the
    /// disabled arm.
    fn overhead_pct(&self) -> f64 {
        (self.on_secs / self.off_secs.max(1e-9) - 1.0) * 100.0
    }
}

fn render_telemetry_json(rows: &[TelRow], trials: usize, budget_pct: f64) -> String {
    let mut out = String::from("{\n");
    out += &format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    out += "  \"strategy\": \"Simulation\",\n";
    out += "  \"regime\": \"threads=1, best-of-N trials per arm\",\n";
    out += &format!("  \"trials_per_arm\": {trials},\n");
    out += &format!("  \"overhead_budget_pct\": {budget_pct},\n");
    out += "  \"workloads\": [\n";
    for (i, r) in rows.iter().enumerate() {
        out += "    {\n";
        out += &format!("      \"task\": \"{}\",\n", r.task);
        out += &format!("      \"scale\": {},\n", r.scale);
        out += &format!("      \"telemetry_off_secs\": {:.4},\n", r.off_secs);
        out += &format!("      \"telemetry_on_secs\": {:.4},\n", r.on_secs);
        out += &format!("      \"overhead_pct\": {:.2},\n", r.overhead_pct());
        out += &format!("      \"result_tuples\": {}\n", r.result_tuples);
        out += if i + 1 == rows.len() { "    }\n" } else { "    },\n" };
    }
    out += "  ]\n}\n";
    out
}

/// Best-of-N session wall clock under one configuration (the minimum is
/// the standard noise-robust estimator for a deterministic workload; the
/// last run's result is returned for the identity check — every run
/// produces the same tuples).
fn best_of(corpus: &Corpus, id: TaskId, exec: ExecConfig, trials: usize) -> (f64, RunResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..trials {
        let (secs, run) = timed(corpus, id, exec);
        best = best.min(secs);
        last = Some(run);
    }
    (best, last.expect("at least one trial"))
}

/// The live-telemetry overhead sweep (`--telemetry-report`): the same
/// single-threaded session with the engine's windows, quantile sketches
/// and flight recorder disabled (the default — one relaxed atomic load
/// per observation site) and enabled. The binary asserts both arms
/// converge to the identical result, and in full mode that T1's enabled
/// arm stays within the 5% overhead budget the telemetry design promises
/// (smoke mode reports the number without asserting — one 0.1-scale run
/// is too noisy to gate on).
fn telemetry_report(path: &str, smoke: bool) {
    const BUDGET_PCT: f64 = 5.0;
    let (workloads, trials): (Vec<Workload>, usize) = if smoke {
        (
            vec![Workload {
                id: TaskId::T1,
                scale: 0.1,
            }],
            1,
        )
    } else {
        (
            vec![
                Workload {
                    id: TaskId::T1,
                    scale: 1.0,
                },
                Workload {
                    id: TaskId::T5,
                    scale: 1.0,
                },
            ],
            3,
        )
    };
    let off = ExecConfig {
        threads: Some(1),
        ..ExecConfig::default()
    };
    let on = ExecConfig {
        threads: Some(1),
        telemetry: true,
        ..ExecConfig::default()
    };
    let mut rows = Vec::new();
    for w in &workloads {
        let corpus = Corpus::build(CorpusConfig::scaled(w.scale));
        let (off_secs, o) = best_of(&corpus, w.id, off, trials);
        let (on_secs, t) = best_of(&corpus, w.id, on, trials);
        assert_eq!(
            t.quality.result_tuples, o.quality.result_tuples,
            "{:?} scale {}: telemetry changed the result",
            w.id, w.scale
        );
        assert!((t.quality.recall - o.quality.recall).abs() < 1e-12);
        rows.push(TelRow {
            task: format!("{:?}", w.id),
            scale: w.scale,
            off_secs,
            on_secs,
            result_tuples: t.quality.result_tuples,
        });
    }
    for r in &rows {
        println!(
            "{:>6} @{}: telemetry off {:.3}s  on {:.3}s  (overhead {:+.2}%)",
            r.task,
            r.scale,
            r.off_secs,
            r.on_secs,
            r.overhead_pct(),
        );
    }
    if !smoke {
        let t1 = rows.iter().find(|r| r.task == "T1").expect("T1 row");
        assert!(
            t1.overhead_pct() < BUDGET_PCT,
            "telemetry overhead on T1 is {:.2}%, over the {BUDGET_PCT}% budget",
            t1.overhead_pct()
        );
        println!(
            "telemetry overhead on T1: {:+.2}% (budget {BUDGET_PCT}%) — OK",
            t1.overhead_pct()
        );
    }
    std::fs::write(path, render_telemetry_json(&rows, trials, BUDGET_PCT)).expect("write report");
    println!("wrote {path}");
}

/// Collects every value following a `--scale` flag.
fn scale_args(args: &[String]) -> Vec<f64> {
    let mut scales = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            let v = it
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .expect("--scale takes a positive number");
            assert!(v > 0.0, "--scale takes a positive number");
            scales.push(v);
        }
    }
    scales
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("--parallel-report") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let default = if smoke {
                "BENCH_parallel_smoke.json"
            } else {
                "BENCH_parallel.json"
            };
            let path = args[1..]
                .iter()
                .find(|a| !a.starts_with("--"))
                .map(|s| s.as_str())
                .unwrap_or(default);
            parallel_report(path, smoke);
        }
        Some("--smoke") => parallel_report(
            args.get(1).map(|s| s.as_str()).unwrap_or("BENCH_parallel_smoke.json"),
            true,
        ),
        Some("--incremental-report") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let default = if smoke {
                "BENCH_incremental_smoke.json"
            } else {
                "BENCH_incremental.json"
            };
            let path = args[1..]
                .iter()
                .find(|a| !a.starts_with("--"))
                .map(|s| s.as_str())
                .unwrap_or(default);
            incremental_report(path, smoke);
        }
        Some("--plan-report") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let default = if smoke {
                "BENCH_plan_smoke.json"
            } else {
                "BENCH_plan.json"
            };
            let mut skip_next = false;
            let path = args[1..]
                .iter()
                .filter(|a| {
                    let keep = !skip_next;
                    skip_next = *a == "--scale";
                    keep && !a.starts_with("--")
                })
                .map(|s| s.as_str())
                .next()
                .unwrap_or(default);
            plan_report(path, smoke, &scale_args(&args));
        }
        Some("--telemetry-report") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let default = if smoke {
                "BENCH_telemetry_smoke.json"
            } else {
                "BENCH_telemetry.json"
            };
            let path = args[1..]
                .iter()
                .find(|a| !a.starts_with("--"))
                .map(|s| s.as_str())
                .unwrap_or(default);
            telemetry_report(path, smoke);
        }
        Some("--scale") => scaling_table(&scale_args(&args)),
        _ => scaling_table(&[0.1, 0.25, 0.5, 1.0]),
    }
}
