//! Runs every table experiment in order (convenience wrapper); accepts
//! the same `--scale <f>` flag and forwards it.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("binary directory");
    for bin in [
        "exp_table1",
        "exp_table2",
        "exp_table3",
        "exp_table4",
        "exp_table5",
        "exp_table6",
        "exp_ablation",
        "exp_scaling",
    ] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} failed: {status}");
            std::process::exit(1);
        }
    }
}
