//! Table 6 / §6.3: the DBLife evaluation — the three extraction programs
//! (Panel, Project, Chair) over the heterogeneous snapshot, reporting
//! iFlex development minutes (cleanup in parentheses) and the final
//! program's full-execution machine time.

use iflex_bench::{fmt_minutes, run_session, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let cfg = if (scale - 1.0).abs() < 1e-9 {
        CorpusConfig::default()
    } else {
        CorpusConfig::scaled(scale)
    };
    eprintln!("building corpus (scale {scale})...");
    let corpus = Corpus::build(cfg);
    println!(
        "Table 6: Experiments on DBLife data ({} pages)",
        corpus.dblife.docs.len()
    );
    println!(
        "{:<8} {:<58} {:>11} {:>9} {:>8}",
        "Task", "Description", "iFlex (min)", "Final run", "Recall"
    );
    println!("{}", "-".repeat(100));
    for id in TaskId::DBLIFE {
        let task = corpus.task(id, None);
        let run = run_session(&corpus, &task, Strat::Sim);
        println!(
            "{:<8} {:<58} {:>11} {:>8.2}s {:>7.0}%",
            id.name(),
            id.description(),
            fmt_minutes(run.outcome.minutes, run.outcome.cleanup_minutes),
            run.outcome.final_run_secs,
            run.quality.recall * 100.0,
        );
    }
}
