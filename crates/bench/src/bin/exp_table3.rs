//! Table 3: run-time performance (simulated developer minutes + measured
//! machine time) of Manual / Xlog / iFlex over 27 scenarios — 9 tasks ×
//! 3 input sizes. iFlex uses the simulation strategy (its default); the
//! parenthesized component is cleanup-code time.
//!
//! `--scale <f>` scales the corpus (default 1.0 = the paper's sizes);
//! `--convergence` additionally reports the §6.2 convergence summary.

use iflex_baseline::{manual_minutes, run_precise, xlog_dev_minutes};
use iflex_bench::{fmt_minutes, fmt_opt_minutes, fmt_pct, run_session, scenario_label, table3_scenarios, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let report_convergence = args.iter().any(|a| a == "--convergence");

    let cfg = if (scale - 1.0).abs() < 1e-9 {
        CorpusConfig::default()
    } else {
        CorpusConfig::scaled(scale)
    };
    eprintln!("building corpus (scale {scale})...");
    let corpus = Corpus::build(cfg);

    println!("Table 3: Run time performance over 27 IE scenarios (minutes)");
    println!(
        "{:<5} {:>10} {:>8} {:>6} {:>10}   {:>9} {:>7}",
        "Task", "Tuples", "Manual", "Xlog", "iFlex", "Superset", "Machine"
    );
    println!("{}", "-".repeat(64));

    let mut converged_exact = 0usize;
    let mut outlier_supersets: Vec<(String, f64)> = Vec::new();
    let mut scenarios_run = 0usize;

    for id in TaskId::TABLE2 {
        for n in table3_scenarios(id) {
            let task = corpus.task(id, n);
            let records = task.tables[0].1.len();

            // Manual: cost model over the primary table.
            let manual = manual_minutes(id, records);

            // Xlog: development model + measured precise execution.
            let t0 = Instant::now();
            let precise = run_precise(&corpus, id, n);
            let xlog_machine = t0.elapsed().as_secs_f64();
            let xlog = xlog_dev_minutes(id) + xlog_machine / 60.0;
            assert_eq!(precise.len(), task.truth.len(), "{id:?} truth cross-check");

            // iFlex: full session (simulation strategy).
            let t1 = Instant::now();
            let run = run_session(&corpus, &task, Strat::Sim);
            let wall = t1.elapsed().as_secs_f64();

            scenarios_run += 1;
            if (run.quality.superset_pct - 100.0).abs() < 0.5 {
                converged_exact += 1;
            } else {
                outlier_supersets
                    .push((format!("{} @{}", id.name(), scenario_label(&task, n)), run.quality.superset_pct));
            }

            println!(
                "{:<5} {:>10} {:>8} {:>6} {:>10}   {:>9} {:>6.1}s",
                id.name(),
                scenario_label(&task, n),
                fmt_opt_minutes(manual),
                fmt_minutes(xlog, 0.0),
                fmt_minutes(run.outcome.minutes, run.outcome.cleanup_minutes),
                fmt_pct(run.quality.superset_pct),
                wall,
            );
        }
    }

    if report_convergence {
        println!("\n§6.2 convergence summary:");
        println!(
            "  converged to the correct result in {converged_exact} of {scenarios_run} scenarios"
        );
        if !outlier_supersets.is_empty() {
            outlier_supersets.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            println!("  remaining cases converged to:");
            for (label, pct) in outlier_supersets {
                println!("    {label}: {}", fmt_pct(pct));
            }
        }
    }
}
