//! Table 4: effects of soliciting domain knowledge — per-iteration result
//! sizes (subset-evaluation iterations in normal font, the final
//! reuse-mode full run emphasized), number of questions, time, and
//! superset size, for the paper's nine selected scenarios.

use iflex_bench::{fmt_pct, run_session, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let cfg = if (scale - 1.0).abs() < 1e-9 {
        CorpusConfig::default()
    } else {
        CorpusConfig::scaled(scale)
    };
    eprintln!("building corpus (scale {scale})...");
    let corpus = Corpus::build(cfg);

    // The paper's nine randomly selected scenarios (Table 4).
    let scenarios: [(TaskId, Option<usize>); 9] = [
        (TaskId::T1, Some(10)),
        (TaskId::T2, Some(100)),
        (TaskId::T3, None),
        (TaskId::T4, Some(10)),
        (TaskId::T5, Some(500)),
        (TaskId::T6, Some(500)),
        (TaskId::T7, Some(500)),
        (TaskId::T8, None),
        (TaskId::T9, Some(100)),
    ];

    println!("Table 4: Effects of soliciting domain knowledge in iFlex");
    println!(
        "{:<5} {:>7} {:>8}  {:<44} {:>5} {:>8} {:>9}",
        "Task", "Tuples", "Correct", "Tuples after each iteration (*: reuse mode)", "Qs", "Time(m)", "Superset"
    );
    println!("{}", "-".repeat(94));
    for (id, n) in scenarios {
        let task = corpus.task(id, n);
        let run = run_session(&corpus, &task, Strat::Sim);
        let sizes: Vec<String> = run
            .outcome
            .records
            .iter()
            .map(|r| match r.mode {
                iflex::ExecMode::Subset => format!("{}", r.result_tuples),
                iflex::ExecMode::Reuse => format!("*{}", r.result_tuples),
                iflex::ExecMode::Fallback => format!("~{}", r.result_tuples),
            })
            .collect();
        println!(
            "{:<5} {:>7} {:>8}  {:<44} {:>5} {:>8.2} {:>9}",
            id.name(),
            task.tables[0].1.len(),
            run.quality.correct_tuples,
            sizes.join(", "),
            run.outcome.questions_asked,
            run.outcome.minutes,
            fmt_pct(run.quality.superset_pct),
        );
    }
}
