//! Run-report tooling for JSONL trace dumps (`IFLEX_TRACE`).
//!
//! Modes:
//! * `exp_trace <trace.jsonl>` — parse and validate a dump, then render
//!   the per-rule self-time table, the per-operator table, and the
//!   assistant iteration timeline;
//! * `exp_trace --smoke [path]` — run one tiny traced session (the T1
//!   movies task at 0.1 scale) end to end: execute with `IFLEX_TRACE`
//!   pointing at `path` (default `BENCH_trace_smoke.jsonl`), re-read the
//!   dump, validate span nesting, and render the report. Exits non-zero
//!   on any malformed output — the tier-1 gate.

use iflex_bench::trace_report::{
    iteration_timeline, latency_quantiles, optimizer_notes, render_report, rule_self_time,
    run_rates, truncation,
};
use iflex_bench::{run_session_configured, ExecConfig, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use iflex_engine::obs::{parse_jsonl, validate_nesting};

fn report(path: &str) -> Result<(), String> {
    let input = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let events = parse_jsonl(&input)?;
    let spans = validate_nesting(&events)?;
    println!("{path}: {} events, {} spans, nesting well-formed\n", events.len(), spans.len());
    print!("{}", render_report(&spans, &events));
    Ok(())
}

fn smoke(path: &str) -> Result<(), String> {
    // `trace_path_from_env` reads IFLEX_TRACE at session end; pointing it
    // at `path` makes the session write the dump this smoke then replays.
    std::env::set_var("IFLEX_TRACE", path);
    let corpus = Corpus::build(CorpusConfig::scaled(0.1));
    let task = corpus.task(TaskId::T1, None);
    let run = run_session_configured(&corpus, &task, Strat::Sim, ExecConfig::default());
    std::env::remove_var("IFLEX_TRACE");
    if run.quality.recall <= 0.0 {
        return Err("smoke session produced no recall".into());
    }
    let input = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let events = parse_jsonl(&input)?;
    let spans = validate_nesting(&events)?;
    let rules = rule_self_time(&spans);
    if rules.is_empty() {
        return Err("trace contains no rule spans".into());
    }
    let timeline = iteration_timeline(&spans);
    if timeline.is_empty() {
        return Err("trace contains no iteration spans".into());
    }
    // the optimizer runs by default; its per-rule rewrite summaries and
    // estimated-vs-actual selectivities must surface in the report
    if optimizer_notes(&spans, &events).is_empty() {
        return Err("trace contains no optimizer instants".into());
    }
    // the telemetry sections reconstruct from the same spans: per-rule
    // latency quantiles and trailing run rates must populate, and a
    // default-cap journal must not have truncated
    if latency_quantiles(&spans, iflex_engine::obs::SpanKind::Rule).is_empty() {
        return Err("trace yields no rule latency quantiles".into());
    }
    if run_rates(&spans).runs == 0 {
        return Err("trace yields no run spans for the rate window".into());
    }
    if let Some(dropped) = truncation(&events) {
        return Err(format!("smoke trace truncated ({dropped} events dropped)"));
    }
    print!("{}", render_report(&spans, &events));
    println!(
        "smoke OK: {} events, {} spans, {} rules, {} iterations",
        events.len(),
        spans.len(),
        rules.len(),
        timeline.len()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(|s| s.as_str()) {
        Some("--smoke") => smoke(
            args.get(1).map(|s| s.as_str()).unwrap_or("BENCH_trace_smoke.jsonl"),
        ),
        Some(path) => report(path),
        None => Err("usage: exp_trace <trace.jsonl> | exp_trace --smoke [path]".into()),
    };
    if let Err(e) = result {
        eprintln!("exp_trace: {e}");
        std::process::exit(1);
    }
}
