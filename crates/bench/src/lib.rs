//! # iflex-bench
//!
//! The experiment harness: one binary per table of the paper's evaluation
//! (§6), each regenerating the corresponding rows over the synthetic
//! corpora, plus Criterion micro-benchmarks of the design choices
//! DESIGN.md calls out.
//!
//! Binaries (run with `cargo run --release -p iflex-bench --bin <name>`):
//! * `exp_table1` — domain/table inventory
//! * `exp_table2` — the nine IE tasks and their initial programs
//! * `exp_table3` — Manual / Xlog / iFlex run time over 27 scenarios
//! * `exp_table4` — per-iteration refinement effects (9 scenarios)
//! * `exp_table5` — sequential vs simulation question selection
//! * `exp_table6` — the DBLife tasks
//! * `exp_all` — everything above, in order

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iflex::prelude::*;
use iflex::{score, Quality, SessionOutcome};
use iflex_corpus::{Corpus, Task, TaskId};

pub mod trace_report;

/// Scenario sizes per task: Table 3's "Num Tuples per Table" column
/// (`None` = the full table).
pub fn table3_scenarios(id: TaskId) -> [Option<usize>; 3] {
    match id {
        TaskId::T1 | TaskId::T2 | TaskId::T3 | TaskId::T4 => [Some(10), Some(100), None],
        _ => [Some(100), Some(500), None],
    }
}

/// Which strategy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strat {
    /// The §5.1 sequential strategy.
    Seq,
    /// The §5.1 simulation strategy.
    Sim,
}

impl Strat {
    /// The name.
    pub fn name(self) -> &'static str {
        match self {
            Strat::Seq => "Seq",
            Strat::Sim => "Sim",
        }
    }

    fn boxed(self) -> Box<dyn Strategy> {
        match self {
            Strat::Seq => Box::new(Sequential),
            Strat::Sim => Box::new(Simulation::default()),
        }
    }
}

/// The outcome of one full iFlex session on a task scenario.
pub struct RunResult {
    /// The outcome.
    pub outcome: SessionOutcome,
    /// The quality.
    pub quality: Quality,
    /// Lifetime feature-memo hits across the whole session.
    pub memo_hits: usize,
    /// Lifetime feature-memo misses across the whole session.
    pub memo_misses: usize,
    /// Wall-clock seconds of [`Session::run`] alone — iterations,
    /// simulation probes, and the final full execution, excluding engine
    /// construction and quality scoring (the quantity the incremental
    /// report compares across configurations).
    pub session_secs: f64,
}

/// Engine configuration for one benchmark session (the parallel-execution
/// comparison axes).
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Worker threads (`None` = the engine default).
    pub threads: Option<usize>,
    /// Whether feature `Verify`/`Refine` results are memoized.
    pub use_feature_memo: bool,
    /// Whether the incremental re-execution engine (DESIGN.md §9) serves
    /// unchanged rule results across iterations and simulation probes;
    /// `false` re-executes the whole program on every run.
    pub use_incremental: bool,
    /// Whether iterations run over a sampled subset (§5.2). The
    /// incremental report disables this so iterations and simulation
    /// probes run at full scale — the regime where redundant
    /// re-execution, not subset approximation, is the cost being measured.
    pub use_sampling: bool,
    /// Whether the logical-plan optimizer (DESIGN.md §11) rewrites
    /// compiled rules; `false` is the ablation arm of the plan report.
    pub use_optimizer: bool,
    /// Whether σ/constraint/fused passes run over the columnar core
    /// (DESIGN.md §14); `false` is the row arm of the plan report's
    /// columnar ablation. Results are byte-identical either way.
    pub use_columnar: bool,
    /// Whether live telemetry (the engine's per-run window/sketch series
    /// and flight recorder) records during the session — the axis
    /// `exp_scaling --telemetry-report` measures the overhead of.
    pub telemetry: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: None,
            use_feature_memo: true,
            use_incremental: true,
            use_sampling: true,
            use_optimizer: true,
            use_columnar: true,
            telemetry: false,
        }
    }
}

/// Runs a full iFlex session (§5): subset iterations with the given
/// question-selection strategy until convergence, then a reuse-mode full
/// execution. Cleanup procedures are registered (and charged) when the
/// task needs them.
pub fn run_session(corpus: &Corpus, task: &Task, strat: Strat) -> RunResult {
    run_session_configured(corpus, task, strat, ExecConfig::default())
}

/// [`run_session`] with explicit thread / memo configuration — the knobs
/// `exp_scaling --parallel-report` sweeps.
pub fn run_session_configured(
    corpus: &Corpus,
    task: &Task,
    strat: Strat,
    exec: ExecConfig,
) -> RunResult {
    let mut engine = task.engine(corpus);
    engine.limits.use_feature_memo = exec.use_feature_memo;
    engine.limits.use_incremental = exec.use_incremental;
    engine.limits.use_optimizer = exec.use_optimizer;
    engine.limits.use_columnar = exec.use_columnar;
    if exec.telemetry {
        engine.live = iflex_engine::obs::LiveSet::enabled();
        engine.flight = iflex_engine::obs::FlightRecorder::new(0);
    }
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        strat.boxed(),
        Box::new(SimulatedDeveloper::new(task.oracle.clone())),
    );
    session.config.threads = exec.threads;
    session.config.use_sampling = exec.use_sampling;
    if task.needs_type_cleanup {
        session
            .clock
            .charge_cleanup(session.cost.write_cleanup_secs);
    }
    let t0 = std::time::Instant::now();
    let outcome = session.run().expect("session runs");
    let session_secs = t0.elapsed().as_secs_f64();
    let quality = score(
        &outcome.table,
        &task.truth_cols,
        &task.truth,
        session.engine.store(),
    );
    // Quality lands in the engine registry so in-process consumers (and
    // a later snapshot render) see it next to the execution counters.
    quality.export(&session.engine.metrics);
    let memo_hits = session.engine.memo().hits();
    let memo_misses = session.engine.memo().misses();
    RunResult {
        outcome,
        quality,
        memo_hits,
        memo_misses,
        session_secs,
    }
}

/// Formats minutes the way Table 3 does: rounded, with the cleanup
/// component in parentheses when non-zero.
pub fn fmt_minutes(total: f64, cleanup: f64) -> String {
    let t = total.round().max(1.0) as i64;
    if cleanup >= 0.5 {
        format!("{t} ({})", cleanup.round().max(1.0) as i64)
    } else {
        format!("{t}")
    }
}

/// Formats an optional minute count ("—" for did-not-finish).
pub fn fmt_opt_minutes(m: Option<f64>) -> String {
    match m {
        Some(m) => format!("{}", m.round().max(1.0) as i64),
        None => "—".to_string(),
    }
}

/// Percentage formatting for superset sizes.
pub fn fmt_pct(p: f64) -> String {
    if p.is_infinite() {
        "∞".into()
    } else {
        format!("{}%", p.round() as i64)
    }
}

/// Scenario label for tables.
pub fn scenario_label(task: &Task, n: Option<usize>) -> String {
    let total = task.tables[0].1.len();
    match n {
        Some(k) => k.to_string(),
        None => format!("{total}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_minutes(7.4, 0.0), "7");
        assert_eq!(fmt_minutes(16.2, 12.0), "16 (12)");
        assert_eq!(fmt_opt_minutes(None), "—");
        assert_eq!(fmt_opt_minutes(Some(2.6)), "3");
        assert_eq!(fmt_pct(100.0), "100%");
        assert_eq!(fmt_pct(f64::INFINITY), "∞");
    }

    #[test]
    fn scenarios_shape() {
        for id in TaskId::TABLE2 {
            let s = table3_scenarios(id);
            assert_eq!(s.len(), 3);
            assert!(s[2].is_none());
        }
    }
}
