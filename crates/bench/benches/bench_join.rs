//! Micro-bench: the approximate similarity join (§4.1) — the token-
//! prefilter path vs generic pairwise evaluation, across cell refinement
//! states (exact singletons vs contain regions).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use std::sync::Arc;

fn engines(n: usize) -> (Corpus, iflex_corpus::Task) {
    let corpus = Corpus::build(CorpusConfig::tiny());
    let task = corpus.task(TaskId::T6, Some(n));
    (corpus, task)
}

fn bench_similarity_join_states(c: &mut Criterion) {
    let mut g = c.benchmark_group("join/similarity");
    g.sample_size(20);
    let (corpus, task) = engines(40);

    // unrefined: contain cells → token-prefilter path
    g.bench_function(BenchmarkId::new("unrefined_prefilter", 40), |b| {
        let mut eng = task.engine(&corpus);
        b.iter(|| black_box(eng.run(&task.program).unwrap().len()))
    });

    // refined: exact singleton cells → exact approx_match per pair
    let refined = iflex::alog::parse_program(
        r#"
        t6(title1) :- sigmod(x), extractSIGMOD(#x, title1, authors1),
                      icde(y), extractICDE(#y, title2, authors2),
                      similar(#authors1, #authors2).
        extractSIGMOD(#x, t, a) :- from(#x, t), from(#x, a),
            bold-font(t) = distinct-yes, italic-font(a) = distinct-yes.
        extractICDE(#y, t, a) :- from(#y, t), from(#y, a),
            bold-font(t) = distinct-yes, italic-font(a) = distinct-yes.
    "#,
    )
    .unwrap();
    g.bench_function(BenchmarkId::new("refined_exact", 40), |b| {
        let mut eng = task.engine(&corpus);
        b.iter(|| black_box(eng.run(&refined).unwrap().len()))
    });
    g.finish();
}

fn bench_cross_join_with_compare(c: &mut Criterion) {
    // fused selection over cross join (never materializes the product)
    let mut store = DocumentStore::new();
    let mut ids_a = Vec::new();
    let mut ids_b = Vec::new();
    for i in 0..60 {
        ids_a.push(store.add_plain(format!("a {} x", i)));
        ids_b.push(store.add_plain(format!("b {} y", i * 2)));
    }
    let store = Arc::new(store);
    let mut eng = Engine::new(store);
    eng.add_doc_table("ta", &ids_a);
    eng.add_doc_table("tb", &ids_b);
    let prog = iflex::alog::parse_program(
        r#"
        q(u, v) :- ta(x), ea(#x, u), tb(y), eb(#y, v), u < v.
        ea(#x, u) :- from(#x, u), numeric(u) = yes.
        eb(#y, v) :- from(#y, v), numeric(v) = yes.
    "#,
    )
    .unwrap();
    c.bench_function("join/fused_compare_60x60", |b| {
        b.iter(|| black_box(eng.run(&prog).unwrap().len()))
    });
}

criterion_group!(benches, bench_similarity_join_states, bench_cross_join_with_compare);
criterion_main!(benches);
