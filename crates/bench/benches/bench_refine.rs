//! Micro-bench: domain-constraint selection via `Verify`/`Refine` (§4.2)
//! against the naive strategy of enumerating every token-aligned sub-span
//! and verifying each — the optimization that makes `from` + constraints
//! tractable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex::engine::{constraint::apply_constraint, CompiledConstraint};
use iflex::prelude::*;
use std::sync::Arc;

fn page(words: usize) -> (Arc<DocumentStore>, Span) {
    let mut store = DocumentStore::new();
    let mut text = String::new();
    for i in 0..words {
        if i % 7 == 3 {
            text.push_str(&format!("<b>{}</b> ", i * 13));
        } else if i % 5 == 0 {
            text.push_str(&format!("{} ", i));
        } else {
            text.push_str(&format!("word{i} "));
        }
    }
    let id = store.add_markup(&text);
    let span = store.doc(id).full_span();
    (Arc::new(store), span)
}

fn numeric_constraint() -> CompiledConstraint {
    CompiledConstraint {
        feature: "numeric".into(),
        arg: FeatureArg::yes(),
    }
}

fn bench_refine_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("refine/numeric_constraint");
    for words in [16usize, 64, 128] {
        let (store, span) = page(words);
        let reg = FeatureRegistry::default();
        let cell = Cell::contain(span);
        g.bench_with_input(BenchmarkId::new("refine", words), &words, |b, _| {
            b.iter(|| {
                black_box(
                    apply_constraint(&cell, &numeric_constraint(), &[], &store, &reg).unwrap(),
                )
            })
        });
        // naive: enumerate every token-aligned sub-span, verify each
        g.bench_with_input(BenchmarkId::new("naive_enumerate", words), &words, |b, _| {
            let f = reg.get("numeric").unwrap();
            b.iter(|| {
                let mut kept = 0usize;
                for v in cell.values(&store) {
                    if let Value::Span(s) = v {
                        if f.verify(&store, s, &FeatureArg::yes()).unwrap() {
                            kept += 1;
                        }
                    }
                }
                black_box(kept)
            })
        });
    }
    g.finish();
}

fn bench_chained_constraints(c: &mut Criterion) {
    let (store, span) = page(64);
    let reg = FeatureRegistry::default();
    let cell = Cell::contain(span);
    let bold = CompiledConstraint {
        feature: "bold-font".into(),
        arg: FeatureArg::yes(),
    };
    c.bench_function("refine/chain_numeric_then_bold", |b| {
        b.iter(|| {
            let c1 = apply_constraint(&cell, &numeric_constraint(), &[], &store, &reg).unwrap();
            let c2 =
                apply_constraint(&c1, &bold, std::slice::from_ref(&numeric_constraint()), &store, &reg)
                    .unwrap();
            black_box(c2.assignment_count())
        })
    });
}

criterion_group!(benches, bench_refine_vs_naive, bench_chained_constraints);
criterion_main!(benches);
