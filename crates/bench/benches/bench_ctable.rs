//! Micro-bench: the compact-table representation (§3) — condensation,
//! expansion, value enumeration, and the memory/size claim that motivates
//! compact tables over a-tables (one `contain` assignment vs enumerating
//! every token-aligned sub-span).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex::prelude::*;
use iflex_ctable::{ATable, Assignment, CompactTuple};
use std::sync::Arc;

fn store_with_doc(tokens: usize) -> (Arc<DocumentStore>, DocId) {
    let mut store = DocumentStore::new();
    let text: Vec<String> = (0..tokens).map(|i| format!("w{i}")).collect();
    let id = store.add_plain(text.join(" "));
    (Arc::new(store), id)
}

fn bench_value_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctable/value_enumeration");
    for tokens in [8usize, 32, 64] {
        let (store, id) = store_with_doc(tokens);
        let span = store.doc(id).full_span();
        let cell = Cell::contain(span);
        g.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |b, _| {
            b.iter(|| black_box(cell.values(&store).count()))
        });
    }
    g.finish();
}

fn bench_condense(c: &mut Criterion) {
    let (store, id) = store_with_doc(48);
    let doc_len = store.doc(id).len();
    // many overlapping contains + exacts
    let assigns: Vec<Assignment> = (0..24)
        .map(|i| {
            let s = (i * 7) % (doc_len / 2);
            Assignment::Contain(Span::new(id, s, s + doc_len / 3))
        })
        .collect();
    c.bench_function("ctable/condense_24_overlapping", |b| {
        b.iter(|| {
            let mut cell = Cell::of(assigns.clone());
            cell.condense(&store);
            black_box(cell.assignments().len())
        })
    });
}

fn bench_compact_vs_atable(c: &mut Criterion) {
    // the §3 claim: converting to an a-table explodes, staying compact
    // is O(1) per cell
    let mut g = c.benchmark_group("ctable/compact_vs_atable");
    for tokens in [8usize, 24] {
        let (store, id) = store_with_doc(tokens);
        let span = store.doc(id).full_span();
        let mut table = CompactTable::new(vec!["s".into()]);
        for _ in 0..16 {
            table.push(CompactTuple::new(vec![Cell::expansion(vec![
                Assignment::Contain(span),
            ])]));
        }
        g.bench_with_input(BenchmarkId::new("to_atable", tokens), &tokens, |b, _| {
            b.iter(|| black_box(ATable::from_compact(&table, &store, 1_000_000).unwrap().len()))
        });
        g.bench_with_input(BenchmarkId::new("stay_compact", tokens), &tokens, |b, _| {
            b.iter(|| black_box(table.expanded_len(&store)))
        });
    }
    g.finish();
}

fn bench_expand(c: &mut Criterion) {
    let (store, id) = store_with_doc(16);
    let span = store.doc(id).full_span();
    let tuple = CompactTuple::new(vec![
        Cell::exact(Value::Num(1.0)),
        Cell::expansion(vec![Assignment::Contain(span)]),
    ]);
    c.bench_function("ctable/expand_fully_16_tokens", |b| {
        b.iter(|| black_box(tuple.expand_fully(&store, 100_000).unwrap().len()))
    });
}

criterion_group!(
    benches,
    bench_value_enumeration,
    bench_condense,
    bench_compact_vs_atable,
    bench_expand
);
criterion_main!(benches);
