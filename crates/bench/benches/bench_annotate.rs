//! Micro-bench ablation: the ψ annotation operator (§4.3) — the paper's
//! exact BAnnotate (via a-table conversion) vs the compact-direct variant.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex::engine::annotate::{bannotate_compact, bannotate_exact};
use iflex::prelude::*;
use iflex_ctable::{Assignment, CompactTuple};
use std::sync::Arc;

fn table_with(keys: usize, values_per_key: usize) -> (Arc<DocumentStore>, CompactTable) {
    let mut store = DocumentStore::new();
    let mut t = CompactTable::new(vec!["k".into(), "v".into()]);
    for k in 0..keys {
        let text: Vec<String> = (0..values_per_key).map(|i| format!("v{k}x{i}")).collect();
        let id = store.add_plain(text.join(" "));
        let doc = store.doc(id);
        let assigns: Vec<Assignment> = doc
            .tokens()
            .tokens()
            .iter()
            .map(|tok| Assignment::exact_span(Span::new(id, tok.start, tok.end)))
            .collect();
        t.push(CompactTuple::new(vec![
            Cell::exact(Value::Num(k as f64)),
            Cell::expansion(assigns),
        ]));
    }
    (Arc::new(store), t)
}

fn bench_annotate_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("annotate/exact_vs_compact");
    for (keys, vals) in [(64usize, 8usize), (256, 16)] {
        let (store, table) = table_with(keys, vals);
        let label = format!("{keys}x{vals}");
        g.bench_with_input(BenchmarkId::new("bannotate_exact", &label), &0, |b, _| {
            b.iter(|| black_box(bannotate_exact(&table, &[1], &store, 10_000_000).unwrap().len()))
        });
        g.bench_with_input(BenchmarkId::new("bannotate_compact", &label), &0, |b, _| {
            b.iter(|| black_box(bannotate_compact(&table, &[1], &store).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_annotate_paths);
criterion_main!(benches);
