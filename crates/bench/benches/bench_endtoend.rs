//! Macro-bench: one full best-effort session per domain (execute → ask →
//! refine → converge → full reuse run), over the tiny corpus.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex_bench::{run_session, Strat};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn bench_sessions(c: &mut Criterion) {
    let corpus = Corpus::build(CorpusConfig::tiny());
    let mut g = c.benchmark_group("endtoend/session");
    g.sample_size(10);
    for (id, n) in [
        (TaskId::T1, Some(30)),   // Movies
        (TaskId::T4, Some(30)),   // DBLP
        (TaskId::T8, Some(40)),   // Books
        (TaskId::Panel, None),    // DBLife
    ] {
        let task = corpus.task(id, n);
        g.bench_with_input(BenchmarkId::from_parameter(id.name()), &0, |b, _| {
            b.iter(|| black_box(run_session(&corpus, &task, Strat::Sim).quality.result_tuples))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
