//! Micro-bench: the regex-lite engine (Pike VM) — linear-time matching on
//! the patterns the features actually use.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex::pattern::Pattern;

fn bench_patterns(c: &mut Criterion) {
    let haystack: String = (0..200)
        .map(|i| {
            if i % 9 == 0 {
                format!("SIGMOD {} ", 1975 + i % 30)
            } else {
                format!("word{i} ")
            }
        })
        .collect();
    let mut g = c.benchmark_group("pattern/find_iter");
    for (name, pat) in [
        ("digits", "\\d+"),
        ("caps", "[A-Z][A-Z]+"),
        ("year_alt", "0\\d|19\\d\\d|20\\d\\d"),
        ("price", "\\$\\d+(\\.\\d\\d)?"),
    ] {
        let p = Pattern::new(pat).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &0, |b, _| {
            b.iter(|| black_box(p.find_iter(&haystack).count()))
        });
    }
    g.finish();

    // pathological backtracking case: linear for a Pike VM
    let evil = Pattern::new("(a+)+b").unwrap_or_else(|_| Pattern::new("a+b").unwrap());
    let as_only = "a".repeat(64);
    c.bench_function("pattern/no_catastrophic_backtracking", |b| {
        b.iter(|| black_box(evil.is_match(&as_only)))
    });
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
