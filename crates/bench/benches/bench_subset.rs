//! Micro-bench: subset evaluation (§5.2) — execution cost vs sample
//! fraction, the lever that makes assistant simulations affordable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iflex::prelude::Sample;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn bench_subset_fractions(c: &mut Criterion) {
    let corpus = Corpus::build(CorpusConfig::tiny());
    let task = corpus.task(TaskId::T8, None);
    let mut g = c.benchmark_group("subset/fraction");
    for pct in [5u32, 15, 30, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            let mut eng = task.engine(&corpus);
            let sample = Sample::new(pct as f64 / 100.0, 7);
            b.iter(|| {
                eng.clear_cache();
                black_box(eng.run_sampled(&task.program, sample).unwrap().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_subset_fractions);
criterion_main!(benches);
