//! Micro-bench: multi-iteration reuse (§5.2) — re-running a refined
//! program with a warm cache (only the changed rule recomputes) vs a cold
//! engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use iflex::assistant::{add_constraint, attributes};
use iflex::prelude::FeatureArg;

fn bench_reuse(c: &mut Criterion) {
    let corpus = Corpus::build(CorpusConfig::tiny());
    let task = corpus.task(TaskId::T1, Some(30));
    let attrs = attributes(&task.program);
    let votes = attrs.iter().find(|a| a.var == "votes").unwrap();
    let refined = add_constraint(
        &task.program,
        votes,
        "underlined",
        &FeatureArg::distinct_yes(),
    );

    c.bench_function("reuse/warm_cache_refined_rerun", |b| {
        let mut eng = task.engine(&corpus);
        eng.run(&task.program).unwrap();
        b.iter(|| black_box(eng.run(&refined).unwrap().len()))
    });
    c.bench_function("reuse/cold_engine_each_run", |b| {
        b.iter(|| {
            let mut eng = task.engine(&corpus);
            eng.run(&task.program).unwrap();
            black_box(eng.run(&refined).unwrap().len())
        })
    });
}

criterion_group!(benches, bench_reuse);
criterion_main!(benches);
