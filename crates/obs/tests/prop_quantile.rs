//! Property tests of the log-scale quantile sketch: the advertised
//! relative-error bound `|q̂ − x_q| ≤ α·x_q` must hold for every quantile
//! on every stream — adversarial heavy-tailed mixtures, sorted, reversed,
//! and shuffled orders — and `merge(a, b)` must answer exactly like the
//! sketch of the concatenated stream (merging is bucket-wise addition, so
//! the agreement is exact, not merely within the bound).

use iflex_obs::QuantileSketch;
use proptest::prelude::*;

/// The exact sample at the sketch's rank convention (`⌈q·n⌉`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Asserts the bound for a fixed quantile grid over one stream.
fn assert_within_bound(values: &[u64]) {
    let s = QuantileSketch::new();
    for &v in values {
        s.observe(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let est = s.quantile(q).expect("non-empty sketch");
        let x = exact_quantile(&sorted, q) as f64;
        // Tiny additive slack absorbs f64 rounding in the bucket-index
        // computation for samples sitting exactly on a bucket boundary.
        let bound = s.alpha() * x * 1.0001 + 1e-6;
        assert!(
            (est - x).abs() <= bound,
            "q={q}: estimate {est} vs exact {x} (bound {bound})"
        );
    }
}

/// Heavy-tailed generator: `base >> shift` spreads samples log-uniformly
/// across all 64 orders of magnitude — the adversarial regime for a
/// log-bucketed sketch (every populated bucket is far from its
/// neighbours).
fn heavy_tail(pairs: &[(u64, u64)]) -> Vec<u64> {
    pairs.iter().map(|&(base, shift)| base >> (shift % 64)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank-error bound on heavy-tailed streams in generated order.
    #[test]
    fn bound_holds_on_heavy_tailed_streams(
        pairs in proptest::collection::vec((0u64..u64::MAX, 0u64..64), 1..300),
    ) {
        assert_within_bound(&heavy_tail(&pairs));
    }

    /// Rank-error bound is order-insensitive: sorted and reversed
    /// (adversarially monotone) insertions answer identically to the
    /// generated order.
    #[test]
    fn bound_holds_under_adversarial_orders(
        pairs in proptest::collection::vec((0u64..u64::MAX, 0u64..64), 1..200),
    ) {
        let values = heavy_tail(&pairs);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut reversed = sorted.clone();
        reversed.reverse();
        assert_within_bound(&sorted);
        assert_within_bound(&reversed);

        let by_order = |vs: &[u64]| {
            let s = QuantileSketch::new();
            for &v in vs {
                s.observe(v);
            }
            [s.quantile(0.5), s.quantile(0.95), s.quantile(0.99)]
        };
        prop_assert_eq!(by_order(&values), by_order(&sorted));
        prop_assert_eq!(by_order(&values), by_order(&reversed));
    }

    /// Clustered duplicates (many ties at few magnitudes) — the regime
    /// where a rank off by one crosses a whole cluster.
    #[test]
    fn bound_holds_with_ties(
        magnitudes in proptest::collection::vec(0u64..20, 1..8),
        reps in 1usize..50,
    ) {
        let values: Vec<u64> = magnitudes
            .iter()
            .flat_map(|&m| std::iter::repeat(1u64 << m).take(reps))
            .collect();
        assert_within_bound(&values);
    }

    /// `merge(a, b)` answers exactly like the sketch of `a ++ b`, and the
    /// merged answers still satisfy the bound against the concatenated
    /// stream.
    #[test]
    fn merge_agrees_with_concatenation(
        xs in proptest::collection::vec((0u64..u64::MAX, 0u64..64), 0..150),
        ys in proptest::collection::vec((0u64..u64::MAX, 0u64..64), 1..150),
    ) {
        let a_vals = heavy_tail(&xs);
        let b_vals = heavy_tail(&ys);
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        let both = QuantileSketch::new();
        for &v in &a_vals {
            a.observe(v);
            both.observe(v);
        }
        for &v in &b_vals {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), both.count());
        prop_assert_eq!(a.sum(), both.sum());
        prop_assert_eq!(a.max(), both.max());
        let mut concat = a_vals.clone();
        concat.extend_from_slice(&b_vals);
        concat.sort_unstable();
        for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let merged = a.quantile(q).expect("non-empty");
            let direct = both.quantile(q).expect("non-empty");
            prop_assert_eq!(merged, direct, "merge must be exact at q={}", q);
            let x = exact_quantile(&concat, q) as f64;
            let bound = a.alpha() * x * 1.0001 + 1e-6;
            prop_assert!((merged - x).abs() <= bound, "q={}: {} vs {}", q, merged, x);
        }
    }
}
