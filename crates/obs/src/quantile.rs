//! A small mergeable quantile sketch over `u64` samples.
//!
//! Fixed-bin **log-scale histogram** (the DDSketch construction): bucket
//! `i` covers the value range `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)` for
//! a configured relative accuracy `α`. Every reported quantile `q̂`
//! satisfies `|q̂ − x_q| ≤ α·x_q` where `x_q` is the exact sample at that
//! rank — the bound the property tests in `tests/prop_quantile.rs` pin
//! down under adversarial streams.
//!
//! Chosen over CKMS for two properties the service needs: recording is a
//! handful of relaxed atomic adds (safe from any worker thread with no
//! lock), and `merge` is a bucket-wise addition, so per-operator sketches
//! roll up into per-session and per-host views exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default relative accuracy: reported quantiles are within 2 % of the
/// exact sample value. ~1.1k buckets ≈ 9 KiB per sketch.
pub const DEFAULT_ALPHA: f64 = 0.02;

#[derive(Debug)]
struct SketchInner {
    enabled: Arc<AtomicBool>,
    alpha: f64,
    gamma: f64,
    inv_ln_gamma: f64,
    /// Exact-zero samples get their own bucket (log scale can't hold 0).
    zero: AtomicU64,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A cheap cloneable handle to one quantile sketch.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    inner: Arc<SketchInner>,
}

/// The rendered p50/p95/p99 view of a sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileSummary {
    /// Total samples.
    pub count: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl QuantileSketch {
    /// An always-enabled sketch with the default accuracy.
    pub fn new() -> QuantileSketch {
        QuantileSketch::with_alpha(DEFAULT_ALPHA)
    }

    /// An always-enabled sketch with relative accuracy `alpha`
    /// (`0 < alpha < 1`).
    pub fn with_alpha(alpha: f64) -> QuantileSketch {
        QuantileSketch::build(alpha, Arc::new(AtomicBool::new(true)))
    }

    /// A default-accuracy sketch sharing an external enabled flag — how
    /// [`crate::window::LiveSet`] builds its members.
    pub fn with_flag(enabled: Arc<AtomicBool>) -> QuantileSketch {
        QuantileSketch::build(DEFAULT_ALPHA, enabled)
    }

    fn build(alpha: f64, enabled: Arc<AtomicBool>) -> QuantileSketch {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let inv_ln_gamma = 1.0 / gamma.ln();
        // Highest index any u64 can map to, plus slack for rounding.
        let len = ((u64::MAX as f64).ln() * inv_ln_gamma).ceil() as usize + 2;
        QuantileSketch {
            inner: Arc::new(SketchInner {
                enabled,
                alpha,
                gamma,
                inv_ln_gamma,
                zero: AtomicU64::new(0),
                buckets: (0..len).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.inner.alpha
    }

    fn index(&self, v: u64) -> usize {
        // Bucket i covers (γ^(i-1), γ^i]: i = ceil(log_γ v), so v = 1
        // lands in bucket 0.
        let i = ((v as f64).ln() * self.inner.inv_ln_gamma).ceil();
        (i.max(0.0) as usize).min(self.inner.buckets.len() - 1)
    }

    /// Midpoint estimate for bucket `i`, within `±α` of any value in it.
    fn value(&self, i: usize) -> f64 {
        2.0 * self.inner.gamma.powi(i as i32) / (self.inner.gamma + 1.0)
    }

    /// Records one sample. Disabled sketches return after a single
    /// relaxed load.
    pub fn observe(&self, v: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
        if v == 0 {
            self.inner.zero.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.buckets[self.index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (exact, not an estimate).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q ∈ [0, 1]`; `None` on an empty
    /// sketch. The estimate is within relative `α` of the exact sample at
    /// rank `⌈q·n⌉`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = self.inner.zero.load(Ordering::Relaxed);
        if cum >= rank {
            return Some(0.0);
        }
        for (i, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(self.value(i));
            }
        }
        // Racing writers can leave count ahead of the bucket totals for a
        // moment; fall back to the exact max.
        Some(self.max() as f64)
    }

    /// Folds `other` into `self` (bucket-wise add). Panics if the two
    /// sketches were built with different accuracies.
    pub fn merge(&self, other: &QuantileSketch) {
        assert_eq!(
            self.inner.buckets.len(),
            other.inner.buckets.len(),
            "merging sketches with different accuracies"
        );
        self.inner
            .zero
            .fetch_add(other.inner.zero.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .count
            .fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.inner.max.fetch_max(other.max(), Ordering::Relaxed);
        for (a, b) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// The standard p50/p95/p99 rendering (zeros when empty).
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary {
            count: self.count(),
            max: self.max(),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile under the same rank convention the sketch uses.
    fn exact(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn uniform_stream_within_bound() {
        let s = QuantileSketch::new();
        let mut vals: Vec<u64> = (1..=10_000).collect();
        for &v in &vals {
            s.observe(v);
        }
        vals.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            let x = exact(&vals, q) as f64;
            assert!(
                (est - x).abs() <= s.alpha() * x + 1e-9,
                "q={q}: est {est} vs exact {x}"
            );
        }
    }

    #[test]
    fn zeros_and_max_are_exact() {
        let s = QuantileSketch::new();
        for _ in 0..90 {
            s.observe(0);
        }
        for _ in 0..10 {
            s.observe(u64::MAX);
        }
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.max(), u64::MAX);
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - u64::MAX as f64).abs() <= s.alpha() * u64::MAX as f64 * 1.001);
    }

    #[test]
    fn merge_equals_concat() {
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        let c = QuantileSketch::new();
        for v in 1..=1000u64 {
            a.observe(v);
            c.observe(v);
        }
        for v in 500..=5000u64 {
            b.observe(v * 3);
            c.observe(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_sketch() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum.p99, 0.0);
    }

    #[test]
    fn summary_orders_quantiles() {
        let s = QuantileSketch::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                s.observe(v);
            }
        }
        let sum = s.summary();
        assert!(sum.p50 <= sum.p95 && sum.p95 <= sum.p99);
        assert!(sum.p99 <= sum.max as f64 * (1.0 + s.alpha()));
    }
}
