//! The metrics registry: named counters and log₂-bucketed histograms.
//!
//! A [`Registry`] is a cheap cloneable handle. Hot paths hold a
//! [`Counter`] or [`Histogram`] handle (one `Arc<Atomic…>` clone) and
//! update it with a relaxed atomic op — the registry's map lock is only
//! taken when a handle is first created or a snapshot is rendered.
//!
//! The engine's `ExecStats` is rebuilt from this registry at the end of
//! every run (see `iflex-engine::exec`), and the whole registry renders
//! into a `BENCH_*`-compatible JSON object via [`Registry::render_json`].

use crate::json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Well-known metric names (the engine/session contract; DESIGN.md §8).
pub mod names {
    /// Rules actually (re)computed this run.
    pub const RULES_EVALUATED: &str = "engine.rules_evaluated";
    /// Rules served from the reuse cache this run.
    pub const CACHE_HITS: &str = "engine.cache_hits";
    /// Extensional tuples scanned this run.
    pub const TUPLES_SCANNED: &str = "engine.tuples_scanned";
    /// Possible-value volume across pre-projection extraction results.
    pub const ASSIGNMENTS_PRODUCED: &str = "engine.assignments_produced";
    /// Rules degraded this run.
    pub const DEGRADATIONS: &str = "engine.degradations";
    /// Per-cause degradation counters are `engine.degradations.<cause>`.
    pub const DEGRADATIONS_PREFIX: &str = "engine.degradations.";
    /// Feature-memo (`Verify`/`Refine`) hits this run.
    pub const FEATURE_CACHE_HITS: &str = "engine.feature_cache_hits";
    /// Feature-memo misses this run.
    pub const FEATURE_CACHE_MISSES: &str = "engine.feature_cache_misses";
    /// Parallel operator sections that fanned out to worker threads.
    pub const PAR_SECTIONS: &str = "engine.par_sections";
    /// Morsels (index ranges) dispensed by the work-stealing executor,
    /// including each section's calibration morsel.
    pub const PAR_MORSELS: &str = "engine.par.morsels";
    /// Morsels a participant stole from another participant's segment.
    pub const PAR_STEALS: &str = "engine.par.steals";
    /// Wall-clock spent claiming/stealing morsel ranges, in µs.
    pub const PAR_DISPENSE_US: &str = "engine.par.dispense_us";
    /// Incremental-cache lookups served from a prior run (DESIGN.md §9).
    pub const INCR_HITS: &str = "engine.incr.hits";
    /// Incremental-cache lookups that fell through to evaluation.
    pub const INCR_MISSES: &str = "engine.incr.misses";
    /// Entries evicted by dependency-cone invalidation at run start.
    pub const INCR_INVALIDATIONS: &str = "engine.incr.invalidations";
    /// Per-shard busy µs counters are `engine.shard_busy_us.<index>`.
    pub const SHARD_BUSY_PREFIX: &str = "engine.shard_busy_us.";
    /// Live run-latency window/sketch name (µs per engine run) — unlike
    /// the counters above this lives in a `LiveSet` and survives the
    /// per-run registry reset.
    pub const RUN_US: &str = "engine.run_us";
    /// Per-operator wall-clock histograms are `engine.op.<name>.us`
    /// (inclusive of nested operators; subtract children for self time —
    /// `exp_trace` does this from the trace journal).
    pub const OP_US_PREFIX: &str = "engine.op.";
    /// Per-operator output-tuple counters are `engine.op.<name>.tuples_out`.
    pub const OP_TUPLES_SUFFIX: &str = ".tuples_out";
    /// Rules rewritten by the logical-plan optimizer this run (DESIGN.md §11).
    pub const OPT_PLANS: &str = "engine.opt.plans";
    /// Selections sunk below a join by the σ-pushdown pass.
    pub const OPT_PUSHDOWNS: &str = "engine.opt.pushdowns";
    /// Selection steps moved by the selectivity-reordering pass.
    pub const OPT_REORDERS: &str = "engine.opt.reorders";
    /// Cross joins whose outer loop was flipped to the larger input.
    pub const OPT_JOIN_FLIPS: &str = "engine.opt.join_flips";
    /// `Fused` batch nodes emitted by the fusion pass.
    pub const OPT_FUSED_NODES: &str = "engine.opt.fused_nodes";
    /// Selection steps folded into `Fused` nodes.
    pub const OPT_FUSED_STEPS: &str = "engine.opt.fused_steps";
    /// Histogram of per-rule *estimated* whole-rule selectivity, in basis
    /// points (0–10000); pairs with [`OPT_ACT_SEL_BP`] for model accuracy.
    pub const OPT_EST_SEL_BP: &str = "engine.opt.est_sel_bp";
    /// Histogram of per-rule *actual* whole-rule selectivity (output rows
    /// over the product of leaf cardinalities), in basis points.
    pub const OPT_ACT_SEL_BP: &str = "engine.opt.act_sel_bp";
}

/// A monotonically increasing (or `set`-overwritten gauge-style) metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value (gauge usage).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` counts values with
/// `bit_length(v) == i` (bucket 0 is `v == 0`), so the histogram covers
/// the full `u64` range.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram (count / sum / max / buckets).
#[derive(Debug)]
pub struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A cheap cloneable histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        let h = &self.0;
        HistogramSummary {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        let h = &self.0;
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A rendered histogram: count, sum, max, and the non-empty log₂ buckets
/// as `(bit_length, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty `(bit_length, count)` buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSummary {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

/// The shared metrics registry handle.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

/// A point-in-time view of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Hold the handle on
    /// hot paths — creation takes the registry's write lock.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().expect("metrics lock").get(name) {
            return c.clone();
        }
        let mut map = self.inner.counters.write().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The counter's current value, `None` if it was never created.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .counters
            .read()
            .expect("metrics lock")
            .get(name)
            .map(Counter::get)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self
            .inner
            .histograms
            .read()
            .expect("metrics lock")
            .get(name)
        {
            return h.clone();
        }
        let mut map = self.inner.histograms.write().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Zeroes every metric (per-run reset). Existing handles stay valid —
    /// they point at the same atomics.
    pub fn reset(&self) {
        for c in self.inner.counters.read().expect("metrics lock").values() {
            c.set(0);
        }
        for h in self
            .inner
            .histograms
            .read()
            .expect("metrics lock")
            .values()
        {
            h.reset();
        }
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Counter values for `prefix + 0`, `prefix + 1`, … until the first
    /// missing index — the per-shard busy vector convention.
    pub fn indexed_counters(&self, prefix: &str) -> Vec<u64> {
        let map = self.inner.counters.read().expect("metrics lock");
        let mut out = Vec::new();
        while let Some(c) = map.get(&format!("{prefix}{}", out.len())) {
            out.push(c.get());
        }
        out
    }

    /// Renders the full registry as a `BENCH_*`-style JSON object.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": {\n");
        let n = snap.counters.len();
        for (i, (k, v)) in snap.counters.iter().enumerate() {
            out += &format!("    \"{}\": {v}", json_escape(k));
            out += if i + 1 == n { "\n" } else { ",\n" };
        }
        out += "  },\n  \"histograms\": {\n";
        let n = snap.histograms.len();
        for (i, (k, h)) in snap.histograms.iter().enumerate() {
            out += &format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.2}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.max,
                h.mean()
            );
            out += if i + 1 == n { "\n" } else { ",\n" };
        }
        out += "  }\n}\n";
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let r = Registry::new();
        let c = r.counter("engine.tuples_scanned");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(r.counter_value("engine.tuples_scanned"), Some(6));
        assert_eq!(r.counter_value("missing"), None);
        r.reset();
        assert_eq!(c.get(), 0, "handles survive reset");
    }

    #[test]
    fn handles_share_storage() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.counter_value("x"), Some(5));
        let clone = r.clone();
        clone.counter("x").inc();
        assert_eq!(r.counter_value("x"), Some(6));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let r = Registry::new();
        let h = r.histogram("engine.op.join.us");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1000 → bucket 10
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        assert!((s.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn indexed_counters_stop_at_gap() {
        let r = Registry::new();
        r.counter("engine.shard_busy_us.0").add(10);
        r.counter("engine.shard_busy_us.1").add(20);
        r.counter("engine.shard_busy_us.3").add(99); // gap at 2
        assert_eq!(r.indexed_counters(names::SHARD_BUSY_PREFIX), vec![10, 20]);
    }

    #[test]
    fn render_json_is_valid_shape() {
        let r = Registry::new();
        r.counter("a.b").add(7);
        r.histogram("h \"q\"").observe(3);
        let json = r.render_json();
        assert!(json.contains("\"a.b\": 7"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn snapshot_is_stable() {
        let r = Registry::new();
        r.counter("c").add(1);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
    }
}
