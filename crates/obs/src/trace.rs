//! The structured trace journal.
//!
//! A [`Tracer`] is a cheap cloneable handle; clones (the engine, its
//! snapshots, worker threads, the session loop) append to one shared
//! journal. Every probe starts with a relaxed atomic load of the enabled
//! flag — a disabled tracer performs **no allocation and no locking**,
//! which the counter-based tests below assert and the tier-1 smoke gate
//! verifies stays overhead-neutral.
//!
//! Events are chrome-trace-like: `B`(egin)/`E`(nd) pairs sharing a span
//! id, plus `I`(nstant) markers, each stamped with microseconds since the
//! tracer's epoch (a monotonic [`Instant`]). Spans form a tree through
//! `parent` ids; the well-formedness contract (every child closes inside
//! its parent) is checked by [`crate::replay::validate_nesting`].

use crate::json_escape;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A span identifier. `SpanId::NONE` (0) is the root: a span with parent
/// 0 is a top-level span, and every recording call made with a `NONE`
/// target id is a no-op (what [`Tracer::begin`] hands out while disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The root / "no span" id.
    pub const NONE: SpanId = SpanId(0);

    /// True for the root / disabled id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// The span taxonomy (DESIGN.md §8). Engine spans nest
/// `run → rule → operator → shard`; assistant spans nest
/// `session → iteration → question → probe` with engine runs hanging off
/// whichever assistant span drove them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One developer session (the outermost assistant span).
    Session,
    /// One execute → examine → refine iteration.
    Iteration,
    /// Selecting + answering one feature question.
    Question,
    /// One simulated refinement executed by the simulation strategy.
    Probe,
    /// One engine run (full or sampled).
    Run,
    /// One rule's evaluation (or reuse-cache hit).
    Rule,
    /// One plan operator (scan, join, constraint, ψ, …).
    Operator,
    /// One scatter shard on a worker thread (legacy journals; the
    /// morsel-driven executor emits [`SpanKind::Morsel`] instead).
    Shard,
    /// One dispensed morsel (index range) of a parallel operator section.
    Morsel,
    /// Anything else (instant markers, degradations, retries).
    Mark,
}

impl SpanKind {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Iteration => "iteration",
            SpanKind::Question => "question",
            SpanKind::Probe => "probe",
            SpanKind::Run => "run",
            SpanKind::Rule => "rule",
            SpanKind::Operator => "operator",
            SpanKind::Shard => "shard",
            SpanKind::Morsel => "morsel",
            SpanKind::Mark => "mark",
        }
    }

    /// Parses a wire name back (replay).
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "session" => SpanKind::Session,
            "iteration" => SpanKind::Iteration,
            "question" => SpanKind::Question,
            "probe" => SpanKind::Probe,
            "run" => SpanKind::Run,
            "rule" => SpanKind::Rule,
            "operator" => SpanKind::Operator,
            "shard" => SpanKind::Shard,
            "morsel" => SpanKind::Morsel,
            "mark" => SpanKind::Mark,
            _ => return None,
        })
    }
}

/// The event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin.
    Begin,
    /// Span end.
    End,
    /// A point-in-time marker.
    Instant,
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The phase.
    pub ph: Phase,
    /// The span id (`End` events carry the id of the span they close).
    pub id: u64,
    /// Parent span id (0 = top level). Meaningless on `End`.
    pub parent: u64,
    /// The span kind.
    pub kind: SpanKind,
    /// Human-readable name (rule text, operator name, …). Empty on `End`.
    pub name: String,
    /// Microseconds since the tracer's epoch.
    pub t_us: u64,
    /// Numeric attachments (`tuples_out`, `shard`, …).
    pub args: Vec<(&'static str, u64)>,
    /// Free-text attachment (degradation cause, fault site, …).
    pub note: Option<String>,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
    /// Events appended so far (the zero-allocation-when-disabled counter).
    recorded: AtomicU64,
    /// Events discarded because the journal hit its cap.
    dropped: AtomicU64,
    cap: usize,
}

/// Journal cap: generous for any realistic run, finite so a runaway trace
/// cannot exhaust memory (overflow is counted in [`Tracer::dropped`]).
const DEFAULT_CAP: usize = 4 << 20;

/// The shared trace journal handle.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    fn with_enabled(enabled: bool) -> Self {
        Tracer::with_enabled_cap(enabled, DEFAULT_CAP)
    }

    /// An enabled tracer with an explicit journal cap — lets tests (and
    /// the truncation-warning path in `exp_trace`) exercise the cap
    /// without journaling four million events.
    pub fn with_cap(cap: usize) -> Self {
        Tracer::with_enabled_cap(true, cap)
    }

    fn with_enabled_cap(enabled: bool, cap: usize) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                cap,
            }),
        }
    }

    /// A disabled tracer (what every engine starts with): every recording
    /// call is one relaxed atomic load, no locks, no allocation.
    pub fn disabled() -> Self {
        Tracer::with_enabled(false)
    }

    /// A tracer recording from the start.
    pub fn enabled() -> Self {
        Tracer::with_enabled(true)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Turns recording off (already-journaled events are kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// True while recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds since the tracer's epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, ev: TraceEvent) {
        let mut events = self.inner.events.lock().expect("trace journal lock");
        if events.len() >= self.inner.cap {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Opens a span. Returns [`SpanId::NONE`] while disabled, which makes
    /// the matching [`Tracer::end`] a no-op.
    pub fn begin(&self, parent: SpanId, kind: SpanKind, name: &str) -> SpanId {
        if !self.is_enabled() {
            return SpanId::NONE;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            ph: Phase::Begin,
            id,
            parent: parent.0,
            kind,
            name: name.to_string(),
            t_us: self.now_us(),
            args: Vec::new(),
            note: None,
        });
        SpanId(id)
    }

    /// Closes a span.
    pub fn end(&self, id: SpanId) {
        self.end_with(id, &[]);
    }

    /// Closes a span with numeric attachments.
    pub fn end_with(&self, id: SpanId, args: &[(&'static str, u64)]) {
        if id.is_none() || !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            ph: Phase::End,
            id: id.0,
            parent: 0,
            kind: SpanKind::Mark,
            name: String::new(),
            t_us: self.now_us(),
            args: args.to_vec(),
            note: None,
        });
    }

    /// Records a point-in-time marker under `parent`.
    pub fn instant(&self, parent: SpanId, kind: SpanKind, name: &str, note: Option<&str>) {
        if !self.is_enabled() {
            return;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            ph: Phase::Instant,
            id,
            parent: parent.0,
            kind,
            name: name.to_string(),
            t_us: self.now_us(),
            args: Vec::new(),
            note: note.map(str::to_string),
        });
    }

    /// `Some((self, parent))` only while enabled — the cheap way to hand a
    /// trace context into code (scatter workers) that must not even format
    /// a span name when tracing is off.
    pub fn ctx(&self, parent: SpanId) -> Option<(&Tracer, SpanId)> {
        if self.is_enabled() {
            Some((self, parent))
        } else {
            None
        }
    }

    /// Events journaled so far.
    pub fn recorded(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Events discarded at the journal cap.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A snapshot of the journal.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().expect("trace journal lock").clone()
    }

    /// Renders the journal as JSONL (one event object per line). When the
    /// journal overflowed its cap, a final `journal_truncated` instant
    /// (parent 0, `dropped` arg) marks the loss so replay tooling can
    /// warn instead of silently under-reporting spans.
    pub fn to_jsonl(&self) -> String {
        let events = self.inner.events.lock().expect("trace journal lock");
        let mut out = String::with_capacity(events.len() * 64);
        for ev in events.iter() {
            render_event(&mut out, ev);
            out.push('\n');
        }
        let dropped = self.inner.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            let marker = TraceEvent {
                ph: Phase::Instant,
                id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
                parent: 0,
                kind: SpanKind::Mark,
                name: "journal_truncated".to_string(),
                t_us: events.last().map(|e| e.t_us).unwrap_or(0),
                args: vec![("dropped", dropped)],
                note: Some("journal hit its event cap; span tables under-report".to_string()),
            };
            render_event(&mut out, &marker);
            out.push('\n');
        }
        out
    }

    /// Writes the journal to `path` as JSONL.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

/// Renders one event as a single-line JSON object.
fn render_event(out: &mut String, ev: &TraceEvent) {
    use std::fmt::Write as _;
    let ph = match ev.ph {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "I",
    };
    let _ = write!(out, "{{\"ph\":\"{ph}\",\"id\":{}", ev.id);
    if ev.ph != Phase::End {
        let _ = write!(
            out,
            ",\"parent\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            ev.parent,
            ev.kind.as_str(),
            json_escape(&ev.name)
        );
    }
    let _ = write!(out, ",\"t\":{}", ev.t_us);
    for (k, v) in &ev.args {
        let _ = write!(out, ",\"{k}\":{v}");
    }
    if let Some(note) = &ev.note {
        let _ = write!(out, ",\"note\":\"{}\"", json_escape(note));
    }
    out.push('}');
}

/// The `IFLEX_TRACE` convention: unset, empty, or `0` → no tracing;
/// `1` → trace to `iflex-trace.jsonl` in the working directory; any other
/// value → trace to that path. A value that is not valid UTF-8 cannot
/// name a trace path portably, so it is treated as "off" — with a warning
/// (once per process) naming the offending value, rather than silently.
pub fn trace_path_from_env() -> Option<std::path::PathBuf> {
    let v = match std::env::var("IFLEX_TRACE") {
        Ok(v) => v,
        Err(std::env::VarError::NotPresent) => return None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "iflex: ignoring invalid IFLEX_TRACE={raw:?} \
                     (not valid UTF-8); tracing stays off"
                );
            });
            return None;
        }
    };
    trace_path_from_value(&v)
}

/// The pure half of [`trace_path_from_env`], factored out for tests.
pub fn trace_path_from_value(v: &str) -> Option<std::path::PathBuf> {
    let v = v.trim();
    if v.is_empty() || v == "0" {
        return None;
    }
    if v == "1" {
        return Some(std::path::PathBuf::from("iflex-trace.jsonl"));
    }
    Some(std::path::PathBuf::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_journals_nothing() {
        // Counter-based zero-allocation assertion: a disabled tracer must
        // append no events (the journal Vec never grows, so nothing is
        // allocated on its behalf) across every call shape.
        let t = Tracer::disabled();
        let s = t.begin(SpanId::NONE, SpanKind::Run, "run");
        assert!(s.is_none());
        let child = t.begin(s, SpanKind::Rule, "rule text");
        t.instant(child, SpanKind::Mark, "degradation", Some("budget"));
        t.end_with(child, &[("tuples_out", 3)]);
        t.end(s);
        assert!(t.ctx(SpanId::NONE).is_none());
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(t.events().is_empty());
        assert!(t.to_jsonl().is_empty());
    }

    #[test]
    fn enabled_tracer_records_nested_spans() {
        let t = Tracer::enabled();
        let run = t.begin(SpanId::NONE, SpanKind::Run, "run");
        let rule = t.begin(run, SpanKind::Rule, "q(x) :- p(x).");
        t.end_with(rule, &[("tuples_out", 7)]);
        t.end(run);
        assert_eq!(t.recorded(), 4);
        let evs = t.events();
        assert_eq!(evs[0].ph, Phase::Begin);
        assert_eq!(evs[1].parent, evs[0].id);
        assert!(evs[0].t_us <= evs[3].t_us, "timestamps are monotonic");
    }

    #[test]
    fn clones_share_one_journal() {
        let t = Tracer::enabled();
        let c = t.clone();
        let s = c.begin(SpanId::NONE, SpanKind::Shard, "shard0");
        t.end(s);
        assert_eq!(t.recorded(), 2);
        assert_eq!(c.recorded(), 2);
    }

    #[test]
    fn enable_disable_round_trip() {
        let t = Tracer::disabled();
        assert!(t.begin(SpanId::NONE, SpanKind::Run, "x").is_none());
        t.enable();
        let s = t.begin(SpanId::NONE, SpanKind::Run, "x");
        assert!(!s.is_none());
        t.end(s);
        t.disable();
        assert!(t.begin(SpanId::NONE, SpanKind::Run, "y").is_none());
        assert_eq!(t.recorded(), 2);
    }

    #[test]
    fn jsonl_renders_escaped_names_and_args() {
        let t = Tracer::enabled();
        let s = t.begin(SpanId::NONE, SpanKind::Rule, "r(p) :- f(p) = \"x\".");
        t.instant(s, SpanKind::Mark, "degradation", Some("budget"));
        t.end_with(s, &[("tuples_out", 42)]);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\\\"x\\\""));
        assert!(lines[1].contains("\"note\":\"budget\""));
        assert!(lines[2].contains("\"tuples_out\":42"));
    }

    #[test]
    fn capped_journal_marks_truncation() {
        let t = Tracer::with_cap(2);
        let a = t.begin(SpanId::NONE, SpanKind::Run, "run");
        let b = t.begin(a, SpanKind::Rule, "r");
        t.end(b); // over cap: dropped
        t.end(a); // over cap: dropped
        assert_eq!(t.dropped(), 2);
        let jsonl = t.to_jsonl();
        let last = jsonl.lines().last().unwrap();
        assert!(last.contains("journal_truncated"), "{last}");
        assert!(last.contains("\"dropped\":2"), "{last}");
        // An un-truncated journal carries no marker.
        let clean = Tracer::enabled();
        clean.instant(SpanId::NONE, SpanKind::Mark, "x", None);
        assert!(!clean.to_jsonl().contains("journal_truncated"));
    }

    #[test]
    fn env_convention() {
        // No env mutation (tests run in parallel): exercise the parsing
        // contract through a copy of the rules on explicit values.
        let parse = |v: &str| -> Option<String> {
            let v = v.trim();
            if v.is_empty() || v == "0" {
                None
            } else if v == "1" {
                Some("iflex-trace.jsonl".into())
            } else {
                Some(v.to_string())
            }
        };
        assert_eq!(parse(""), None);
        assert_eq!(parse("0"), None);
        assert_eq!(parse("1"), Some("iflex-trace.jsonl".into()));
        assert_eq!(parse("/tmp/t.jsonl"), Some("/tmp/t.jsonl".into()));
    }
}
