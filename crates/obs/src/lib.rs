//! # iflex-obs
//!
//! Zero-external-dependency observability for the iFlex engine:
//!
//! * [`trace`] — a lock-cheap structured **trace journal**: span-scoped
//!   begin/end/instant events (`run → rule → operator → shard`, plus the
//!   assistant's `session → iteration → question → probe`) with monotonic
//!   microsecond timestamps. Disabled tracers are a single relaxed atomic
//!   load per call and allocate nothing.
//! * [`metrics`] — a **metrics registry** of named counters and
//!   log₂-bucketed histograms behind cheap atomic handles. The engine's
//!   `ExecStats` is a per-run view over this registry rather than a
//!   hand-threaded struct.
//! * [`replay`] — a parser + validator for the JSONL trace dumps, used by
//!   the `exp_trace` report tool and the span-nesting tests.
//! * [`window`] — lock-cheap **sliding-window aggregators** (a ring of
//!   250 ms buckets) answering rate/mean/max over the trailing 1 s / 10 s
//!   / 60 s, grouped per tenant in a [`window::LiveSet`].
//! * [`quantile`] — a mergeable **log-scale quantile sketch** so
//!   per-operator and per-request latencies report p50/p95/p99 within a
//!   configured relative accuracy.
//! * [`flight`] — an always-on bounded **flight recorder** of recent
//!   events, dumped to JSONL when the watchdog cancels a run, a worker
//!   panics, or a rule degrades.
//!
//! Export formats are hand-rendered JSON (the workspace deliberately
//! carries no JSON dependency): one JSON object per line for traces
//! (chrome-trace-like `B`/`E`/`I` phases), and a single `BENCH_*`-style
//! object for metrics snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod quantile;
pub mod replay;
pub mod trace;
pub mod window;

pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{Counter, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use quantile::{QuantileSketch, QuantileSummary};
pub use replay::{build_spans, parse_jsonl, validate_nesting, Span};
pub use trace::{trace_path_from_env, Phase, SpanId, SpanKind, TraceEvent, Tracer};
pub use window::{LiveSet, Window, WindowStats};

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_specials() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
