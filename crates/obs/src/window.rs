//! Lock-cheap sliding-window aggregators.
//!
//! A [`Window`] is a ring of fixed-width time buckets (250 ms × 256 ≈ 64 s
//! of coverage) over which rate / mean / max can be read for the trailing
//! 1 s, 10 s, and 60 s. Writers never take a lock: a bucket is claimed for
//! the current time slice with one compare-and-swap on its sequence tag
//! (lazy reset — stale buckets are re-zeroed by the first writer of the new
//! slice), and observations land as relaxed atomic adds. Readers sum the
//! buckets whose tag falls inside the requested horizon.
//!
//! Windows are grouped in a [`LiveSet`] — a named registry sharing one
//! enabled flag, so an entire telemetry surface turns on or off together
//! and the **disabled path is a single relaxed atomic load** per call
//! (the same contract the trace journal makes).
//!
//! The lazy-reset scheme trades a sliver of precision for lock freedom: a
//! reader racing the first writer of a fresh slice can observe a bucket
//! mid-reset. Telemetry consumers tolerate that; invariants never hang off
//! these numbers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::quantile::QuantileSketch;

/// Width of one ring bucket in milliseconds.
pub const BUCKET_MS: u64 = 250;
/// Number of buckets in the ring (256 × 250 ms = 64 s of history, enough
/// to answer a trailing-60 s query plus the current partial slice).
pub const BUCKETS: usize = 256;

/// Sequence tag meaning "never written".
const EMPTY: u64 = u64::MAX;

/// One time-slice accumulator.
#[derive(Debug)]
struct Bucket {
    /// The slice index this bucket currently holds (`EMPTY` = unused).
    seq: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            seq: AtomicU64::new(EMPTY),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct WindowInner {
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    buckets: Vec<Bucket>,
}

/// A cheap cloneable handle to one sliding-window aggregator.
#[derive(Debug, Clone)]
pub struct Window {
    inner: Arc<WindowInner>,
}

/// Aggregates over one trailing horizon of a [`Window`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Horizon length in seconds.
    pub secs: u64,
    /// Observations inside the horizon.
    pub count: u64,
    /// Sum of observed values inside the horizon.
    pub sum: u64,
    /// Largest observed value inside the horizon (0 when empty).
    pub max: u64,
}

impl WindowStats {
    /// Observations per second over the horizon.
    pub fn rate(&self) -> f64 {
        if self.secs == 0 {
            0.0
        } else {
            self.count as f64 / self.secs as f64
        }
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Window {
    /// A standalone always-enabled window (tests, offline replay).
    pub fn new() -> Window {
        Window::with_flag(Arc::new(AtomicBool::new(true)), Instant::now())
    }

    /// A window sharing an external enabled flag and epoch — how
    /// [`LiveSet`] builds its members.
    pub fn with_flag(enabled: Arc<AtomicBool>, epoch: Instant) -> Window {
        Window {
            inner: Arc::new(WindowInner {
                enabled,
                epoch,
                buckets: (0..BUCKETS).map(|_| Bucket::new()).collect(),
            }),
        }
    }

    /// Whether observations are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Records one observation of value `v` at the current time. Disabled
    /// windows return after a single relaxed load.
    pub fn observe(&self, v: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record_at(self.now_us(), 1, v, v);
    }

    /// Records `n` unit events (count += n, sum += n) — the shape used for
    /// event-rate windows (requests, degradations, cache hits).
    pub fn add_count(&self, n: u64) {
        if n == 0 || !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record_at(self.now_us(), n, n, 1);
    }

    /// Test / replay entry point: records at an explicit microsecond
    /// timestamp relative to the window's epoch, bypassing the enabled
    /// flag (offline replays always want the data).
    pub fn observe_at(&self, t_us: u64, v: u64) {
        self.record_at(t_us, 1, v, v);
    }

    fn record_at(&self, t_us: u64, count: u64, sum: u64, max: u64) {
        let seq = t_us / (BUCKET_MS * 1000);
        let b = &self.inner.buckets[(seq % BUCKETS as u64) as usize];
        let cur = b.seq.load(Ordering::Acquire);
        if cur != seq {
            // A bucket never travels backwards: an out-of-order write for
            // a slice older than the one the bucket holds is dropped (it
            // would be outside every horizon that still sees the bucket).
            if cur != EMPTY && cur > seq {
                return;
            }
            // First writer of this slice claims the bucket and lazily
            // zeroes the stale contents. Losing the CAS means another
            // writer already did (or is doing) the reset.
            if b
                .seq
                .compare_exchange(cur, seq, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                b.count.store(0, Ordering::Relaxed);
                b.sum.store(0, Ordering::Relaxed);
                b.max.store(0, Ordering::Relaxed);
            }
        }
        b.count.fetch_add(count, Ordering::Relaxed);
        b.sum.fetch_add(sum, Ordering::Relaxed);
        b.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Aggregates over the trailing `secs` seconds ending now.
    pub fn stats(&self, secs: u64) -> WindowStats {
        self.stats_at(self.now_us(), secs)
    }

    /// [`Window::stats`] against an explicit "now" (tests, replay).
    pub fn stats_at(&self, now_us: u64, secs: u64) -> WindowStats {
        let cur_seq = now_us / (BUCKET_MS * 1000);
        // Number of slices covering the horizon, capped so the query never
        // wraps past its own tail (ring covers 64 s; 60 s is the widest
        // supported horizon).
        let slices = (secs * 1000 / BUCKET_MS).min(BUCKETS as u64 - 8).max(1);
        let oldest = cur_seq.saturating_sub(slices - 1);
        let mut out = WindowStats {
            secs,
            count: 0,
            sum: 0,
            max: 0,
        };
        for b in &self.inner.buckets {
            let seq = b.seq.load(Ordering::Acquire);
            if seq == EMPTY || seq < oldest || seq > cur_seq {
                continue;
            }
            out.count += b.count.load(Ordering::Relaxed);
            out.sum += b.sum.load(Ordering::Relaxed);
            out.max = out.max.max(b.max.load(Ordering::Relaxed));
        }
        out
    }

    /// The standard trailing horizons (1 s / 10 s / 60 s) in one call.
    pub fn horizons(&self) -> [WindowStats; 3] {
        let now = self.now_us();
        [
            self.stats_at(now, 1),
            self.stats_at(now, 10),
            self.stats_at(now, 60),
        ]
    }
}

impl Default for Window {
    fn default() -> Self {
        Window::new()
    }
}

#[derive(Debug)]
struct LiveSetInner {
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    windows: RwLock<std::collections::BTreeMap<String, Window>>,
    sketches: RwLock<std::collections::BTreeMap<String, QuantileSketch>>,
    shard_busy: Mutex<Vec<Window>>,
}

/// A named collection of [`Window`]s and [`QuantileSketch`]es sharing one
/// enabled flag — the per-session (or per-host) live-telemetry surface.
///
/// Handles returned by [`LiveSet::window`] / [`LiveSet::sketch`] stay
/// valid forever and share the set's flag, so a consumer can cache them
/// and still be turned off wholesale.
#[derive(Debug, Clone)]
pub struct LiveSet {
    inner: Arc<LiveSetInner>,
}

impl LiveSet {
    /// A live set recording from birth.
    pub fn enabled() -> LiveSet {
        LiveSet::with_enabled(true)
    }

    /// A live set that drops every observation after one relaxed load —
    /// the default wired into engines outside a service.
    pub fn disabled() -> LiveSet {
        LiveSet::with_enabled(false)
    }

    fn with_enabled(on: bool) -> LiveSet {
        LiveSet {
            inner: Arc::new(LiveSetInner {
                enabled: Arc::new(AtomicBool::new(on)),
                epoch: Instant::now(),
                windows: RwLock::new(std::collections::BTreeMap::new()),
                sketches: RwLock::new(std::collections::BTreeMap::new()),
                shard_busy: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (handles stay valid; observations are dropped).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether members are recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The window named `name`, created on first use. The handle shares
    /// the set's enabled flag and epoch.
    pub fn window(&self, name: &str) -> Window {
        if let Some(w) = self.inner.windows.read().expect("live lock").get(name) {
            return w.clone();
        }
        let mut map = self.inner.windows.write().expect("live lock");
        map.entry(name.to_string())
            .or_insert_with(|| Window::with_flag(self.inner.enabled.clone(), self.inner.epoch))
            .clone()
    }

    /// The quantile sketch named `name`, created on first use with the
    /// default relative accuracy.
    pub fn sketch(&self, name: &str) -> QuantileSketch {
        if let Some(s) = self.inner.sketches.read().expect("live lock").get(name) {
            return s.clone();
        }
        let mut map = self.inner.sketches.write().expect("live lock");
        map.entry(name.to_string())
            .or_insert_with(|| QuantileSketch::with_flag(self.inner.enabled.clone()))
            .clone()
    }

    /// The per-shard busy-time window for shard `i`, grown on demand —
    /// the windowed companion of the `engine.shard_busy_us.<i>` counters.
    pub fn shard_busy(&self, i: usize) -> Window {
        let mut v = self.inner.shard_busy.lock().expect("live lock");
        while v.len() <= i {
            v.push(Window::with_flag(self.inner.enabled.clone(), self.inner.epoch));
        }
        v[i].clone()
    }

    /// Snapshot of every named window handle (for rendering).
    pub fn windows(&self) -> Vec<(String, Window)> {
        self.inner
            .windows
            .read()
            .expect("live lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Snapshot of every named sketch handle (for rendering).
    pub fn sketches(&self) -> Vec<(String, QuantileSketch)> {
        self.inner
            .sketches
            .read()
            .expect("live lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Snapshot of the per-shard busy windows.
    pub fn shard_busy_windows(&self) -> Vec<Window> {
        self.inner.shard_busy.lock().expect("live lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000; // one second in µs

    #[test]
    fn horizons_partition_time() {
        let w = Window::new();
        // 5 events in the last second, 20 more spread over the last 10 s,
        // 30 more in the last minute, 10 ancient.
        let now = 120 * S;
        for i in 0..5 {
            w.observe_at(now - i * 100_000, 10);
        }
        for i in 0..20 {
            w.observe_at(now - 1 * S - i * 400_000, 20);
        }
        for i in 0..30 {
            w.observe_at(now - 10 * S - i * S, 30);
        }
        for i in 0..10 {
            w.observe_at(now - 70 * S - i * S, 999);
        }
        let s1 = w.stats_at(now, 1);
        let s10 = w.stats_at(now, 10);
        let s60 = w.stats_at(now, 60);
        assert_eq!(s1.count, 5);
        assert_eq!(s1.max, 10);
        assert_eq!(s10.count, 25);
        assert_eq!(s60.count, 55);
        assert_eq!(s60.max, 30);
        assert!(s60.count >= s10.count && s10.count >= s1.count);
        assert!((s1.rate() - 5.0).abs() < 1e-9);
        assert!((s1.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ring_reclaims_stale_buckets() {
        let w = Window::new();
        w.observe_at(1 * S, 7);
        // Far future: the slice index wraps onto the same bucket position
        // at least once; stale data must not leak into the new horizon.
        let later = 1 * S + (BUCKETS as u64) * BUCKET_MS * 1000;
        w.observe_at(later, 3);
        let s = w.stats_at(later, 60);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 3);
    }

    #[test]
    fn add_count_is_unit_events() {
        let w = Window::new();
        w.observe_at(S, 0); // seed the slice
        w.add_count(0); // no-op
        let before = w.stats(60).count;
        w.add_count(4);
        let s = w.stats(60);
        assert_eq!(s.count, before + 4);
    }

    #[test]
    fn disabled_set_drops_everything() {
        let set = LiveSet::disabled();
        let w = set.window("x");
        let q = set.sketch("x");
        w.observe(5);
        q.observe(5);
        assert_eq!(w.stats(60).count, 0);
        assert_eq!(q.count(), 0);
        set.enable();
        w.observe(5);
        q.observe(5);
        assert_eq!(w.stats(60).count, 1);
        assert_eq!(q.count(), 1);
    }

    #[test]
    fn live_set_handles_are_shared() {
        let set = LiveSet::enabled();
        let a = set.window("w");
        let b = set.window("w");
        a.observe(1);
        assert_eq!(b.stats(60).count, 1);
        assert_eq!(set.windows().len(), 1);
        let s0 = set.shard_busy(2);
        s0.observe(9);
        assert_eq!(set.shard_busy_windows().len(), 3);
        assert_eq!(set.shard_busy_windows()[2].stats(60).sum, 9);
    }
}
