//! Always-on bounded flight recorder.
//!
//! A [`FlightRecorder`] keeps the last `cap` noteworthy events (requests,
//! runs, degradations, cancels) in a ring buffer so that when something
//! goes wrong — the watchdog cancels a run, a worker panics, a rule
//! degrades — the service can dump the victim session's recent history to
//! JSONL **after the fact**, replacing "re-run with `IFLEX_TRACE` set and
//! hope it reproduces". It is deliberately not a [`crate::trace::Tracer`]
//! mode: the tracer's disabled path guarantees zero allocation, while the
//! recorder is always on and pays one small allocation per recorded event.
//!
//! Recording takes a mutex, but only around a `VecDeque` push — events are
//! rare (per request / per run, never per tuple), so contention is nil.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json_escape;

/// Default ring capacity: enough to hold a session's recent request
/// history without ever mattering for memory (~a few KiB).
pub const DEFAULT_FLIGHT_CAP: usize = 64;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Microseconds since the recorder's epoch.
    pub t_us: u64,
    /// Event class: `"request"`, `"run"`, `"degradation"`, `"cancel"`,
    /// `"panic"`, …
    pub kind: &'static str,
    /// What the event names (a request command, a rule, …).
    pub name: String,
    /// Free-form detail (empty when there is none).
    pub note: String,
}

impl FlightEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        format!(
            "{{\"t_us\":{},\"kind\":\"{}\",\"name\":\"{}\",\"note\":\"{}\"}}",
            self.t_us,
            json_escape(self.kind),
            json_escape(&self.name),
            json_escape(&self.note)
        )
    }
}

#[derive(Debug)]
struct FlightInner {
    enabled: AtomicBool,
    epoch: Instant,
    cap: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
    /// Lifetime total, including events the ring has since evicted.
    total: AtomicU64,
}

/// A cheap cloneable handle to one bounded event ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// A recording ring holding the last `cap` events (`cap == 0` falls
    /// back to [`DEFAULT_FLIGHT_CAP`]).
    pub fn new(cap: usize) -> FlightRecorder {
        let cap = if cap == 0 { DEFAULT_FLIGHT_CAP } else { cap };
        FlightRecorder {
            inner: Arc::new(FlightInner {
                enabled: AtomicBool::new(true),
                epoch: Instant::now(),
                cap,
                ring: Mutex::new(VecDeque::with_capacity(cap.min(256))),
                total: AtomicU64::new(0),
            }),
        }
    }

    /// A recorder that drops everything after one relaxed load — the
    /// default wired into engines outside a service.
    pub fn disabled() -> FlightRecorder {
        let r = FlightRecorder::new(1);
        r.inner.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Records one event. Disabled recorders return after a single
    /// relaxed load; callers should guard any expensive formatting with
    /// [`FlightRecorder::is_enabled`].
    pub fn record(&self, kind: &'static str, name: impl Into<String>, note: impl Into<String>) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let ev = FlightEvent {
            t_us: self.inner.epoch.elapsed().as_micros() as u64,
            kind,
            name: name.into(),
            note: note.into(),
        };
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.inner.ring.lock().expect("flight lock");
        if ring.len() == self.inner.cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Events currently held (oldest first).
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.inner
            .ring
            .lock()
            .expect("flight lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().expect("flight lock").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime events recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Renders the ring as a JSONL dump: a header line naming the session
    /// and trigger, then one line per retained event (oldest first).
    pub fn dump_jsonl(&self, session: u64, reason: &str) -> String {
        let events = self.snapshot();
        let mut out = format!(
            "{{\"flight\":\"v1\",\"session\":{},\"reason\":\"{}\",\"events\":{},\"total\":{}}}\n",
            session,
            json_escape(reason),
            events.len(),
            self.total()
        );
        for ev in &events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_tail() {
        let f = FlightRecorder::new(4);
        for i in 0..10 {
            f.record("request", format!("r{i}"), "");
        }
        let snap = f.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].name, "r6");
        assert_eq!(snap[3].name, "r9");
        assert_eq!(f.total(), 10);
    }

    #[test]
    fn disabled_recorder_drops() {
        let f = FlightRecorder::disabled();
        f.record("request", "x", "");
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn dump_is_parseable_jsonl() {
        let f = FlightRecorder::new(8);
        f.record("run", "ask", "tuples=5");
        f.record("degradation", "extractV", "timeout @ eval_rule");
        let dump = f.dump_jsonl(3, "watchdog_cancel");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"session\":3"));
        assert!(lines[0].contains("\"reason\":\"watchdog_cancel\""));
        assert!(lines[1].contains("\"kind\":\"run\""));
        assert!(lines[2].contains("\"note\":\"timeout @ eval_rule\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn events_are_monotonic() {
        let f = FlightRecorder::new(8);
        f.record("a", "1", "");
        f.record("b", "2", "");
        let snap = f.snapshot();
        assert!(snap[0].t_us <= snap[1].t_us);
    }
}
