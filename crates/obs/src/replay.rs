//! Replay: parse a JSONL trace dump back into events and spans, and check
//! the well-formedness contract (`every child closes inside its parent`).
//!
//! The parser understands exactly the flat single-line objects
//! [`crate::trace`] renders — string values, unsigned integers, and the
//! escapes [`crate::json_escape`] emits. It is deliberately not a general
//! JSON parser (the workspace carries no JSON dependency).

use crate::trace::{Phase, SpanKind, TraceEvent};
use std::collections::BTreeMap;

/// A reconstructed span: a matched `B`/`E` pair from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = top level).
    pub parent: u64,
    /// Span kind.
    pub kind: SpanKind,
    /// Span name.
    pub name: String,
    /// Begin timestamp (µs since trace epoch).
    pub t0: u64,
    /// End timestamp.
    pub t1: u64,
    /// Numeric attachments merged from the begin and end events.
    pub args: Vec<(String, u64)>,
}

impl Span {
    /// Inclusive duration in µs.
    pub fn dur_us(&self) -> u64 {
        self.t1.saturating_sub(self.t0)
    }

    /// The value of a named numeric attachment.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Splits one rendered line into `(key, raw_value)` pairs. Values are
/// either `"…"` strings (escapes intact) or bare number tokens.
fn fields(line: &str) -> Result<Vec<(String, String)>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {line}"))?;
    let bytes = inner.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b',' || bytes[i] == b' ' {
            i += 1;
            continue;
        }
        let (key, after_key) = read_string(inner, i)?;
        let mut j = after_key;
        if bytes.get(j) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?} in: {line}"));
        }
        j += 1;
        if bytes.get(j) == Some(&b'"') {
            let (val, after_val) = read_string(inner, j)?;
            out.push((key, format!("\"{val}\"")));
            i = after_val;
        } else {
            let start = j;
            while j < bytes.len() && bytes[j] != b',' {
                j += 1;
            }
            out.push((key, inner[start..j].trim().to_string()));
            i = j;
        }
    }
    Ok(out)
}

/// Reads the `"…"` starting at byte `i`; returns the raw (still-escaped)
/// contents and the index just past the closing quote.
fn read_string(s: &str, i: usize) -> Result<(String, usize), String> {
    let bytes = s.as_bytes();
    if bytes.get(i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i} in: {s}"));
    }
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return Ok((s[i + 1..j].to_string(), j + 1)),
            _ => j += 1,
        }
    }
    Err(format!("unterminated string at byte {i} in: {s}"))
}

/// Undoes [`crate::json_escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Parses a JSONL trace dump. Blank lines are skipped; any malformed line
/// is an error naming the 1-based line number.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(ev);
    }
    Ok(events)
}

fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut ph = None;
    let mut id = None;
    let mut parent = 0;
    let mut kind = SpanKind::Mark;
    let mut name = String::new();
    let mut t_us = None;
    let mut args = Vec::new();
    let mut note = None;
    for (key, raw) in fields(line)? {
        let str_val = raw
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(unescape);
        match key.as_str() {
            "ph" => {
                ph = Some(match str_val.as_deref() {
                    Some("B") => Phase::Begin,
                    Some("E") => Phase::End,
                    Some("I") => Phase::Instant,
                    other => return Err(format!("bad phase {other:?}")),
                });
            }
            "id" => id = Some(num(&raw)?),
            "parent" => parent = num(&raw)?,
            "kind" => {
                let v = str_val.ok_or_else(|| "kind must be a string".to_string())?;
                kind = SpanKind::parse(&v).ok_or_else(|| format!("unknown kind {v:?}"))?;
            }
            "name" => name = str_val.ok_or_else(|| "name must be a string".to_string())?,
            "t" => t_us = Some(num(&raw)?),
            "note" => note = Some(str_val.ok_or_else(|| "note must be a string".to_string())?),
            // TraceEvent.args keys are &'static str in-process; replayed
            // args are re-keyed through a leak-free table of known keys,
            // so unknown numeric fields are preserved via ARG_KEYS below.
            other => {
                if let Some(k) = intern_arg_key(other) {
                    args.push((k, num(&raw)?));
                }
            }
        }
    }
    Ok(TraceEvent {
        ph: ph.ok_or("missing ph")?,
        id: id.ok_or("missing id")?,
        parent,
        kind,
        name,
        t_us: t_us.ok_or("missing t")?,
        args,
        note,
    })
}

/// The numeric-attachment keys the engine emits. `TraceEvent.args` uses
/// `&'static str` keys to keep the hot path allocation-free, so replay
/// maps wire keys back through this table (unknown keys are dropped —
/// they cannot affect nesting validation or the reports).
const ARG_KEYS: &[&str] = &[
    "tuples_out",
    "tuples_in",
    "shard",
    "threads",
    "items",
    "iteration",
    "questions",
    "size",
    "assignments",
    "degradations",
    "sample_pct",
    "busy_us",
    "dropped",
    "start",
    "len",
    "stolen",
];

fn intern_arg_key(key: &str) -> Option<&'static str> {
    ARG_KEYS.iter().find(|k| **k == key).copied()
}

fn num(raw: &str) -> Result<u64, String> {
    raw.trim()
        .parse::<u64>()
        .map_err(|_| format!("expected unsigned integer, got {raw:?}"))
}

/// Pairs `B`/`E` events into [`Span`]s, in begin order. Errors on an `E`
/// with no matching `B` or a duplicate id. Unclosed spans are returned
/// with `t1 == t0` — [`validate_nesting`] rejects them; callers that
/// tolerate truncated dumps can filter on [`Span::dur_us`].
pub fn build_spans(events: &[TraceEvent]) -> Result<Vec<Span>, String> {
    let mut spans: Vec<Span> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for ev in events {
        match ev.ph {
            Phase::Begin => {
                if index.contains_key(&ev.id) {
                    return Err(format!("duplicate span id {}", ev.id));
                }
                index.insert(ev.id, spans.len());
                spans.push(Span {
                    id: ev.id,
                    parent: ev.parent,
                    kind: ev.kind,
                    name: ev.name.clone(),
                    t0: ev.t_us,
                    t1: ev.t_us,
                    args: ev.args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                });
            }
            Phase::End => {
                let idx = *index
                    .get(&ev.id)
                    .ok_or_else(|| format!("end for unknown span id {}", ev.id))?;
                let span = &mut spans[idx];
                span.t1 = span.t1.max(ev.t_us);
                span.args
                    .extend(ev.args.iter().map(|(k, v)| (k.to_string(), *v)));
            }
            Phase::Instant => {}
        }
    }
    Ok(spans)
}

/// Checks the well-formedness contract over a raw event stream:
///
/// * every `B` has exactly one `E` (checked via [`build_spans`]);
/// * every non-zero parent id refers to a known span;
/// * every child's `[t0, t1]` lies within its parent's;
/// * a child's parent must have begun before the child (ids are handed
///   out in begin order, so `parent < id`);
/// * every `I`nstant's timestamp lies within its parent span.
///
/// Returns the spans on success so callers can go straight to reporting.
pub fn validate_nesting(events: &[TraceEvent]) -> Result<Vec<Span>, String> {
    let spans = build_spans(events)?;
    let mut ended: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut end_seen: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        if ev.ph == Phase::End {
            *end_seen.entry(ev.id).or_insert(0) += 1;
        }
    }
    for span in &spans {
        match end_seen.get(&span.id).copied().unwrap_or(0) {
            0 => return Err(format!("span {} ({:?}) never ends", span.id, span.name)),
            1 => {}
            n => return Err(format!("span {} ends {n} times", span.id)),
        }
        ended.insert(span.id, (span.t0, span.t1));
    }
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    for span in &spans {
        if span.parent == 0 {
            continue;
        }
        let parent = by_id
            .get(&span.parent)
            .ok_or_else(|| format!("span {} has unknown parent {}", span.id, span.parent))?;
        if span.parent >= span.id {
            return Err(format!(
                "span {} begins before its parent {}",
                span.id, span.parent
            ));
        }
        if span.t0 < parent.t0 || span.t1 > parent.t1 {
            return Err(format!(
                "span {} ({:?}) [{}, {}] escapes parent {} [{}, {}]",
                span.id, span.name, span.t0, span.t1, parent.id, parent.t0, parent.t1
            ));
        }
    }
    for ev in events {
        if ev.ph != Phase::Instant || ev.parent == 0 {
            continue;
        }
        let parent = by_id
            .get(&ev.parent)
            .ok_or_else(|| format!("instant {:?} has unknown parent {}", ev.name, ev.parent))?;
        if ev.t_us < parent.t0 || ev.t_us > parent.t1 {
            return Err(format!(
                "instant {:?} at {} outside parent {} [{}, {}]",
                ev.name, ev.t_us, parent.id, parent.t0, parent.t1
            ));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, Tracer};

    fn round_trip(t: &Tracer) -> Vec<TraceEvent> {
        let parsed = parse_jsonl(&t.to_jsonl()).expect("parse");
        assert_eq!(parsed, t.events(), "replay is lossless");
        parsed
    }

    #[test]
    fn round_trips_a_nested_trace() {
        let t = Tracer::enabled();
        let run = t.begin(SpanId::NONE, SpanKind::Run, "run");
        let rule = t.begin(run, SpanKind::Rule, "r(p) :- f(p) = \"x\".");
        t.instant(rule, SpanKind::Mark, "degradation", Some("budget\nline2"));
        t.end_with(rule, &[("tuples_out", 42)]);
        t.end(run);
        let events = round_trip(&t);
        let spans = validate_nesting(&events).expect("well-formed");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "r(p) :- f(p) = \"x\".");
        assert_eq!(spans[1].arg("tuples_out"), Some(42));
        assert_eq!(spans[1].parent, spans[0].id);
    }

    #[test]
    fn detects_unclosed_span() {
        let t = Tracer::enabled();
        let run = t.begin(SpanId::NONE, SpanKind::Run, "run");
        t.begin(run, SpanKind::Rule, "left open");
        t.end(run);
        let err = validate_nesting(&t.events()).unwrap_err();
        assert!(err.contains("never ends"), "{err}");
    }

    #[test]
    fn detects_child_escaping_parent() {
        // Hand-built events: child's end is after its parent's end.
        let mk = |ph, id, parent, t_us| TraceEvent {
            ph,
            id,
            parent,
            kind: SpanKind::Rule,
            name: String::new(),
            t_us,
            args: Vec::new(),
            note: None,
        };
        let events = vec![
            mk(Phase::Begin, 1, 0, 0),
            mk(Phase::Begin, 2, 1, 5),
            mk(Phase::End, 1, 0, 10),
            mk(Phase::End, 2, 0, 20),
        ];
        let err = validate_nesting(&events).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn detects_unknown_parent_and_bad_lines() {
        let events = vec![TraceEvent {
            ph: Phase::Begin,
            id: 2,
            parent: 9,
            kind: SpanKind::Rule,
            name: String::new(),
            t_us: 0,
            args: Vec::new(),
            note: None,
        }];
        assert!(build_spans(&events).is_ok());
        // Even if "ended", parent 9 does not exist.
        let mut with_end = events;
        with_end.push(TraceEvent {
            ph: Phase::End,
            id: 2,
            parent: 0,
            kind: SpanKind::Mark,
            name: String::new(),
            t_us: 1,
            args: Vec::new(),
            note: None,
        });
        assert!(validate_nesting(&with_end)
            .unwrap_err()
            .contains("unknown parent"));
        assert!(parse_jsonl("not json").unwrap_err().contains("line 1"));
        assert!(parse_jsonl("{\"ph\":\"B\",\"id\":1}")
            .unwrap_err()
            .contains("missing t"));
    }

    #[test]
    fn instants_outside_parent_are_rejected() {
        let mk = |ph, id, parent, t_us| TraceEvent {
            ph,
            id,
            parent,
            kind: SpanKind::Mark,
            name: String::new(),
            t_us,
            args: Vec::new(),
            note: None,
        };
        let events = vec![
            mk(Phase::Begin, 1, 0, 10),
            mk(Phase::End, 1, 0, 20),
            mk(Phase::Instant, 2, 1, 25),
        ];
        assert!(validate_nesting(&events)
            .unwrap_err()
            .contains("outside parent"));
    }

    #[test]
    fn blank_lines_and_unknown_numeric_fields_are_tolerated() {
        let input = "\n{\"ph\":\"B\",\"id\":1,\"parent\":0,\"kind\":\"run\",\"name\":\"r\",\"t\":1,\"future_field\":9}\n\n{\"ph\":\"E\",\"id\":1,\"t\":2}\n";
        let events = parse_jsonl(input).expect("parse");
        assert_eq!(events.len(), 2);
        let spans = validate_nesting(&events).expect("valid");
        assert_eq!(spans[0].name, "r");
    }
}
