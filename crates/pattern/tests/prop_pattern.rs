//! Property tests for the regex-lite engine: agreement with a naive
//! reference matcher on a restricted pattern family, and structural
//! invariants of reported matches.

use iflex_pattern::Pattern;
use proptest::prelude::*;

/// Naive reference: does `pat` (a literal) occur in `text`?
fn naive_contains(text: &str, pat: &str) -> bool {
    text.contains(pat)
}

proptest! {
    #[test]
    fn literal_patterns_agree_with_contains(
        text in "[abc]{0,30}",
        pat in "[abc]{1,4}",
    ) {
        let p = Pattern::new(&pat).unwrap();
        prop_assert_eq!(p.is_match(&text), naive_contains(&text, &pat));
    }

    #[test]
    fn matches_are_in_bounds_and_ordered(text in "[a-c0-3 ]{0,60}") {
        let p = Pattern::new("[a-c]+|\\d+").unwrap();
        let mut last_end = 0usize;
        for m in p.find_iter(&text) {
            prop_assert!(m.start >= last_end || m.start == m.end);
            prop_assert!(m.start <= m.end);
            prop_assert!(m.end <= text.len());
            prop_assert!(text.is_char_boundary(m.start));
            prop_assert!(text.is_char_boundary(m.end));
            last_end = m.end.max(last_end);
        }
    }

    #[test]
    fn full_match_implies_prefix_and_contains(text in "[ab]{1,12}") {
        let p = Pattern::new("[ab]+").unwrap();
        prop_assert!(p.matches_full(&text));
        prop_assert!(p.matches_prefix(&text));
        prop_assert!(p.is_match(&text));
        prop_assert!(p.matches_suffix(&text));
    }

    #[test]
    fn star_is_plus_or_empty(text in "[ab]{0,16}") {
        let plus = Pattern::new("a+").unwrap();
        let star = Pattern::new("a*").unwrap();
        // a* always matches (possibly empty); a+ iff an 'a' exists
        prop_assert!(star.is_match(&text));
        prop_assert_eq!(plus.is_match(&text), text.contains('a'));
    }

    #[test]
    fn anchored_match_agrees_with_starts_with(
        text in "[xy]{0,20}",
        pat in "[xy]{1,3}",
    ) {
        let p = Pattern::new(&format!("^{pat}")).unwrap();
        prop_assert_eq!(p.is_match(&text), text.starts_with(&pat));
    }

    #[test]
    fn alternation_is_union(text in "[pq]{0,20}") {
        let alt = Pattern::new("pp|qq").unwrap();
        let a = Pattern::new("pp").unwrap();
        let b = Pattern::new("qq").unwrap();
        prop_assert_eq!(alt.is_match(&text), a.is_match(&text) || b.is_match(&text));
    }

    #[test]
    fn bounded_repeat_counts(reps in 0usize..8) {
        let text = "z".repeat(reps);
        let p = Pattern::new("^z{2,4}$").unwrap();
        prop_assert_eq!(p.is_match(&text), (2..=4).contains(&reps));
    }

    #[test]
    fn never_panics_on_arbitrary_text(text in ".{0,120}") {
        let p = Pattern::new("\\w+|\\d+|\\s+").unwrap();
        let _ = p.find_iter(&text).count();
    }
}
