//! Pike VM: linear-time NFA simulation with greedy (leftmost-longest within
//! greedy thread priority) match extraction.

use crate::compile::{Inst, Program};

/// Executes `prog` against `text[start..]`, requiring the match to begin
/// exactly at byte offset `start`. Returns the end byte offset of the match
/// chosen by greedy thread priority.
pub fn match_at(prog: &Program, text: &str, start: usize) -> Option<usize> {
    debug_assert!(text.is_char_boundary(start));
    let insts = &prog.insts;
    let mut clist: Vec<usize> = Vec::with_capacity(insts.len());
    let mut nlist: Vec<usize> = Vec::with_capacity(insts.len());
    let mut on_clist = vec![false; insts.len()];
    let mut on_nlist = vec![false; insts.len()];
    let mut best: Option<usize> = None;

    // addthread follows epsilon transitions in priority order.
    #[allow(clippy::too_many_arguments)] // one flat VM state, called in a hot loop
    fn add(
        insts: &[Inst],
        list: &mut Vec<usize>,
        on_list: &mut [bool],
        pc: usize,
        at_start: bool,
        at_end: bool,
        pos: usize,
        best: &mut Option<usize>,
    ) {
        if on_list[pc] {
            return;
        }
        on_list[pc] = true;
        match insts[pc] {
            Inst::Jmp(t) => add(insts, list, on_list, t, at_start, at_end, pos, best),
            Inst::Split { a, b } => {
                add(insts, list, on_list, a, at_start, at_end, pos, best);
                add(insts, list, on_list, b, at_start, at_end, pos, best);
            }
            Inst::AssertStart => {
                if at_start {
                    add(insts, list, on_list, pc + 1, at_start, at_end, pos, best);
                }
            }
            Inst::AssertEnd => {
                if at_end {
                    add(insts, list, on_list, pc + 1, at_start, at_end, pos, best);
                }
            }
            Inst::Match => {
                // Record longest match seen (any thread reaching Match).
                if best.map(|b| pos > b).unwrap_or(true) {
                    *best = Some(pos);
                }
                list.push(pc);
            }
            Inst::Class(_) => list.push(pc),
        }
    }

    let tail = &text[start..];
    let pos = start;
    let at_input_start = start == 0;
    add(
        insts,
        &mut clist,
        &mut on_clist,
        0,
        at_input_start,
        tail.is_empty(),
        pos,
        &mut best,
    );

    let mut chars = tail.char_indices().peekable();
    while let Some((off, c)) = chars.next() {
        if clist.is_empty() {
            break;
        }
        let next_pos = start + off + c.len_utf8();
        let next_is_end = chars.peek().is_none();
        nlist.clear();
        on_nlist.iter_mut().for_each(|b| *b = false);
        for &pc in &clist {
            if let Inst::Class(ref cls) = insts[pc] {
                if cls.matches(c) {
                    add(
                        insts,
                        &mut nlist,
                        &mut on_nlist,
                        pc + 1,
                        false,
                        next_is_end,
                        next_pos,
                        &mut best,
                    );
                }
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
        std::mem::swap(&mut on_clist, &mut on_nlist);
    }
    best
}

/// Finds the leftmost match starting at or after `from`; returns byte range.
pub fn find_from(prog: &Program, text: &str, from: usize) -> Option<(usize, usize)> {
    let mut start = from;
    loop {
        if let Some(end) = match_at(prog, text, start) {
            return Some((start, end));
        }
        if prog.anchored_start && start > 0 {
            return None;
        }
        if start >= text.len() {
            return None;
        }
        // advance one char
        start += text[start..].chars().next().map(char::len_utf8).unwrap_or(1);
        if prog.anchored_start {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parse::parse;

    fn p(pat: &str) -> Program {
        compile(&parse(pat).unwrap())
    }

    #[test]
    fn exact_literal() {
        let prog = p("abc");
        assert_eq!(match_at(&prog, "abcdef", 0), Some(3));
        assert_eq!(match_at(&prog, "abX", 0), None);
    }

    #[test]
    fn greedy_star_longest() {
        let prog = p("a*");
        assert_eq!(match_at(&prog, "aaab", 0), Some(3));
        assert_eq!(match_at(&prog, "b", 0), Some(0)); // empty match
    }

    #[test]
    fn alternation_longest_wins() {
        let prog = p("a|ab");
        // Pike VM with longest-tracking reports the longer alternative.
        assert_eq!(match_at(&prog, "ab", 0), Some(2));
    }

    #[test]
    fn anchors() {
        let prog = p("^ab$");
        assert_eq!(match_at(&prog, "ab", 0), Some(2));
        assert_eq!(match_at(&prog, "abc", 0), None);
        assert_eq!(find_from(&p("c$"), "abc", 0), Some((2, 3)));
    }

    #[test]
    fn find_scans_forward() {
        let prog = p("\\d+");
        assert_eq!(find_from(&prog, "abc 123 x", 0), Some((4, 7)));
        assert_eq!(find_from(&prog, "abc 123 x", 7), None);
    }

    #[test]
    fn anchored_find_only_at_zero() {
        let prog = p("^x");
        assert_eq!(find_from(&prog, "yx", 0), None);
        assert_eq!(find_from(&prog, "xy", 0), Some((0, 1)));
    }

    #[test]
    fn unicode_safe() {
        let prog = p("é+");
        let text = "caéé!";
        let (s, e) = find_from(&prog, text, 0).unwrap();
        assert_eq!(&text[s..e], "éé");
    }

    #[test]
    fn paper_year_pattern() {
        let prog = p("0\\d|19\\d\\d|20\\d\\d");
        assert_eq!(find_from(&prog, "SIGMOD 2005", 0), Some((7, 11)));
        assert_eq!(find_from(&prog, "ICDE 05", 0), Some((5, 7)));
    }
}
