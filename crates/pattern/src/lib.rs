//! # iflex-pattern
//!
//! A small, from-scratch regular-expression engine ("regex-lite") used by
//! iFlex text features (`starts-with`, `ends-with`, pattern constraints)
//! and by the precise-Xlog baseline extractors. The offline crate set has
//! no `regex`, and the paper's features only need a modest subset:
//! literals, classes (`[a-z]`, `\d`, `\w`, `\s`), `.`, anchors, grouping,
//! alternation, and `* + ? {m,n}` repetition.
//!
//! Matching is a Pike VM (Thompson NFA simulation): linear in
//! `pattern × text`, no catastrophic backtracking, longest match reported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod parse;
pub mod vm;

pub use ast::PatternError;

use compile::Program;

/// A compiled pattern, ready for repeated matching.
#[derive(Debug, Clone)]
pub struct Pattern {
    source: String,
    prog: Program,
}

/// A match: byte offsets into the searched text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// The start.
    pub start: usize,
    /// The end.
    pub end: usize,
}

impl Pattern {
    /// Compiles `pattern`, or reports a [`PatternError`].
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        let ast = parse::parse(pattern)?;
        Ok(Pattern {
            source: pattern.to_string(),
            prog: compile::compile(&ast),
        })
    }

    /// The original pattern source.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// True when the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        vm::find_from(&self.prog, text, 0).is_some()
    }

    /// True when the pattern matches the *entire* `text`.
    pub fn matches_full(&self, text: &str) -> bool {
        vm::match_at(&self.prog, text, 0) == Some(text.len())
    }

    /// True when some match begins at byte 0.
    pub fn matches_prefix(&self, text: &str) -> bool {
        vm::match_at(&self.prog, text, 0).is_some()
    }

    /// True when some match ends exactly at the end of `text`.
    pub fn matches_suffix(&self, text: &str) -> bool {
        self.find_iter(text).any(|m| m.end == text.len())
    }

    /// Leftmost match, if any.
    pub fn find(&self, text: &str) -> Option<Match> {
        vm::find_from(&self.prog, text, 0).map(|(start, end)| Match { start, end })
    }

    /// Leftmost match starting at or after `from`.
    pub fn find_at(&self, text: &str, from: usize) -> Option<Match> {
        vm::find_from(&self.prog, text, from).map(|(start, end)| Match { start, end })
    }

    /// Iterator over non-overlapping matches, left to right.
    pub fn find_iter<'p, 't>(&'p self, text: &'t str) -> Matches<'p, 't> {
        Matches {
            pattern: self,
            text,
            next_start: 0,
            done: false,
        }
    }
}

/// Iterator returned by [`Pattern::find_iter`].
pub struct Matches<'p, 't> {
    pattern: &'p Pattern,
    text: &'t str,
    next_start: usize,
    done: bool,
}

impl Iterator for Matches<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.done {
            return None;
        }
        let m = self.pattern.find_at(self.text, self.next_start)?;
        if m.end == m.start {
            // Empty match: step forward one char to guarantee progress.
            let step = self.text[m.end..]
                .chars()
                .next()
                .map(char::len_utf8)
                .unwrap_or(0);
            if step == 0 {
                self.done = true;
            }
            self.next_start = m.end + step;
        } else {
            self.next_start = m.end;
        }
        if self.pattern.prog.anchored_start {
            self.done = true;
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_partial_match() {
        let p = Pattern::new("[A-Z][A-Z]+").unwrap();
        assert!(p.matches_full("SIGMOD"));
        assert!(!p.matches_full("SIGMOD 2005"));
        assert!(p.is_match("see SIGMOD 2005"));
    }

    #[test]
    fn prefix_suffix() {
        let starts = Pattern::new("[A-Z][A-Z]+").unwrap();
        assert!(starts.matches_prefix("VLDB Conference"));
        assert!(!starts.matches_prefix("the VLDB"));
        let ends = Pattern::new("0\\d|19\\d\\d|20\\d\\d").unwrap();
        assert!(ends.matches_suffix("SIGMOD 2005"));
        assert!(ends.matches_suffix("ICDE 05"));
        assert!(!ends.matches_suffix("SIGMOD 2005 papers"));
    }

    #[test]
    fn find_iter_nonoverlapping() {
        let p = Pattern::new("\\d+").unwrap();
        let ms: Vec<_> = p
            .find_iter("a1 b22 c333")
            .map(|m| ("a1 b22 c333"[m.start..m.end]).to_string())
            .collect();
        assert_eq!(ms, vec!["1", "22", "333"]);
    }

    #[test]
    fn empty_match_progress() {
        let p = Pattern::new("x*").unwrap();
        // Must terminate despite empty matches.
        let count = p.find_iter("aaa").count();
        assert!(count >= 3);
    }

    #[test]
    fn price_like_pattern() {
        let p = Pattern::new("\\$\\d+(\\.\\d\\d)?").unwrap();
        let text = "List: $104.99 New: $89";
        let ms: Vec<_> = p.find_iter(text).map(|m| &text[m.start..m.end]).collect();
        assert_eq!(ms, vec!["$104.99", "$89"]);
    }

    #[test]
    fn error_display() {
        let e = Pattern::new("(a").unwrap_err();
        assert!(e.to_string().contains("pattern error"));
    }
}
