//! Recursive-descent parser for regex-lite patterns.
//!
//! Grammar (in precedence order):
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')?
//! atom   := '(' alt ')' | '[' class ']' | '.' | '^' | '$' | escape | literal
//! ```

use crate::ast::{Ast, CharClass, PatternError};

/// Parse.
pub fn parse(pattern: &str) -> Result<Ast, PatternError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let ast = p.alt()?;
    if p.pos < p.chars.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> PatternError {
        PatternError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alt(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.number()?;
                let max = if self.eat(',') {
                    if self.peek() == Some('}') {
                        None
                    } else {
                        Some(self.number()?)
                    }
                } else {
                    Some(min)
                };
                if !self.eat('}') {
                    return Err(self.err("expected '}'"));
                }
                if let Some(m) = max {
                    if m < min {
                        return Err(self.err("repeat max < min"));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(self.err("cannot repeat an anchor"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn number(&mut self) -> Result<u32, PatternError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse()
            .map_err(|_| self.err("repeat count out of range"))
    }

    fn atom(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('(') => {
                let inner = self.alt()?;
                if !self.eat(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::Class(CharClass::dot())),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => self.escape(),
            Some(c) if c == '*' || c == '+' || c == '?' => {
                Err(self.err("dangling repetition operator"))
            }
            Some(c) => Ok(Ast::Class(CharClass::single(c))),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('d') => Ok(Ast::Class(CharClass::digit())),
            Some('D') => Ok(Ast::Class(CharClass::digit().negate())),
            Some('w') => Ok(Ast::Class(CharClass::word())),
            Some('W') => Ok(Ast::Class(CharClass::word().negate())),
            Some('s') => Ok(Ast::Class(CharClass::space())),
            Some('S') => Ok(Ast::Class(CharClass::space().negate())),
            Some('n') => Ok(Ast::Class(CharClass::single('\n'))),
            Some('t') => Ok(Ast::Class(CharClass::single('\t'))),
            Some('r') => Ok(Ast::Class(CharClass::single('\r'))),
            Some(c) if !c.is_ascii_alphanumeric() => Ok(Ast::Class(CharClass::single(c))),
            Some(_) => Err(self.err("unknown escape")),
            None => Err(self.err("dangling backslash")),
        }
    }

    fn class(&mut self) -> Result<Ast, PatternError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        // ']' as first char is a literal.
        if self.peek() == Some(']') {
            self.bump();
            ranges.push((']', ']'));
        }
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    match self.bump() {
                        Some('d') => ranges.extend(CharClass::digit().ranges),
                        Some('w') => ranges.extend(CharClass::word().ranges),
                        Some('s') => ranges.extend(CharClass::space().ranges),
                        Some('n') => ranges.push(('\n', '\n')),
                        Some('t') => ranges.push(('\t', '\t')),
                        Some(c) if !c.is_ascii_alphanumeric() => ranges.push((c, c)),
                        _ => return Err(self.err("unknown escape in class")),
                    }
                }
                Some(lo) => {
                    self.bump();
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied() != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // '-'
                        let hi = self.bump().unwrap();
                        if hi < lo {
                            return Err(self.err("invalid range in class"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        if ranges.is_empty() {
            return Err(self.err("empty character class"));
        }
        let mut class = CharClass { negated, ranges };
        class.normalize();
        Ok(Ast::Class(class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_concat() {
        let ast = parse("ab").unwrap();
        assert!(matches!(ast, Ast::Concat(ref v) if v.len() == 2));
    }

    #[test]
    fn alternation() {
        let ast = parse("a|b|c").unwrap();
        assert!(matches!(ast, Ast::Alt(ref v) if v.len() == 3));
    }

    #[test]
    fn repeats() {
        assert!(matches!(
            parse("a*").unwrap(),
            Ast::Repeat { min: 0, max: None, .. }
        ));
        assert!(matches!(
            parse("a+").unwrap(),
            Ast::Repeat { min: 1, max: None, .. }
        ));
        assert!(matches!(
            parse("a?").unwrap(),
            Ast::Repeat {
                min: 0,
                max: Some(1),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3,}").unwrap(),
            Ast::Repeat { min: 3, max: None, .. }
        ));
        assert!(matches!(
            parse("a{4}").unwrap(),
            Ast::Repeat {
                min: 4,
                max: Some(4),
                ..
            }
        ));
    }

    #[test]
    fn classes() {
        let ast = parse("[a-z0-9_]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.matches('m'));
                assert!(c.matches('5'));
                assert!(c.matches('_'));
                assert!(!c.matches('-'));
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn negated_class() {
        match parse("[^0-9]").unwrap() {
            Ast::Class(c) => {
                assert!(c.matches('a'));
                assert!(!c.matches('3'));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn groups_and_anchors() {
        assert!(parse("^(ab|cd)+$").is_ok());
        assert!(parse("(ab").is_err());
        assert!(parse("ab)").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse("*a").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("[").is_err());
        assert!(parse("\\q").is_err());
        assert!(parse("a\\").is_err());
        assert!(parse("^*").is_err());
    }

    #[test]
    fn paper_patterns_parse() {
        // The two patterns from the DBLife experiments (§6.3).
        assert!(parse("[A-Z][A-Z]+").is_ok());
        assert!(parse("0\\d|19\\d\\d|20\\d\\d").is_ok());
    }

    #[test]
    fn class_leading_bracket_literal() {
        match parse("[]a]").unwrap() {
            Ast::Class(c) => {
                assert!(c.matches(']'));
                assert!(c.matches('a'));
            }
            _ => panic!(),
        }
    }
}
