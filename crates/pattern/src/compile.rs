//! Compilation of the regex-lite AST into a Thompson NFA program executed
//! by the Pike VM in [`crate::vm`].

use crate::ast::{Ast, CharClass};

/// One NFA instruction. `Split` branches prefer `a` (greedy order).
#[derive(Debug, Clone)]
pub enum Inst {
    /// Consume one char matching the class.
    Class(CharClass),
    /// Fork execution: try `a` first, then `b`.
    Split {
        /// Preferred (greedy) branch target.
        a: usize,
        /// Fallback branch target.
        b: usize,
    },
    /// Unconditional jump.
    Jmp(usize),
    /// Assert beginning of input.
    AssertStart,
    /// Assert end of input.
    AssertEnd,
    /// Accept.
    Match,
}

/// A compiled program: instruction list with entry point 0.
#[derive(Debug, Clone)]
pub struct Program {
    /// The insts.
    pub insts: Vec<Inst>,
    /// True when the pattern starts with `^`.
    pub anchored_start: bool,
}

/// Compile.
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.emit_ast(ast);
    c.insts.push(Inst::Match);
    let anchored_start = leading_anchor(ast);
    Program {
        insts: c.insts,
        anchored_start,
    }
}

fn leading_anchor(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorStart => true,
        Ast::Group(inner) => leading_anchor(inner),
        Ast::Concat(parts) => parts.first().map(leading_anchor).unwrap_or(false),
        Ast::Alt(branches) => branches.iter().all(leading_anchor),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn emit_ast(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Class(c) => self.insts.push(Inst::Class(c.clone())),
            Ast::Group(inner) => self.emit_ast(inner),
            Ast::AnchorStart => self.insts.push(Inst::AssertStart),
            Ast::AnchorEnd => self.insts.push(Inst::AssertEnd),
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit_ast(p);
                }
            }
            Ast::Alt(branches) => self.emit_alt(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alt(&mut self, branches: &[Ast]) {
        // Chain of splits; each branch jumps to the common end.
        let mut jmp_slots = Vec::new();
        let n = branches.len();
        for (i, b) in branches.iter().enumerate() {
            if i + 1 < n {
                let split_at = self.insts.len();
                self.insts.push(Inst::Split { a: 0, b: 0 }); // patched
                let a = self.insts.len();
                self.emit_ast(b);
                let jmp_at = self.insts.len();
                self.insts.push(Inst::Jmp(0)); // patched
                jmp_slots.push(jmp_at);
                let bpos = self.insts.len();
                if let Inst::Split {
                    a: ref mut sa,
                    b: ref mut sb,
                } = self.insts[split_at]
                {
                    *sa = a;
                    *sb = bpos;
                }
            } else {
                self.emit_ast(b);
            }
        }
        let end = self.insts.len();
        for slot in jmp_slots {
            if let Inst::Jmp(ref mut t) = self.insts[slot] {
                *t = end;
            }
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Mandatory prefix.
        for _ in 0..min {
            self.emit_ast(node);
        }
        match max {
            None => {
                // node* : L: split(body, end); body; jmp L
                let l = self.insts.len();
                self.insts.push(Inst::Split { a: 0, b: 0 });
                let body = self.insts.len();
                self.emit_ast(node);
                self.insts.push(Inst::Jmp(l));
                let end = self.insts.len();
                if let Inst::Split {
                    a: ref mut sa,
                    b: ref mut sb,
                } = self.insts[l]
                {
                    *sa = body;
                    *sb = end;
                }
            }
            Some(m) => {
                // (m - min) optional copies: split(body, end) each.
                let mut splits = Vec::new();
                for _ in 0..(m - min) {
                    let s = self.insts.len();
                    self.insts.push(Inst::Split { a: 0, b: 0 });
                    let body = self.insts.len();
                    if let Inst::Split { a: ref mut sa, .. } = self.insts[s] {
                        *sa = body;
                    }
                    splits.push(s);
                    self.emit_ast(node);
                }
                let end = self.insts.len();
                for s in splits {
                    if let Inst::Split { b: ref mut sb, .. } = self.insts[s] {
                        *sb = end;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap())
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        assert_eq!(p.insts.len(), 3); // Class, Class, Match
        assert!(matches!(p.insts[2], Inst::Match));
    }

    #[test]
    fn star_has_loop() {
        let p = prog("a*");
        // Split, Class, Jmp, Match
        assert_eq!(p.insts.len(), 4);
        assert!(matches!(p.insts[0], Inst::Split { .. }));
        assert!(matches!(p.insts[2], Inst::Jmp(0)));
    }

    #[test]
    fn anchored_detection() {
        assert!(prog("^abc").anchored_start);
        assert!(prog("^a|^b").anchored_start);
        assert!(!prog("a|^b").anchored_start);
        assert!(!prog("abc").anchored_start);
    }

    #[test]
    fn bounded_repeat_expands() {
        let p = prog("a{2,4}");
        // 2 mandatory Class + 2 (Split+Class) + Match = 2 + 4 + 1
        assert_eq!(p.insts.len(), 7);
    }
}
