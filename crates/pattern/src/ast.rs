//! Syntax tree for regex-lite patterns.

use std::fmt;

/// A character class: set of ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// The negated.
    pub negated: bool,
    /// Inclusive char ranges, kept sorted and non-overlapping after `normalize`.
    pub ranges: Vec<(char, char)>,
}

impl CharClass {
    /// Single.
    pub fn single(c: char) -> Self {
        CharClass {
            negated: false,
            ranges: vec![(c, c)],
        }
    }

    /// `\d`
    pub fn digit() -> Self {
        CharClass {
            negated: false,
            ranges: vec![('0', '9')],
        }
    }

    /// `\w`
    pub fn word() -> Self {
        CharClass {
            negated: false,
            ranges: vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')],
        }
    }

    /// `\s`
    pub fn space() -> Self {
        CharClass {
            negated: false,
            ranges: vec![('\t', '\r'), (' ', ' ')],
        }
    }

    /// `.` — any char except newline.
    pub fn dot() -> Self {
        CharClass {
            negated: true,
            ranges: vec![('\n', '\n')],
        }
    }

    /// Negate.
    pub fn negate(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// Sorts and merges overlapping ranges.
    pub fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some((_, mhi)) if (lo as u32) <= (*mhi as u32).saturating_add(1) => {
                    if hi > *mhi {
                        *mhi = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }

    /// Membership test honoring negation.
    #[inline]
    pub fn matches(&self, c: char) -> bool {
        let inside = self
            .ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok();
        inside != self.negated
    }
}

/// Regex-lite AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// One character from a class.
    Class(CharClass),
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// `node{min, max}`; `max == None` means unbounded.
    Repeat {
        /// The repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
    },
    /// `(...)` — grouping only (no captures needed by iFlex features).
    Group(Box<Ast>),
    /// `^`
    AnchorStart,
    /// `$`
    AnchorEnd,
}

/// Error produced when parsing a pattern fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// The pos.
    pub pos: usize,
    /// The message.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_membership() {
        let d = CharClass::digit();
        assert!(d.matches('5'));
        assert!(!d.matches('a'));
        let nd = CharClass::digit().negate();
        assert!(!nd.matches('5'));
        assert!(nd.matches('a'));
    }

    #[test]
    fn normalize_merges_adjacent() {
        let mut c = CharClass {
            negated: false,
            ranges: vec![('a', 'c'), ('b', 'f'), ('h', 'h'), ('g', 'g')],
        };
        c.normalize();
        assert_eq!(c.ranges, vec![('a', 'h')]);
    }

    #[test]
    fn dot_excludes_newline() {
        let dot = CharClass::dot();
        assert!(dot.matches('x'));
        assert!(!dot.matches('\n'));
    }

    #[test]
    fn word_class_contents() {
        let w = CharClass::word();
        for c in ['a', 'Z', '0', '_'] {
            assert!(w.matches(c), "{c}");
        }
        for c in [' ', '-', '.'] {
            assert!(!w.matches(c), "{c}");
        }
    }
}
