//! The DBLife domain (§6.3): a heterogeneous snapshot of database-community
//! Web pages — conference homepages (with panel and organization
//! sections), project pages, person homepages, and mailing-list posts
//! (pure noise for the three extraction tasks).
//!
//! Page layouts:
//! * Conference: `<title>CONF YEAR Conference</title>` +
//!   `<h2>Call for Papers</h2> …` + `<h2>Panel Sessions</h2> NAME (AFFIL), …`
//!   + `<h2>Organization</h2> PC Chair: NAME … General Chair: NAME …`
//! * Project: `<title>NAME Project</title>` + `<h2>Members</h2> NAME, …`
//! * Person / mailing list: noise.

use crate::words;
use iflex_text::{DocId, DocumentStore};

/// Ground truth for the three DBLife tasks.
#[derive(Debug, Clone, Default)]
pub struct DbLife {
    /// All page ids (the `docs` table).
    pub docs: Vec<DocId>,
    /// `(panelist, conference-title)` pairs.
    pub panels: Vec<(String, String)>,
    /// `(person, project)` pairs.
    pub projects: Vec<(String, String)>,
    /// `(chair person, chair type, conference-title)` triples.
    pub chairs: Vec<(String, String, String)>,
}

fn conf_title(i: usize) -> String {
    format!("{} {}", words::conference(i), 1998 + i % 10)
}

/// Builds the DBLife snapshot: `n_conf` conference pages, `n_proj`
/// project pages, and `n_noise` noise pages.
pub fn build(store: &mut DocumentStore, n_conf: usize, n_proj: usize, n_noise: usize) -> DbLife {
    let mut out = DbLife::default();
    for i in 0..n_conf {
        let title = conf_title(i);
        let n_panelists = 2 + i % 3;
        let panelists: Vec<String> = (0..n_panelists)
            .map(|k| words::person(i * 17 + k * 311 + 29))
            .collect();
        let pc_chair = words::person(i * 13 + 401);
        let general_chair = words::person(i * 19 + 613);
        let panel_list = panelists
            .iter()
            .enumerate()
            .map(|(k, p)| format!("{p} (University {})", k + 1))
            .collect::<Vec<_>>()
            .join(", ");
        let markup = format!(
            "<title>{title} Conference</title>\n\
             <h2>Call for Papers</h2>\nWe invite submissions on all database topics. \
             Deadline {d1} March. Notification {d2} June.\n\
             <h2>Panel Sessions</h2>\nPanel on the future of data management: {panel_list}.\n\
             <h2>Organization</h2>\nPC Chair: {pc_chair}. General Chair: {general_chair}. \
             Local arrangements by volunteers.\n\
             <h2>Venue</h2>\nThe conference is held downtown, near hall {h}.",
            d1 = i % 27 + 1,
            d2 = i % 25 + 2,
            h = i % 9 + 1,
        );
        let id = store.add_markup(&markup);
        out.docs.push(id);
        for p in &panelists {
            out.panels.push((p.clone(), title.clone()));
        }
        out.chairs
            .push((pc_chair.clone(), "PC".to_string(), title.clone()));
        out.chairs
            .push((general_chair.clone(), "General".to_string(), title.clone()));
    }
    for i in 0..n_proj {
        let name = format!("{} Project", words::project_name(i));
        let members: Vec<String> = (0..2 + i % 3)
            .map(|k| words::person(i * 23 + k * 157 + 71))
            .collect();
        let markup = format!(
            "<title>{name}</title>\n\
             <h2>Overview</h2>\nA research system exploring new data models. Started {y}.\n\
             <h2>Members</h2>\n{members}.\n\
             <h2>Publications</h2>\nSee our papers at major venues.",
            y = 1999 + i % 8,
            members = members.join(", "),
        );
        let id = store.add_markup(&markup);
        out.docs.push(id);
        for m in &members {
            out.projects.push((m.clone(), name.clone()));
        }
    }
    for i in 0..n_noise {
        let markup = match i % 3 {
            0 => format!(
                "<title>Homepage of {}</title>\nI am an associate professor interested in \
                 query processing and storage systems. Office hours {} pm.",
                words::person(i * 7 + 3),
                i % 5 + 1
            ),
            1 => format!(
                "<title>DBWorld post {}</title>\nCall for participation: workshop on data \
                 quality. Registration fee {} dollars.",
                i,
                100 + i % 300
            ),
            _ => format!(
                "<title>Course CS{}</title>\nIntroduction to database systems. Lecture room \
                 {}. Homework due weekly.",
                400 + i % 100,
                i % 30 + 1
            ),
        };
        let id = store.add_markup(&markup);
        out.docs.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_line_up() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 10, 5, 20);
        assert_eq!(d.docs.len(), 35);
        assert_eq!(d.chairs.len(), 20);
        assert!(d.panels.len() >= 20);
        assert!(d.projects.len() >= 10);
    }

    #[test]
    fn conference_pages_have_sections() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 1, 0, 0);
        let doc = store.doc(d.docs[0]);
        assert!(doc.title_range().is_some());
        let labels: Vec<&str> = doc
            .labels()
            .iter()
            .map(|l| &doc.text()[l.start as usize..l.end as usize])
            .collect();
        assert!(labels.iter().any(|l| l.contains("Panel")));
        assert!(labels.iter().any(|l| l.contains("Organization")));
    }

    #[test]
    fn panelists_appear_after_panel_label() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 1, 0, 0);
        let doc = store.doc(d.docs[0]);
        let text = doc.text();
        let panel_pos = text.find("Panel Sessions").unwrap();
        let (p, _) = &d.panels[0];
        let p_pos = text.find(p.as_str()).unwrap();
        assert!(p_pos > panel_pos);
    }

    #[test]
    fn chair_labels() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 2, 0, 0);
        for id in &d.docs {
            let text = store.doc(*id).text().to_string();
            assert!(text.contains("PC Chair:"));
            assert!(text.contains("General Chair:"));
        }
    }
}
