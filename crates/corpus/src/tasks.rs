//! The paper's IE tasks (Table 2: T1–T9) and the three DBLife tasks
//! (Table 6), as runnable [`Task`]s: initial Alog program, extensional
//! tables, a ground-truth oracle for the simulated developer, and the
//! correct result.

use crate::Corpus;
use iflex::engine::Engine;
use iflex::prelude::{parse_program, Program};
use iflex::{norm_text, OracleSpec, Truth};
use iflex_ctable::Value;
use iflex::engine::similarity::norm_tokens;
use iflex_features::{FeatureArg, FeatureValue};
use iflex_text::DocId;

/// Task identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskId {
    /// IMDB movies with fewer than 25 000 votes.
    T1,
    /// Ebert movies made between 1950 and 1970.
    T2,
    /// Titles in all three movie lists.
    T3,
    /// Garcia-Molina journal publications.
    T4,
    /// VLDB publications of 5 or fewer pages.
    T5,
    /// SIGMOD/ICDE publications sharing authors.
    T6,
    /// Barnes & Noble books over $100.
    T7,
    /// Amazon books with list == new and used < new.
    T8,
    /// Books cheaper at Amazon than at Barnes & Noble.
    T9,
    /// DBLife: panelists at conferences.
    Panel,
    /// DBLife: people and their projects.
    Project,
    /// DBLife: conference chairs and their types.
    Chair,
}

impl TaskId {
    /// The nine Table-2 tasks.
    pub const TABLE2: [TaskId; 9] = [
        TaskId::T1,
        TaskId::T2,
        TaskId::T3,
        TaskId::T4,
        TaskId::T5,
        TaskId::T6,
        TaskId::T7,
        TaskId::T8,
        TaskId::T9,
    ];

    /// The three DBLife tasks (Table 6).
    pub const DBLIFE: [TaskId; 3] = [TaskId::Panel, TaskId::Project, TaskId::Chair];

    /// The name.
    pub fn name(self) -> &'static str {
        match self {
            TaskId::T1 => "T1",
            TaskId::T2 => "T2",
            TaskId::T3 => "T3",
            TaskId::T4 => "T4",
            TaskId::T5 => "T5",
            TaskId::T6 => "T6",
            TaskId::T7 => "T7",
            TaskId::T8 => "T8",
            TaskId::T9 => "T9",
            TaskId::Panel => "Panel",
            TaskId::Project => "Project",
            TaskId::Chair => "Chair",
        }
    }

    /// Domain.
    pub fn domain(self) -> &'static str {
        match self {
            TaskId::T1 | TaskId::T2 | TaskId::T3 => "Movies",
            TaskId::T4 | TaskId::T5 | TaskId::T6 => "DBLP",
            TaskId::T7 | TaskId::T8 | TaskId::T9 => "Books",
            _ => "DBLife",
        }
    }

    /// Description.
    pub fn description(self) -> &'static str {
        match self {
            TaskId::T1 => "IMDB top movies with fewer than 25,000 votes",
            TaskId::T2 => "Ebert top movies made between 1950 and 1970",
            TaskId::T3 => "Movie titles that occur in IMDB, Ebert, and Prasanna's top movies",
            TaskId::T4 => "Garcia-Molina journal pubs",
            TaskId::T5 => "VLDB short publications of 5 or fewer pages",
            TaskId::T6 => "SIGMOD/ICDE pubs sharing authors",
            TaskId::T7 => "B&N books with price over $100",
            TaskId::T8 => "Amazon books whose list price equals the new price and used price is less than the new price",
            TaskId::T9 => "Books that are cheaper at Amazon than at Barnes",
            TaskId::Panel => "Find (x,y) where person x is a panelist at conference y",
            TaskId::Project => "Find (x,y) where person x works on project y",
            TaskId::Chair => "Find (x,y,z) where person x is a chair of type z at conference y",
        }
    }
}

/// A fully-specified runnable task.
pub struct Task {
    /// The id.
    pub id: TaskId,
    /// The initial approximate Alog program.
    pub program: Program,
    /// Extensional doc tables (name, record documents).
    pub tables: Vec<(String, Vec<DocId>)>,
    /// Ground-truth feature knowledge for the simulated developer.
    pub oracle: OracleSpec,
    /// The correct result (normalized rows).
    pub truth: Truth,
    /// Result columns corresponding to truth columns, in order.
    pub truth_cols: Vec<usize>,
    /// True when the task needs the `extractType` cleanup procedure.
    pub needs_type_cleanup: bool,
}

impl Task {
    /// Builds an engine with this task's tables registered.
    pub fn engine(&self, corpus: &Corpus) -> Engine {
        let mut eng = Engine::new(corpus.store.clone());
        for (name, ids) in &self.tables {
            eng.add_doc_table(name, ids);
        }
        if self.needs_type_cleanup {
            register_type_cleanup(&mut eng);
        }
        eng
    }
}

/// Registers the Chair task's cleanup p-predicate `extractType(#x, z)`
/// (§2.2.4): looks at the text immediately before the person span and
/// returns the chair type when the span is labeled `"<Type> Chair:"`.
pub fn register_type_cleanup(engine: &mut Engine) {
    engine
        .procs_mut()
        .register_generator("extractType", 1, |store, args| {
            let Some(Value::Span(s)) = args.first() else {
                return vec![];
            };
            let text = store.doc(s.doc).text();
            let before = text[..s.start as usize].trim_end();
            for ty in ["PC", "General", "Program", "Demo"] {
                if before.ends_with(&format!("{ty} Chair:")) {
                    return vec![vec![Value::Str(ty.to_string())]];
                }
            }
            vec![]
        });
}

/// Scenario subsetting (Table 3's "Num Tuples per Table" column): the
/// paper sampled input pages randomly; an evenly-spread stride keeps
/// cross-list title overlaps proportional and stays deterministic.
/// Precomputed token sets for fast pairwise `approx_match` over whole
/// lists (the truth computations are O(n·m) pairs).
fn token_sets<'a, T>(items: &'a [(DocId, T)], f: impl Fn(&'a T) -> &'a str) -> Vec<std::collections::BTreeSet<String>> {
    items.iter().map(|(_, r)| norm_tokens(f(r))).collect()
}

fn sets_match(a: &std::collections::BTreeSet<String>, b: &std::collections::BTreeSet<String>) -> bool {
    let smaller = a.len().min(b.len());
    if smaller == 0 {
        return false;
    }
    let inter = a.intersection(b).count();
    inter as f64 / smaller as f64 >= 0.8
}

fn take<T: Clone>(items: &[(DocId, T)], n: Option<usize>) -> Vec<(DocId, T)> {
    match n {
        Some(n) if n < items.len() => (0..n)
            .map(|k| items[k * items.len() / n].clone())
            .collect(),
        _ => items.to_vec(),
    }
}

fn ids<T>(items: &[(DocId, T)]) -> Vec<DocId> {
    items.iter().map(|(id, _)| *id).collect()
}

fn tri(v: FeatureValue) -> FeatureArg {
    FeatureArg::Tri(v)
}

fn text(s: &str) -> FeatureArg {
    FeatureArg::Text(s.to_string())
}

/// Adds truthful "style absent" answers for an attribute: the developer
/// can always answer appearance questions after visual inspection (§5.1.1).
fn deny_styles(mut oracle: OracleSpec, attr: &str, except: &[&str]) -> OracleSpec {
    for f in [
        "bold-font",
        "italic-font",
        "underlined",
        "hyperlinked",
        "in-title",
        "in-list",
        "numeric",
    ] {
        if !except.contains(&f) {
            oracle = oracle.knows(attr, f, tri(FeatureValue::No));
        }
    }
    oracle
}

impl Corpus {
    /// Builds a task over the first `n` records per table (`None` = all).
    pub fn task(&self, id: TaskId, n: Option<usize>) -> Task {
        match id {
            TaskId::T1 => self.t1(n),
            TaskId::T2 => self.t2(n),
            TaskId::T3 => self.t3(n),
            TaskId::T4 => self.t4(n),
            TaskId::T5 => self.t5(n),
            TaskId::T6 => self.t6(n),
            TaskId::T7 => self.t7(n),
            TaskId::T8 => self.t8(n),
            TaskId::T9 => self.t9(n),
            TaskId::Panel => self.panel(),
            TaskId::Project => self.project(),
            TaskId::Chair => self.chair(),
        }
    }

    fn t1(&self, n: Option<usize>) -> Task {
        let recs = take(&self.movies.imdb, n);
        let program = parse_program(
            r#"
            t1(title) :- imdb(x), extractIMDB(#x, title, votes), votes < 25000.
            extractIMDB(#x, title, votes) :- from(#x, title), from(#x, votes),
                bold-font(title) = distinct-yes, numeric(votes) = yes.
        "#,
        )
        .expect("T1 program");
        let oracle = OracleSpec::new()
            .knows("extractIMDB.title", "followed-by", text("("))
            .knows("extractIMDB.title", "capitalized", tri(FeatureValue::Yes))
            .knows("extractIMDB.votes", "underlined", tri(FeatureValue::DistinctYes))
            .knows("extractIMDB.votes", "preceded-by", text("votes"))
            .knows("extractIMDB.votes", "max-value", FeatureArg::Num(500000.0))
            .knows("extractIMDB.votes", "min-value", FeatureArg::Num(1000.0));
        let oracle = deny_styles(oracle, "extractIMDB.votes", &["underlined", "numeric"]);
        let truth = recs
            .iter()
            .filter(|(_, r)| r.votes < 25_000)
            .map(|(_, r)| vec![norm_text(&r.title)])
            .collect();
        Task {
            id: TaskId::T1,
            program,
            tables: vec![("imdb".into(), ids(&recs))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t2(&self, n: Option<usize>) -> Task {
        let recs = take(&self.movies.ebert, n);
        let program = parse_program(
            r#"
            t2(title) :- ebert(x), extractEbert(#x, title, year), 1950 <= year, year < 1970.
            extractEbert(#x, title, year) :- from(#x, title), from(#x, year),
                italic-font(title) = distinct-yes, numeric(year) = yes.
        "#,
        )
        .expect("T2 program");
        let oracle = OracleSpec::new()
            .knows("extractEbert.title", "followed-by", text("released"))
            .knows("extractEbert.title", "capitalized", tri(FeatureValue::Yes))
            .knows("extractEbert.year", "underlined", tri(FeatureValue::DistinctYes))
            .knows("extractEbert.year", "preceded-by", text("released"))
            .knows("extractEbert.year", "max-value", FeatureArg::Num(2010.0))
            .knows("extractEbert.year", "min-value", FeatureArg::Num(1900.0));
        let oracle = deny_styles(oracle, "extractEbert.year", &["numeric", "underlined"]);
        let truth = recs
            .iter()
            .filter(|(_, r)| (1950..1970).contains(&r.year))
            .map(|(_, r)| vec![norm_text(&r.title)])
            .collect();
        Task {
            id: TaskId::T2,
            program,
            tables: vec![("ebert".into(), ids(&recs))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t3(&self, n: Option<usize>) -> Task {
        let imdb = take(&self.movies.imdb, n);
        let ebert = take(&self.movies.ebert, n);
        let pras = take(&self.movies.prasanna, n.map(|k| k * 2)); // paper: 242-517
        let program = parse_program(
            r#"
            t3(title1) :- imdb(x), extractIMDBt(#x, title1),
                          ebert(y), extractEbertT(#y, title2),
                          prasanna(z), extractPrasT(#z, title3),
                          similar(#title1, #title2), similar(#title2, #title3).
            extractIMDBt(#x, t) :- from(#x, t).
            extractEbertT(#y, t) :- from(#y, t).
            extractPrasT(#z, t) :- from(#z, t).
        "#,
        )
        .expect("T3 program");
        let oracle = OracleSpec::new()
            .knows("extractIMDBt.t", "bold-font", tri(FeatureValue::DistinctYes))
            .knows("extractIMDBt.t", "followed-by", text("("))
            .knows("extractIMDBt.t", "capitalized", tri(FeatureValue::Yes))
            .knows("extractEbertT.t", "italic-font", tri(FeatureValue::DistinctYes))
            .knows("extractEbertT.t", "followed-by", text("released"))
            .knows("extractPrasT.t", "bold-font", tri(FeatureValue::DistinctYes))
            .knows("extractPrasT.t", "followed-by", text("genre"))
            .knows("extractPrasT.t", "capitalized", tri(FeatureValue::Yes));
        // truth: one row per (imdb, ebert, prasanna) triple whose titles
        // approximately match (the result is a bag of join triples)
        let i_tokens = token_sets(&imdb, |r| r.title.as_str());
        let e_tokens = token_sets(&ebert, |r| r.title.as_str());
        let p_tokens = token_sets(&pras, |r| r.title.as_str());
        let mut truth: Truth = Vec::new();
        for ((_, r1), t1) in imdb.iter().zip(&i_tokens) {
            for t2 in &e_tokens {
                if !sets_match(t1, t2) {
                    continue;
                }
                for t3 in &p_tokens {
                    if sets_match(t2, t3) {
                        truth.push(vec![norm_text(&r1.title)]);
                    }
                }
            }
        }
        Task {
            id: TaskId::T3,
            program,
            tables: vec![
                ("imdb".into(), ids(&imdb)),
                ("ebert".into(), ids(&ebert)),
                ("prasanna".into(), ids(&pras)),
            ],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t4(&self, n: Option<usize>) -> Task {
        let recs = take(&self.dblp.gm, n);
        let program = parse_program(
            r#"
            t4(title) :- gm(x), extractPubs(#x, title, jyear), jyear != NULL.
            extractPubs(#x, title, jyear) :- from(#x, title), from(#x, jyear),
                italic-font(title) = distinct-yes.
        "#,
        )
        .expect("T4 program");
        let oracle = OracleSpec::new()
            .knows("extractPubs.title", "followed-by", text("by"))
            .knows("extractPubs.jyear", "numeric", tri(FeatureValue::Yes))
            .knows("extractPubs.jyear", "bold-font", tri(FeatureValue::DistinctYes))
            .knows("extractPubs.jyear", "preceded-by", text("journal year"));
        let oracle = deny_styles(oracle, "extractPubs.jyear", &["numeric", "bold-font"]);
        let truth = recs
            .iter()
            .filter(|(_, r)| r.journal.is_some())
            .map(|(_, r)| vec![norm_text(&r.title)])
            .collect();
        Task {
            id: TaskId::T4,
            program,
            tables: vec![("gm".into(), ids(&recs))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t5(&self, n: Option<usize>) -> Task {
        let recs = take(&self.dblp.vldb, n);
        let program = parse_program(
            r#"
            t5(title) :- vldb(x), extractVLDB(#x, title, fp, lp), lp < fp + 5.
            extractVLDB(#x, title, fp, lp) :- from(#x, title), from(#x, fp), from(#x, lp),
                bold-font(title) = distinct-yes, numeric(fp) = yes, numeric(lp) = yes.
        "#,
        )
        .expect("T5 program");
        let oracle = OracleSpec::new()
            .knows("extractVLDB.title", "followed-by", text("by"))
            .knows("extractVLDB.fp", "underlined", tri(FeatureValue::DistinctYes))
            .knows("extractVLDB.fp", "preceded-by", text("pages"))
            .knows("extractVLDB.lp", "preceded-by", text("-"))
            .knows("extractVLDB.fp", "max-value", FeatureArg::Num(450.0))
            .knows("extractVLDB.lp", "max-value", FeatureArg::Num(450.0));
        let oracle = deny_styles(oracle, "extractVLDB.fp", &["numeric", "underlined"]);
        let oracle = deny_styles(oracle, "extractVLDB.lp", &["numeric"]);
        let truth = recs
            .iter()
            .filter(|(_, r)| r.last_page < r.first_page + 5)
            .map(|(_, r)| vec![norm_text(&r.title)])
            .collect();
        Task {
            id: TaskId::T5,
            program,
            tables: vec![("vldb".into(), ids(&recs))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t6(&self, n: Option<usize>) -> Task {
        let sigmod = take(&self.dblp.sigmod, n);
        let icde = take(&self.dblp.icde, n);
        let program = parse_program(
            r#"
            t6(title1) :- sigmod(x), extractSIGMOD(#x, title1, authors1),
                          icde(y), extractICDE(#y, title2, authors2),
                          similar(#authors1, #authors2).
            extractSIGMOD(#x, t, a) :- from(#x, t), from(#x, a),
                bold-font(t) = distinct-yes.
            extractICDE(#y, t, a) :- from(#y, t), from(#y, a),
                bold-font(t) = distinct-yes.
        "#,
        )
        .expect("T6 program");
        let oracle = OracleSpec::new()
            .knows("extractSIGMOD.a", "italic-font", tri(FeatureValue::DistinctYes))
            .knows("extractSIGMOD.a", "capitalized", tri(FeatureValue::Yes))
            .knows("extractSIGMOD.t", "followed-by", text("by"))
            .knows("extractICDE.a", "italic-font", tri(FeatureValue::DistinctYes))
            .knows("extractICDE.a", "capitalized", tri(FeatureValue::Yes))
            .knows("extractICDE.t", "followed-by", text("by"));
        // one row per matching (sigmod, icde) pair — the result is a bag
        let s_tokens = token_sets(&sigmod, |r| r.authors.as_str());
        let i_tokens = token_sets(&icde, |r| r.authors.as_str());
        let mut truth: Truth = Vec::new();
        for ((_, r1), t1) in sigmod.iter().zip(&s_tokens) {
            for t2 in &i_tokens {
                if sets_match(t1, t2) {
                    truth.push(vec![norm_text(&r1.title)]);
                }
            }
        }
        Task {
            id: TaskId::T6,
            program,
            tables: vec![("sigmod".into(), ids(&sigmod)), ("icde".into(), ids(&icde))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t7(&self, n: Option<usize>) -> Task {
        let recs = take(&self.books.barnes, n);
        let program = parse_program(
            r#"
            t7(title) :- barnes(x), extractBarnes(#x, title, price), price > 100.
            extractBarnes(#x, title, price) :- from(#x, title), from(#x, price),
                bold-font(title) = distinct-yes, numeric(price) = yes.
        "#,
        )
        .expect("T7 program");
        let oracle = OracleSpec::new()
            .knows("extractBarnes.title", "followed-by", text("our price"))
            .knows("extractBarnes.price", "underlined", tri(FeatureValue::DistinctYes))
            .knows("extractBarnes.price", "preceded-by", text("price $"))
            .knows("extractBarnes.price", "max-value", FeatureArg::Num(200.0));
        let oracle = deny_styles(oracle, "extractBarnes.price", &["numeric", "underlined"]);
        let truth = recs
            .iter()
            .filter(|(_, r)| r.price_cents > 10_000) // $100 in cents
            .map(|(_, r)| vec![norm_text(&r.title)])
            .collect();
        Task {
            id: TaskId::T7,
            program,
            tables: vec![("barnes".into(), ids(&recs))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t8(&self, n: Option<usize>) -> Task {
        let recs = take(&self.books.amazon, n);
        let program = parse_program(
            r#"
            t8(title) :- amazon(x), extractAmazon(#x, title, lp, np, up),
                         lp = np, up < np.
            extractAmazon(#x, title, lp, np, up) :- from(#x, title), from(#x, lp),
                from(#x, np), from(#x, up),
                bold-font(title) = distinct-yes,
                numeric(lp) = yes, numeric(np) = yes, numeric(up) = yes.
        "#,
        )
        .expect("T8 program");
        let oracle = OracleSpec::new()
            .knows("extractAmazon.title", "followed-by", text("List:"))
            .knows("extractAmazon.lp", "underlined", tri(FeatureValue::DistinctYes))
            .knows("extractAmazon.lp", "preceded-by", text("List: $"))
            .knows("extractAmazon.np", "preceded-by", text("New: $"))
            .knows("extractAmazon.up", "italic-font", tri(FeatureValue::DistinctYes))
            .knows("extractAmazon.up", "preceded-by", text("Used: $"))
            .knows("extractAmazon.lp", "max-value", FeatureArg::Num(200.0))
            .knows("extractAmazon.np", "max-value", FeatureArg::Num(200.0))
            .knows("extractAmazon.up", "max-value", FeatureArg::Num(200.0));
        let truth = recs
            .iter()
            .filter(|(_, r)| r.list_cents == r.new_cents && r.used_cents < r.new_cents)
            .map(|(_, r)| vec![norm_text(&r.title)])
            .collect();
        Task {
            id: TaskId::T8,
            program,
            tables: vec![("amazon".into(), ids(&recs))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn t9(&self, n: Option<usize>) -> Task {
        let amazon = take(&self.books.amazon, n);
        let barnes = take(&self.books.barnes, n.map(|k| k * 2));
        let program = parse_program(
            r#"
            t9(title1) :- amazon(x), extractAmazonT(#x, title1, np),
                          barnes(y), extractBarnesT(#y, title2, bp),
                          similar(#title1, #title2), np < bp.
            extractAmazonT(#x, t, p) :- from(#x, t), from(#x, p), numeric(p) = yes.
            extractBarnesT(#y, t, p) :- from(#y, t), from(#y, p), numeric(p) = yes.
        "#,
        )
        .expect("T9 program");
        let oracle = OracleSpec::new()
            .knows("extractAmazonT.t", "bold-font", tri(FeatureValue::DistinctYes))
            .knows("extractAmazonT.t", "followed-by", text("List:"))
            .knows("extractAmazonT.p", "preceded-by", text("New: $"))
            .knows("extractBarnesT.t", "bold-font", tri(FeatureValue::DistinctYes))
            .knows("extractBarnesT.t", "followed-by", text("our price"))
            .knows("extractBarnesT.p", "underlined", tri(FeatureValue::DistinctYes))
            .knows("extractBarnesT.p", "preceded-by", text("price $"))
            .knows("extractAmazonT.p", "max-value", FeatureArg::Num(200.0))
            .knows("extractBarnesT.p", "max-value", FeatureArg::Num(200.0));
        let oracle = deny_styles(oracle, "extractAmazonT.p", &["numeric"]);
        let oracle = deny_styles(oracle, "extractBarnesT.p", &["numeric", "underlined"]);
        // one row per matching (amazon, barnes) pair with the Amazon copy
        // cheaper — the result is a bag of join pairs
        let a_tokens = token_sets(&amazon, |r| r.title.as_str());
        let b_tokens = token_sets(&barnes, |r| r.title.as_str());
        let mut truth: Truth = Vec::new();
        for ((_, ra), t1) in amazon.iter().zip(&a_tokens) {
            for ((_, rb), t2) in barnes.iter().zip(&b_tokens) {
                if ra.new_cents < rb.price_cents && sets_match(t1, t2) {
                    truth.push(vec![norm_text(&ra.title)]);
                }
            }
        }
        Task {
            id: TaskId::T9,
            program,
            tables: vec![("amazon".into(), ids(&amazon)), ("barnes".into(), ids(&barnes))],
            oracle,
            truth,
            truth_cols: vec![0],
            needs_type_cleanup: false,
        }
    }

    fn panel(&self) -> Task {
        let program = parse_program(
            r#"
            onPanel(x, y) :- docs(d), extractPanelists(#d, x), extractConference(#d, y).
            extractPanelists(#d, x) :- from(#d, x), person-name(x) = yes.
            extractConference(#d, y) :- from(#d, y), in-title(y) = yes.
        "#,
        )
        .expect("Panel program");
        let oracle = OracleSpec::new()
            .knows("extractPanelists.x", "prec-label-contains", text("panel"))
            .knows("extractPanelists.x", "capitalized", tri(FeatureValue::Yes))
            .knows("extractPanelists.x", "prec-label-max-dist", FeatureArg::Num(700.0))
            .knows("extractConference.y", "starts-with", text("[A-Z][A-Z]+"))
            .knows(
                "extractConference.y",
                "ends-with",
                text("0\\d|19\\d\\d|20\\d\\d"),
            )
            .knows("extractConference.y", "max-length", FeatureArg::Num(18.0));
        let truth = self
            .dblife
            .panels
            .iter()
            .map(|(p, c)| vec![norm_text(p), norm_text(c)])
            .collect();
        Task {
            id: TaskId::Panel,
            program,
            tables: vec![("docs".into(), self.dblife.docs.clone())],
            oracle,
            truth,
            truth_cols: vec![0, 1],
            needs_type_cleanup: false,
        }
    }

    fn project(&self) -> Task {
        let program = parse_program(
            r#"
            worksOn(x, y) :- docs(d), extractOwner(#d, x), extractProjects(#d, y).
            extractOwner(#d, x) :- from(#d, x), person-name(x) = yes.
            extractProjects(#d, y) :- from(#d, y), in-title(y) = yes.
        "#,
        )
        .expect("Project program");
        let oracle = OracleSpec::new()
            .knows("extractOwner.x", "prec-label-contains", text("members"))
            .knows("extractOwner.x", "capitalized", tri(FeatureValue::Yes))
            .knows("extractProjects.y", "ends-with", text("Project"))
            .knows("extractProjects.y", "capitalized", tri(FeatureValue::Yes));
        let truth = self
            .dblife
            .projects
            .iter()
            .map(|(p, proj)| vec![norm_text(p), norm_text(proj)])
            .collect();
        Task {
            id: TaskId::Project,
            program,
            tables: vec![("docs".into(), self.dblife.docs.clone())],
            oracle,
            truth,
            truth_cols: vec![0, 1],
            needs_type_cleanup: false,
        }
    }

    fn chair(&self) -> Task {
        let program = parse_program(
            r#"
            chair(x, y, z) :- docs(d), extractChairs(#d, x), extractConference(#d, y),
                              extractType(#x, z).
            extractChairs(#d, x) :- from(#d, x), person-name(x) = yes.
            extractConference(#d, y) :- from(#d, y), in-title(y) = yes.
        "#,
        )
        .expect("Chair program");
        let oracle = OracleSpec::new()
            .knows(
                "extractChairs.x",
                "prec-label-contains",
                text("organization"),
            )
            .knows("extractChairs.x", "capitalized", tri(FeatureValue::Yes))
            .knows("extractConference.y", "starts-with", text("[A-Z][A-Z]+"))
            .knows(
                "extractConference.y",
                "ends-with",
                text("0\\d|19\\d\\d|20\\d\\d"),
            )
            .knows("extractConference.y", "max-length", FeatureArg::Num(18.0));
        let truth = self
            .dblife
            .chairs
            .iter()
            .map(|(p, ty, c)| vec![norm_text(p), norm_text(c), norm_text(ty)])
            .collect();
        Task {
            id: TaskId::Chair,
            program,
            tables: vec![("docs".into(), self.dblife.docs.clone())],
            oracle,
            truth,
            truth_cols: vec![0, 1, 2],
            needs_type_cleanup: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;

    #[test]
    fn every_task_has_nonempty_truth_at_tiny_scale() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in TaskId::TABLE2 {
            let task = c.task(id, Some(30));
            assert!(!task.truth.is_empty(), "{id:?} has an empty answer");
        }
        for id in TaskId::DBLIFE {
            let task = c.task(id, None);
            assert!(!task.truth.is_empty(), "{id:?} has an empty answer");
        }
    }

    #[test]
    fn truths_shrink_with_scenario_size() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in [TaskId::T1, TaskId::T4, TaskId::T7] {
            let small = c.task(id, Some(10)).truth.len();
            let large = c.task(id, Some(30)).truth.len();
            assert!(small <= large, "{id:?}: {small} > {large}");
        }
    }

    #[test]
    fn initial_programs_validate_against_their_engines() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in TaskId::TABLE2.iter().chain(TaskId::DBLIFE.iter()) {
            let task = c.task(*id, Some(10));
            let engine = task.engine(&c);
            let errors = iflex::alog::validate(&task.program, &engine.validate_env());
            assert!(errors.is_empty(), "{id:?}: {errors:?}");
        }
    }

    #[test]
    fn oracles_are_truthful() {
        // every oracle answer must actually verify on at least one true
        // value occurrence in the corpus (spot-check T1's votes)
        let c = Corpus::build(CorpusConfig::tiny());
        let task = c.task(TaskId::T1, Some(10));
        let engine = task.engine(&c);
        let reg = engine.features();
        let (doc, rec) = &c.movies.imdb[0];
        let text = c.store.doc(*doc).text().to_string();
        let vs = text.find(&rec.votes.to_string()).unwrap() as u32;
        let span = iflex_text::Span::new(*doc, vs, vs + rec.votes.to_string().len() as u32);
        for (feature, expect) in [
            ("underlined", FeatureArg::distinct_yes()),
            ("numeric", FeatureArg::Tri(FeatureValue::Yes)),
        ] {
            let f = reg.get(feature).unwrap();
            assert!(
                f.verify(&c.store, span, &expect).unwrap(),
                "{feature} should hold on the true votes span"
            );
        }
    }

    #[test]
    fn spread_sampling_is_deterministic_and_spreads() {
        let c = Corpus::build(CorpusConfig::tiny());
        let a = c.task(TaskId::T1, Some(10));
        let b = c.task(TaskId::T1, Some(10));
        assert_eq!(a.tables[0].1, b.tables[0].1);
        // spread: not simply the first 10 records
        let first10: Vec<_> = c.movies.imdb.iter().take(10).map(|(d, _)| *d).collect();
        assert_ne!(a.tables[0].1, first10);
    }

    #[test]
    fn chair_cleanup_classifies_both_types() {
        let c = Corpus::build(CorpusConfig::tiny());
        let task = c.task(TaskId::Chair, None);
        let types: std::collections::BTreeSet<&String> =
            task.truth.iter().map(|r| &r[2]).collect();
        assert!(types.len() >= 2, "{types:?}");
    }
}
