//! The Movies domain (Table 1): Roger Ebert's greatest-movies list, the
//! IMDB top-250 list, and Prasanna's movie list — generated synthetically
//! with the same structural features the paper's tasks rely on
//! (see DESIGN.md substitution table).
//!
//! Record layouts (each record is one extraction document):
//! * IMDB: `rank R <b>TITLE</b> (YEAR) STUDIO votes <u>VOTES</u> score S.S`
//!   — rank / year / score are numeric decoys for votes.
//! * Ebert: `P. <i>TITLE</i> released <u>YEAR</u> rating R stars [restored YEAR2]`
//! * Prasanna: `pick N <b>TITLE</b> genre GENRE`
//!
//! Title index ranges overlap across the three lists so that task T3
//! ("movies in all three lists") has a non-trivial answer.

use crate::words;
use iflex_text::{DocId, DocumentStore};

/// One IMDB record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImdbRec {
    /// The title.
    pub title: String,
    /// The year.
    pub year: u32,
    /// The votes.
    pub votes: u32,
    /// The rank.
    pub rank: u32,
    /// The studio.
    pub studio: &'static str,
}

/// One Ebert record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbertRec {
    /// The title.
    pub title: String,
    /// The year.
    pub year: u32,
    /// The rating.
    pub rating: u32,
    /// The restored.
    pub restored: Option<u32>,
}

/// One Prasanna record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrasannaRec {
    /// The title.
    pub title: String,
    /// The genre.
    pub genre: &'static str,
}

/// The generated Movies domain.
#[derive(Debug, Clone, Default)]
pub struct Movies {
    /// The imdb.
    pub imdb: Vec<(DocId, ImdbRec)>,
    /// The ebert.
    pub ebert: Vec<(DocId, EbertRec)>,
    /// The prasanna.
    pub prasanna: Vec<(DocId, PrasannaRec)>,
}

/// Title-index bases scale with the IMDB size: IMDB uses `0..n`, Ebert
/// starts at 2n/5, Prasanna at 4n/5 — at the paper's n = 250 this gives
/// bases 100 and 200 and a 50-title triple overlap.
pub fn ebert_base(n_imdb: usize) -> usize {
    n_imdb * 2 / 5
}

/// See [`ebert_base`].
pub fn prasanna_base(n_imdb: usize) -> usize {
    n_imdb * 4 / 5
}

/// IMDB votes for record `i`: roughly 12 % fall below the T1 threshold of
/// 25 000.
pub fn imdb_votes(i: usize) -> u32 {
    if i.is_multiple_of(8) {
        9_000 + (i as u32) * 37
    } else {
        26_000 + ((i as u32) * 1_831) % 450_000
    }
}

/// Ebert release year for record `i`.
pub fn ebert_year(i: usize) -> u32 {
    1930 + ((i as u32) * 11) % 75
}

/// Builds the Movies domain into `store`.
pub fn build(store: &mut DocumentStore, n_imdb: usize, n_ebert: usize, n_pras: usize) -> Movies {
    let mut out = Movies::default();
    for i in 0..n_imdb {
        let rec = ImdbRec {
            title: words::movie_title(i),
            year: 1920 + ((i as u32) * 7) % 90,
            votes: imdb_votes(i),
            rank: i as u32 + 1,
            studio: words::studio(i),
        };
        let markup = format!(
            "rank {} <b>{}</b> ({}) {} votes <u>{}</u> score {}.{}",
            rec.rank,
            rec.title,
            rec.year,
            rec.studio,
            rec.votes,
            i % 9 + 1,
            i % 10
        );
        let id = store.add_markup(&markup);
        out.imdb.push((id, rec));
    }
    for i in 0..n_ebert {
        let rec = EbertRec {
            title: words::movie_title(ebert_base(n_imdb) + i),
            year: ebert_year(i),
            rating: (i as u32) % 4 + 1,
            restored: if i % 3 == 0 {
                Some(1950 + ((i as u32) * 13) % 55)
            } else {
                None
            },
        };
        let restored = rec
            .restored
            .map(|y| format!(" restored {y}"))
            .unwrap_or_default();
        let markup = format!(
            "{}. <i>{}</i> released <u>{}</u> rating {} stars{restored}",
            i + 1,
            rec.title,
            rec.year,
            rec.rating,
        );
        let id = store.add_markup(&markup);
        out.ebert.push((id, rec));
    }
    for i in 0..n_pras {
        let rec = PrasannaRec {
            title: words::movie_title(prasanna_base(n_imdb) + i),
            genre: words::genre(i),
        };
        let markup = format!(
            "pick {} <b>{}</b> genre {}",
            i + 1,
            rec.title,
            rec.genre
        );
        let id = store.add_markup(&markup);
        out.prasanna.push((id, rec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::{markup::style, Coverage};

    #[test]
    fn imdb_records_have_designed_features() {
        let mut store = DocumentStore::new();
        let m = build(&mut store, 5, 0, 0);
        let (id, rec) = &m.imdb[0];
        let doc = store.doc(*id);
        let text = doc.text();
        // title is bold and distinct
        let ts = text.find(&rec.title).unwrap() as u32;
        let te = ts + rec.title.len() as u32;
        assert_eq!(doc.style_coverage(ts, te, style::BOLD), Coverage::Full);
        assert!(doc.style_distinct(ts, te, style::BOLD));
        // votes underlined and preceded by "votes"
        let vs = text.find(&rec.votes.to_string()).unwrap() as u32;
        let ve = vs + rec.votes.to_string().len() as u32;
        assert_eq!(doc.style_coverage(vs, ve, style::UNDERLINE), Coverage::Full);
        assert!(text[..vs as usize].trim_end().ends_with("votes"));
    }

    #[test]
    fn votes_distribution_crosses_threshold() {
        let below = (0..250).filter(|&i| imdb_votes(i) < 25_000).count();
        assert!((20..60).contains(&below), "{below}");
    }

    #[test]
    fn overlap_ranges() {
        let mut store = DocumentStore::new();
        let m = build(&mut store, 250, 242, 517);
        let imdb: std::collections::BTreeSet<_> =
            m.imdb.iter().map(|(_, r)| r.title.clone()).collect();
        let ebert: std::collections::BTreeSet<_> =
            m.ebert.iter().map(|(_, r)| r.title.clone()).collect();
        let pras: std::collections::BTreeSet<_> =
            m.prasanna.iter().map(|(_, r)| r.title.clone()).collect();
        let triple = imdb
            .intersection(&ebert)
            .cloned()
            .collect::<std::collections::BTreeSet<_>>();
        let triple: Vec<_> = triple.intersection(&pras).collect();
        assert_eq!(triple.len(), 50); // titles 200..250
    }

    #[test]
    fn ebert_restored_year_is_numeric_noise() {
        let mut store = DocumentStore::new();
        let m = build(&mut store, 0, 9, 0);
        let with_restored = m.ebert.iter().filter(|(_, r)| r.restored.is_some()).count();
        assert_eq!(with_restored, 3);
    }
}
