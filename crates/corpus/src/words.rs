//! Deterministic text generators: movie/book/paper titles, person names,
//! venue names. Injective per generator (distinct indices → distinct
//! strings) so ground truth can be computed by construction.

const ADJ: &[&str] = &[
    "Silent", "Crimson", "Broken", "Golden", "Hidden", "Burning", "Frozen", "Distant",
    "Savage", "Gentle", "Electric", "Hollow", "Scarlet", "Wandering", "Midnight", "Ancient",
    "Restless", "Shattered", "Velvet", "Iron", "Pale", "Wicked", "Quiet", "Blazing",
    "Lonely", "Painted", "Rising", "Fallen", "Secret", "Raging", "Emerald", "Stolen",
];

const NOUN: &[&str] = &[
    "River", "Harvest", "Empire", "Garden", "Voyage", "Shadow", "Fortress", "Mirror",
    "Horizon", "Symphony", "Lantern", "Compass", "Orchard", "Tempest", "Canyon", "Harbor",
    "Meadow", "Citadel", "Beacon", "Labyrinth", "Summit", "Valley", "Crossing", "Cathedral",
    "Island", "Monument", "Carousel", "Junction", "Prairie", "Avalanche", "Reef", "Tundra",
];

const NOUN2: &[&str] = &[
    "Dawn", "Winter", "Memory", "Fortune", "Silence", "Glory", "Destiny", "Sorrow",
    "Thunder", "Twilight", "Ashes", "Wonder", "Courage", "Exile", "Mercy", "Legend",
];

const FIRST: &[&str] = &[
    "Alice", "Robert", "Carol", "David", "Elena", "Frank", "Grace", "Henry", "Irene",
    "James", "Karen", "Louis", "Maria", "Nathan", "Olivia", "Peter", "Quinn", "Rachel",
    "Samuel", "Teresa", "Victor", "Wendy", "Xavier", "Yvonne", "Zachary", "Bridget",
    "Carlos", "Diana", "Edward", "Fiona", "Gustav", "Helena",
];

const LAST: &[&str] = &[
    "Anderson", "Brooks", "Carmichael", "Donovan", "Eastman", "Fletcher", "Grayson",
    "Holloway", "Ivanov", "Jennings", "Kowalski", "Lancaster", "Mercer", "Nakamura",
    "Osborne", "Pemberton", "Quintero", "Rutherford", "Sanderson", "Thornton", "Underwood",
    "Vasquez", "Whitfield", "Xu", "Yamamoto", "Zimmerman", "Ashford", "Blackwell",
    "Castellano", "Delacroix", "Engelhart", "Fairbanks",
];

const TOPIC: &[&str] = &[
    "Indexing", "Joins", "Transactions", "Recovery", "Replication", "Partitioning",
    "Caching", "Scheduling", "Compression", "Sampling", "Clustering", "Provenance",
    "Integration", "Extraction", "Optimization", "Streaming", "Warehousing", "Mining",
    "Ranking", "Crawling", "Annotation", "Materialization", "Sharding", "Versioning",
];

const METHOD: &[&str] = &[
    "Adaptive", "Incremental", "Parallel", "Distributed", "Approximate", "Scalable",
    "Declarative", "Probabilistic", "Hierarchical", "Lazy", "Speculative", "Robust",
    "Hybrid", "Online", "Cost-Based", "Learned",
];

const OBJECT: &[&str] = &[
    "Query Plans", "XML Views", "Web Tables", "Data Streams", "Key-Value Stores",
    "Column Stores", "Sensor Networks", "Text Corpora", "Log Archives", "Graph Databases",
    "Spatial Indexes", "Materialized Views", "Schema Mappings", "Data Cubes",
    "Temporal Relations", "Wide Tables",
];

const STUDIO: &[&str] = &[
    "Pinnacle", "Meridian", "Borealis", "Zenith", "Cascadia", "Vanguard", "Atlas",
    "Polaris",
];

const GENRE: &[&str] = &[
    "Drama", "Noir", "Western", "Thriller", "Comedy", "Mystery", "Adventure", "Romance",
];

const JOURNAL: &[&str] = &["VLDB Journal", "TODS", "Information Systems", "SIGMOD Record"];

const CONFERENCE: &[&str] = &[
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "PODS", "WWW", "KDD", "ICDM", "CIKM",
];

const PROJECT_NAME: &[&str] = &[
    "Trio", "Orchestra", "Hazy", "Cimple", "Nile", "Aurora", "Borealis", "Telegraph",
    "Mariposa", "Condor", "Quickstep", "Peloton", "Umbra", "Kite", "Datalography",
    "Proton",
];

/// Alphabetic tag for overflow blocks ("A", "B", …, "Z", "AA", …): how
/// the title generators stay injective past their word-pool products,
/// so corpora can scale ≥10× the paper's sizes. Digit-free on purpose —
/// a numeric suffix would add spurious candidates to numeric-extraction
/// tasks.
fn series_tag(mut block: usize) -> String {
    let mut s = String::new();
    loop {
        s.insert(0, (b'A' + (block % 26) as u8) as char);
        block /= 26;
        if block == 0 {
            break;
        }
        block -= 1;
    }
    s
}

/// Wraps a pool-product generator: identical output inside the injective
/// range (existing corpora are byte-stable), a distinct `Volume <tag>`
/// suffix per overflow block beyond it ("Volume" appears in no pool, so
/// suffixed titles never collide with base titles).
fn extend_range(i: usize, range: usize, base: impl Fn(usize) -> String) -> String {
    if i < range {
        base(i)
    } else {
        format!("{} Volume {}", base(i % range), series_tag(i / range - 1))
    }
}

/// Deterministic, injective movie title (any `i`; pool product 16 384).
pub fn movie_title(i: usize) -> String {
    extend_range(i, 16_384, |i| {
        let a = ADJ[i % ADJ.len()];
        let n = NOUN[(i / ADJ.len()) % NOUN.len()];
        let block = i / (ADJ.len() * NOUN.len());
        match block % 3 {
            0 => format!("{a} {n}"),
            1 => format!("The {a} {n}"),
            _ => format!("{a} {n} of {}", NOUN2[block % NOUN2.len()]),
        }
    })
}

/// Deterministic, injective paper title (any `i`; pool product 12 288).
pub fn paper_title(i: usize) -> String {
    extend_range(i, 12_288, |i| {
        let t = TOPIC[i % TOPIC.len()];
        let m = METHOD[(i / TOPIC.len()) % METHOD.len()];
        let o = OBJECT[(i / (TOPIC.len() * METHOD.len())) % OBJECT.len()];
        match (i / (TOPIC.len() * METHOD.len() * OBJECT.len())) % 2 {
            0 => format!("{m} {t} for {o}"),
            _ => format!("{t} over {o} the {m} Way"),
        }
    })
}

/// Deterministic, injective book title (any `i`; pool product 12 288).
pub fn book_title(i: usize) -> String {
    extend_range(i, 12_288, |i| {
        let t = TOPIC[i % TOPIC.len()];
        let m = METHOD[(i / TOPIC.len()) % METHOD.len()];
        let o = OBJECT[(i / (TOPIC.len() * METHOD.len())) % OBJECT.len()];
        match (i / (TOPIC.len() * METHOD.len() * OBJECT.len())) % 2 {
            0 => format!("{m} Database {t} with {o}"),
            _ => format!("{m} {t} Handbook for {o}"),
        }
    })
}

/// Deterministic person name (`i < 1024` distinct).
pub fn person(i: usize) -> String {
    format!(
        "{} {}",
        FIRST[i % FIRST.len()],
        LAST[(i / FIRST.len()) % LAST.len()]
    )
}

/// A small pool of author-group sizes and helpers.
pub fn author_list(seed: usize, count: usize) -> String {
    let names: Vec<String> = (0..count).map(|k| person(seed * 7 + k * 131 + 13)).collect();
    names.join(", ")
}

/// Studio.
pub fn studio(i: usize) -> &'static str {
    STUDIO[i % STUDIO.len()]
}

/// Genre.
pub fn genre(i: usize) -> &'static str {
    GENRE[i % GENRE.len()]
}

/// Journal.
pub fn journal(i: usize) -> &'static str {
    JOURNAL[i % JOURNAL.len()]
}

/// Conference.
pub fn conference(i: usize) -> &'static str {
    CONFERENCE[i % CONFERENCE.len()]
}

/// Project name.
pub fn project_name(i: usize) -> &'static str {
    PROJECT_NAME[i % PROJECT_NAME.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn titles_are_injective() {
        for gen in [movie_title as fn(usize) -> String, paper_title, book_title] {
            let set: BTreeSet<String> = (0..3000).map(gen).collect();
            assert_eq!(set.len(), 3000);
        }
    }

    #[test]
    fn titles_stay_injective_past_the_pool_product() {
        // 10× the paper's largest table (Barnes, 5 000) crosses every
        // generator's pool product; sample densely across the boundary.
        for gen in [movie_title as fn(usize) -> String, paper_title, book_title] {
            let set: BTreeSet<String> = (0..60_000).step_by(7).map(gen).collect();
            assert_eq!(set.len(), (0..60_000).step_by(7).count());
        }
        // overflow titles carry the digit-free series tag
        assert!(book_title(12_288).contains("Volume A"), "{}", book_title(12_288));
        assert!(!book_title(50_000).chars().any(|c| c.is_ascii_digit()));
    }

    #[test]
    fn series_tags_walk_the_alphabet() {
        assert_eq!(series_tag(0), "A");
        assert_eq!(series_tag(25), "Z");
        assert_eq!(series_tag(26), "AA");
        assert_eq!(series_tag(27), "AB");
        assert_eq!(series_tag(26 * 27 - 1), "ZZ");
        assert_eq!(series_tag(26 * 27), "AAA");
    }

    #[test]
    fn persons_distinct_within_pool() {
        let set: BTreeSet<String> = (0..1024).map(person).collect();
        assert_eq!(set.len(), 1024);
    }

    #[test]
    fn titles_are_capitalized_words() {
        for i in 0..200 {
            let t = movie_title(i);
            assert!(t.split_whitespace().count() >= 2);
            assert!(t.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn author_lists_join_names() {
        let a = author_list(3, 2);
        assert_eq!(a.split(", ").count(), 2);
    }
}
