//! The DBLP domain (Table 1): Garcia-Molina's publication list and the
//! SIGMOD / ICDE / VLDB proceedings.
//!
//! Record layouts:
//! * Garcia-Molina journal pub:
//!   `<i>TITLE</i> by AUTHORS <u>JOURNAL</u> journal year <b>YEAR</b> vol V`
//! * Garcia-Molina conference pub:
//!   `<i>TITLE</i> by AUTHORS in proceedings CONF YEAR`
//! * Proceedings record:
//!   `CONF YEAR <b>TITLE</b> by <i>AUTHORS</i> pages <u>P1</u>-P2 track T`
//!
//! A slice of ICDE records reuses the author sets of SIGMOD records so
//! task T6 ("pubs sharing authors") has an answer.

use crate::words;
use iflex_text::{DocId, DocumentStore};

/// One Garcia-Molina list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmRec {
    /// The title.
    pub title: String,
    /// The authors.
    pub authors: String,
    /// `(journal name, year)` for journal publications.
    pub journal: Option<(&'static str, u32)>,
    /// Conference venue/year otherwise.
    pub conf: Option<(&'static str, u32)>,
}

/// One proceedings record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubRec {
    /// The title.
    pub title: String,
    /// The authors.
    pub authors: String,
    /// The year.
    pub year: u32,
    /// First page number of the paper.
    pub first_page: u32,
    /// Last page number of the paper.
    pub last_page: u32,
}

/// The generated DBLP domain.
#[derive(Debug, Clone, Default)]
pub struct Dblp {
    /// The gm.
    pub gm: Vec<(DocId, GmRec)>,
    /// The sigmod.
    pub sigmod: Vec<(DocId, PubRec)>,
    /// The icde.
    pub icde: Vec<(DocId, PubRec)>,
    /// The vldb.
    pub vldb: Vec<(DocId, PubRec)>,
}

/// Paper-title index bases to keep the lists disjoint.
const GM_BASE: usize = 0;
const SIGMOD_BASE: usize = 400;
const ICDE_BASE: usize = 2600;
const VLDB_BASE: usize = 4800;

/// Page length of proceedings record `i` (T5 looks for `< 5`).
pub fn page_len(i: usize) -> u32 {
    1 + ((i as u32) * 7) % 13
}

/// Author seed of a SIGMOD record; ICDE records with `i % 6 == 0` reuse
/// the author set of SIGMOD record `(i * 7) % n_sigmod`.
fn author_seed(venue: usize, i: usize) -> usize {
    venue * 1_000 + i
}

fn proceedings_record(conf: &'static str, base: usize, venue: usize, i: usize, n_sigmod: usize) -> PubRec {
    let (aseed, acount) = if conf == "ICDE" && i.is_multiple_of(6) && n_sigmod > 0 {
        // share the authors of a SIGMOD record
        let j = (i * 7) % n_sigmod;
        (author_seed(1, j), 2 + j % 2)
    } else {
        (author_seed(venue, i), 2 + i % 2)
    };
    let fp = 1 + ((i as u32) * 17) % 400;
    PubRec {
        title: words::paper_title(base + i),
        authors: words::author_list(aseed, acount),
        year: 1975 + ((i as u32) * 31) % 31,
        first_page: fp,
        last_page: fp + page_len(i),
    }
}

fn markup_proceedings(conf: &str, r: &PubRec, i: usize) -> String {
    format!(
        "{} {} <b>{}</b> by <i>{}</i> pages <u>{}</u>-{} track {}",
        conf,
        r.year,
        r.title,
        r.authors,
        r.first_page,
        r.last_page,
        i % 6 + 1
    )
}

/// Builds the DBLP domain into `store`.
pub fn build(
    store: &mut DocumentStore,
    n_gm: usize,
    n_sigmod: usize,
    n_icde: usize,
    n_vldb: usize,
) -> Dblp {
    let mut out = Dblp::default();
    for i in 0..n_gm {
        let is_journal = i % 3 == 0;
        let rec = GmRec {
            title: words::paper_title(GM_BASE + i),
            authors: format!("Hector Garcia-Molina, {}", words::person(i * 3 + 5)),
            journal: is_journal.then(|| (words::journal(i), 1980 + ((i as u32) * 13) % 25)),
            conf: (!is_journal).then(|| (words::conference(i), 1978 + ((i as u32) * 17) % 27)),
        };
        let tail = match (&rec.journal, &rec.conf) {
            (Some((j, y)), _) => format!("<u>{j}</u> journal year <b>{y}</b> vol {}", i % 30 + 1),
            (_, Some((c, y))) => format!("in proceedings {c} {y}"),
            _ => unreachable!(),
        };
        let markup = format!("<i>{}</i> by {} {}", rec.title, rec.authors, tail);
        let id = store.add_markup(&markup);
        out.gm.push((id, rec));
    }
    for i in 0..n_sigmod {
        let rec = proceedings_record("SIGMOD", SIGMOD_BASE, 1, i, 0);
        let id = store.add_markup(&markup_proceedings("SIGMOD", &rec, i));
        out.sigmod.push((id, rec));
    }
    for i in 0..n_icde {
        let rec = proceedings_record("ICDE", ICDE_BASE, 2, i, n_sigmod);
        let id = store.add_markup(&markup_proceedings("ICDE", &rec, i));
        out.icde.push((id, rec));
    }
    for i in 0..n_vldb {
        let rec = proceedings_record("VLDB", VLDB_BASE, 3, i, 0);
        let id = store.add_markup(&markup_proceedings("VLDB", &rec, i));
        out.vldb.push((id, rec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_share_is_a_third() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 312, 0, 0, 0);
        let journals = d.gm.iter().filter(|(_, r)| r.journal.is_some()).count();
        assert_eq!(journals, 104);
    }

    #[test]
    fn journal_year_label_present_only_for_journals() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 12, 0, 0, 0);
        for (id, r) in &d.gm {
            let text = store.doc(*id).text().to_string();
            assert_eq!(text.contains("journal year"), r.journal.is_some());
        }
    }

    #[test]
    fn icde_shares_sigmod_authors() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 0, 120, 120, 0);
        let sig_authors: std::collections::BTreeSet<_> =
            d.sigmod.iter().map(|(_, r)| r.authors.clone()).collect();
        let sharing = d
            .icde
            .iter()
            .filter(|(_, r)| sig_authors.contains(&r.authors))
            .count();
        assert!(sharing >= 120 / 6, "{sharing}");
    }

    #[test]
    fn short_papers_fraction() {
        let short = (0..2136).filter(|&i| page_len(i) < 5).count();
        let frac = short as f64 / 2136.0;
        assert!((0.2..0.45).contains(&frac), "{frac}");
    }

    #[test]
    fn titles_disjoint_across_lists() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 50, 50, 50, 50);
        let mut all: Vec<String> = Vec::new();
        all.extend(d.gm.iter().map(|(_, r)| r.title.clone()));
        all.extend(d.sigmod.iter().map(|(_, r)| r.title.clone()));
        all.extend(d.icde.iter().map(|(_, r)| r.title.clone()));
        all.extend(d.vldb.iter().map(|(_, r)| r.title.clone()));
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn pages_are_consistent() {
        let mut store = DocumentStore::new();
        let d = build(&mut store, 0, 20, 0, 0);
        for (id, r) in &d.sigmod {
            assert!(r.last_page > r.first_page);
            let text = store.doc(*id).text().to_string();
            assert!(text.contains(&format!("pages {}-{}", r.first_page, r.last_page)));
        }
    }
}
