//! The Books domain (Table 1): Amazon and Barnes & Noble result pages for
//! a "Database" query.
//!
//! Record layouts:
//! * Amazon: `<b>TITLE</b> List: $<u>L</u> New: $N Used: $<i>U</i> ref R ships S days`
//! * Barnes: `<b>TITLE</b> our price $<u>P</u> member M% ref R`
//!
//! Amazon titles are `book_title(0..n_amazon)`, Barnes titles
//! `book_title(base..base+n_barnes)` with `base = 2·n_amazon/5`, so the
//! title ranges overlap — task T9 compares prices across the overlap. The
//! `ref` number is large numeric noise that keeps initial price
//! comparisons approximate.

use crate::words;
use iflex_text::{DocId, DocumentStore};

/// One Amazon record. Prices in cents to keep arithmetic exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmazonRec {
    /// The title.
    pub title: String,
    /// List price in cents.
    pub list_cents: u32,
    /// New price in cents.
    pub new_cents: u32,
    /// Used price in cents.
    pub used_cents: u32,
}

/// One Barnes & Noble record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarnesRec {
    /// The title.
    pub title: String,
    /// Price in cents.
    pub price_cents: u32,
}

/// The generated Books domain.
#[derive(Debug, Clone, Default)]
pub struct Books {
    /// The amazon.
    pub amazon: Vec<(DocId, AmazonRec)>,
    /// The barnes.
    pub barnes: Vec<(DocId, BarnesRec)>,
}

/// Barnes title-index base scales with the Amazon size (overlap with
/// Amazon runs from here): 2n/5, i.e. 996 at the paper's n = 2490.
pub fn barnes_base(n_amazon: usize) -> usize {
    n_amazon * 2 / 5
}

fn dollars(cents: u32) -> String {
    format!("{}.{:02}", cents / 100, cents % 100)
}

/// Amazon prices for title index `k`. ~17 % of records satisfy T8
/// (list == new && used < new).
pub fn amazon_prices(k: usize) -> (u32, u32, u32) {
    let list = 1_499 + ((k as u32) * 731) % 14_000; // $14.99 .. $159.98
    if k.is_multiple_of(6) {
        // T8-qualifying: new equals list, used strictly below
        let used = list.saturating_sub(300 + ((k as u32) * 17) % 800).max(199);
        (list, list, used)
    } else {
        let new = list.saturating_sub(200 + ((k as u32) * 53) % 3_000).max(499);
        let used = if k.is_multiple_of(3) { new + 150 } else { new.saturating_sub(100).max(99) };
        (list, new, used)
    }
}

/// Barnes price for title index `k`: for titles shared with Amazon,
/// 40 % are priced above Amazon's new price (T9's answer set).
pub fn barnes_price(k: usize) -> u32 {
    let (_, new, _) = amazon_prices(k);
    if k % 5 < 2 {
        new + 1_000 // Amazon cheaper
    } else {
        new.saturating_sub(500).max(199)
    }
}

/// Builds the Books domain into `store`.
pub fn build(store: &mut DocumentStore, n_amazon: usize, n_barnes: usize) -> Books {
    let mut out = Books::default();
    for k in 0..n_amazon {
        let (list, new, used) = amazon_prices(k);
        let rec = AmazonRec {
            title: words::book_title(k),
            list_cents: list,
            new_cents: new,
            used_cents: used,
        };
        let markup = format!(
            "<b>{}</b> List: $<u>{}</u> New: ${} Used: $<i>{}</i> ref {} ships {} days",
            rec.title,
            dollars(list),
            dollars(new),
            dollars(used),
            700_000 + k * 13,
            k % 9 + 1
        );
        let id = store.add_markup(&markup);
        out.amazon.push((id, rec));
    }
    let base = barnes_base(n_amazon);
    for j in 0..n_barnes {
        let k = base + j;
        let rec = BarnesRec {
            title: words::book_title(k),
            price_cents: barnes_price(k),
        };
        let markup = format!(
            "<b>{}</b> our price $<u>{}</u> member {}% ref {}",
            rec.title,
            dollars(rec.price_cents),
            j % 25 + 5,
            900_000 + j * 17
        );
        let id = store.add_markup(&markup);
        out.barnes.push((id, rec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t8_qualifying_share() {
        let qualifying = (0..2490)
            .map(amazon_prices)
            .filter(|&(l, n, u)| l == n && u < n)
            .count();
        let frac = qualifying as f64 / 2490.0;
        assert!((0.1..0.25).contains(&frac), "{frac}");
    }

    #[test]
    fn overlap_and_t9_share() {
        let n_amazon = 2490;
        let overlap: Vec<usize> = (barnes_base(n_amazon)..n_amazon).collect();
        assert_eq!(overlap.len(), 1494);
        let cheaper_at_amazon = overlap
            .iter()
            .filter(|&&k| amazon_prices(k).1 < barnes_price(k))
            .count();
        let frac = cheaper_at_amazon as f64 / overlap.len() as f64;
        assert!((0.3..0.5).contains(&frac), "{frac}");
    }

    #[test]
    fn markup_labels_designed_for_preceded_by() {
        let mut store = DocumentStore::new();
        let b = build(&mut store, 3, 2);
        let (id, rec) = &b.amazon[0];
        let text = store.doc(*id).text().to_string();
        assert!(text.contains(&format!("List: ${}", dollars(rec.list_cents))));
        assert!(text.contains(&format!("New: ${}", dollars(rec.new_cents))));
        assert!(text.contains(&format!("Used: ${}", dollars(rec.used_cents))));
        let (id, rec) = &b.barnes[0];
        let text = store.doc(*id).text().to_string();
        assert!(text.contains(&format!("our price ${}", dollars(rec.price_cents))));
    }

    #[test]
    fn used_prices_never_zero() {
        for k in 0..5000 {
            let (_, _, u) = amazon_prices(k);
            assert!(u > 0);
        }
    }
}
