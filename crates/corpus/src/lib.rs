//! # iflex-corpus
//!
//! Synthetic reproductions of the paper's experimental domains (Table 1)
//! with per-record ground truth, plus the IE tasks of Tables 2 and 6.
//!
//! The paper crawled real Web pages (Movies: 3 pages, DBLP: 85, Books:
//! 749, DBLife: 10 007). Those crawls are not available, so this crate
//! generates pages with the same *structure*: every extraction target
//! carries the text features the paper's refinement loop exploits
//! (bold/italic/underline styling, labels like `Price:` and
//! `Panel Sessions`, page titles), surrounded by realistic numeric and
//! textual noise that makes the initial approximate programs genuinely
//! over-extract. See DESIGN.md (§2, substitutions) for the full argument.
//!
//! Generation is deterministic: the same [`CorpusConfig`] always yields
//! byte-identical pages and ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod books;
pub mod dblife;
pub mod dblp;
pub mod movies;
pub mod tasks;
pub mod words;

pub use tasks::{register_type_cleanup, Task, TaskId};

use iflex_text::DocumentStore;
use std::sync::Arc;

/// Sizing knobs. Defaults match Table 1 and §6.3's 10 007-page DBLife
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// IMDB records.
    pub n_imdb: usize,
    /// Ebert records.
    pub n_ebert: usize,
    /// Prasanna records.
    pub n_prasanna: usize,
    /// Garcia-Molina records.
    pub n_gm: usize,
    /// SIGMOD records.
    pub n_sigmod: usize,
    /// ICDE records.
    pub n_icde: usize,
    /// VLDB records.
    pub n_vldb: usize,
    /// Amazon records.
    pub n_amazon: usize,
    /// Barnes & Noble records.
    pub n_barnes: usize,
    /// DBLife conference pages.
    pub dblife_conf: usize,
    /// DBLife project pages.
    pub dblife_proj: usize,
    /// DBLife noise pages (homepages, posts, courses).
    pub dblife_noise: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_imdb: 250,
            n_ebert: 242,
            n_prasanna: 517,
            n_gm: 312,
            n_sigmod: 1787,
            n_icde: 1798,
            n_vldb: 2136,
            n_amazon: 2490,
            n_barnes: 5000,
            dblife_conf: 120,
            dblife_proj: 80,
            dblife_noise: 9_807,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and quick demos.
    pub fn tiny() -> Self {
        CorpusConfig {
            n_imdb: 30,
            n_ebert: 30,
            n_prasanna: 60,
            n_gm: 30,
            n_sigmod: 40,
            n_icde: 40,
            n_vldb: 40,
            n_amazon: 40,
            n_barnes: 60,
            dblife_conf: 5,
            dblife_proj: 4,
            dblife_noise: 10,
        }
    }

    /// Scales every table size by `f` (at least one record each).
    /// Factors ≥10× the paper's sizes are supported — the title
    /// generators in [`words`] stay injective past their word-pool
    /// products via per-block series tags, so ground truth remains
    /// computable by construction at any scale.
    pub fn scaled(f: f64) -> Self {
        let d = Self::default();
        let s = |n: usize| ((n as f64 * f).round() as usize).max(1);
        CorpusConfig {
            n_imdb: s(d.n_imdb),
            n_ebert: s(d.n_ebert),
            n_prasanna: s(d.n_prasanna),
            n_gm: s(d.n_gm),
            n_sigmod: s(d.n_sigmod),
            n_icde: s(d.n_icde),
            n_vldb: s(d.n_vldb),
            n_amazon: s(d.n_amazon),
            n_barnes: s(d.n_barnes),
            dblife_conf: s(d.dblife_conf),
            dblife_proj: s(d.dblife_proj),
            dblife_noise: s(d.dblife_noise),
        }
    }
}

/// All generated domains over one shared document store.
pub struct Corpus {
    /// The store.
    pub store: Arc<DocumentStore>,
    /// The movies.
    pub movies: movies::Movies,
    /// The dblp.
    pub dblp: dblp::Dblp,
    /// The books.
    pub books: books::Books,
    /// The dblife.
    pub dblife: dblife::DbLife,
}

impl Corpus {
    /// Generates the full corpus.
    pub fn build(cfg: CorpusConfig) -> Self {
        let mut store = DocumentStore::new();
        let movies = movies::build(&mut store, cfg.n_imdb, cfg.n_ebert, cfg.n_prasanna);
        let dblp = dblp::build(
            &mut store,
            cfg.n_gm,
            cfg.n_sigmod,
            cfg.n_icde,
            cfg.n_vldb,
        );
        let books = books::build(&mut store, cfg.n_amazon, cfg.n_barnes);
        let dblife = dblife::build(
            &mut store,
            cfg.dblife_conf,
            cfg.dblife_proj,
            cfg.dblife_noise,
        );
        Corpus {
            store: Arc::new(store),
            movies,
            dblp,
            books,
            dblife,
        }
    }

    /// Table 1 rows: `(domain, table, description, records)`.
    pub fn table1(&self) -> Vec<(&'static str, &'static str, &'static str, usize)> {
        vec![
            ("Movies", "Ebert", "Roger Ebert's Greatest Movies List", self.movies.ebert.len()),
            ("Movies", "IMDB", "IMDB Top 250 Movies", self.movies.imdb.len()),
            ("Movies", "Prasanna", "Prasanna's Top Movies List", self.movies.prasanna.len()),
            ("DBLP", "Garcia-Molina", "Hector Garcia-Molina Pubs List", self.dblp.gm.len()),
            ("DBLP", "SIGMOD", "SIGMOD Papers '75-'05", self.dblp.sigmod.len()),
            ("DBLP", "ICDE", "ICDE Papers '84-'05", self.dblp.icde.len()),
            ("DBLP", "VLDB", "VLDB Papers '75-'05", self.dblp.vldb.len()),
            ("Books", "Amazon", "Amazon query on 'Database'", self.books.amazon.len()),
            ("Books", "Barnes", "Barnes & Noble query on 'Database'", self.books.barnes.len()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_builds_deterministically() {
        let a = Corpus::build(CorpusConfig::tiny());
        let b = Corpus::build(CorpusConfig::tiny());
        assert_eq!(a.store.len(), b.store.len());
        for (x, y) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(x.text(), y.text());
        }
    }

    #[test]
    fn table1_counts_match_config() {
        let c = Corpus::build(CorpusConfig::tiny());
        let t1 = c.table1();
        assert_eq!(t1.len(), 9);
        assert_eq!(t1[1].3, 30); // IMDB
        assert_eq!(t1[8].3, 60); // Barnes
    }

    #[test]
    fn scaled_supports_ten_times_paper_size() {
        let d = CorpusConfig::default();
        let s = CorpusConfig::scaled(10.0);
        assert_eq!(s.n_barnes, 10 * d.n_barnes);
        assert_eq!(s.n_vldb, 10 * d.n_vldb);
        assert_eq!(s.dblife_noise, 10 * d.dblife_noise);
        // every knob at 10× stays inside the injective-title guarantee
        // (any index — see words::titles_stay_injective_past_the_pool_product)
        assert!(s.n_barnes > 12_288, "must actually cross the pool product");
    }

    #[test]
    fn default_matches_paper_sizes() {
        let d = CorpusConfig::default();
        assert_eq!(d.n_imdb, 250);
        assert_eq!(d.n_vldb, 2136);
        assert_eq!(d.n_amazon, 2490);
        assert_eq!(d.n_barnes, 5000);
    }

    #[test]
    fn all_tasks_construct() {
        let c = Corpus::build(CorpusConfig::tiny());
        for id in TaskId::TABLE2 {
            let t = c.task(id, Some(10));
            assert!(!t.tables.is_empty(), "{:?}", id);
            assert!(!t.program.rules.is_empty());
        }
        for id in TaskId::DBLIFE {
            let t = c.task(id, None);
            assert!(!t.tables.is_empty(), "{:?}", id);
        }
    }
}
