//! The question space of the next-effort assistant (§5.1): questions of
//! the form "what is the value of feature f for attribute a?", and the
//! program surgery that folds an answer back into a description rule.

use iflex_alog::{BodyAtom, ConstraintArg, Program, Rule};
use iflex_features::{FeatureArg, FeatureRegistry, FeatureValue};
use std::collections::BTreeSet;

/// An extraction attribute: an output variable of an IE predicate that has
/// description rules.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Attribute {
    /// The IE predicate the attribute belongs to (`extractHouses`).
    pub pred: String,
    /// The variable name inside the description rule (`p`).
    pub var: String,
    /// Position in the IE predicate's head.
    pub pos: usize,
}

impl Attribute {
    /// Human-readable name (`extractHouses.p`).
    pub fn display(&self) -> String {
        format!("{}.{}", self.pred, self.var)
    }
}

/// A concrete question the assistant may ask.
#[derive(Debug, Clone, PartialEq)]
pub struct Question {
    /// The attr.
    pub attr: Attribute,
    /// The feature.
    pub feature: String,
    /// The rendered question text shown to the developer.
    pub text: String,
}

/// The developer's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A concrete feature value; iFlex adds `feature(attr) = value`.
    Value(FeatureArg),
    /// "I do not know" — the question is retired without a constraint.
    DontKnow,
}

/// Collects the attributes of every IE predicate that has description
/// rules: the head's non-input variables.
pub fn attributes(program: &Program) -> Vec<Attribute> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for r in program.description_rules() {
        for (pos, a) in r.head.args.iter().enumerate() {
            if a.input {
                continue;
            }
            let attr = Attribute {
                pred: r.head.name.clone(),
                var: a.var.clone(),
                pos,
            };
            if seen.insert(attr.clone()) {
                out.push(attr);
            }
        }
    }
    out
}

/// Features already constrained for `attr` in its description rules.
pub fn constrained_features(program: &Program, attr: &Attribute) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for r in program.description_rules() {
        if r.head.name != attr.pred {
            continue;
        }
        for atom in &r.body {
            if let BodyAtom::Constraint { feature, var, .. } = atom {
                if var == &attr.var {
                    out.insert(feature.clone());
                }
            }
        }
    }
    out
}

/// The full question space: every (attribute, feature) pair not yet
/// constrained and not yet asked.
pub fn question_space(
    program: &Program,
    features: &FeatureRegistry,
    asked: &BTreeSet<(String, String)>,
) -> Vec<Question> {
    let mut out = Vec::new();
    for attr in attributes(program) {
        let constrained = constrained_features(program, &attr);
        for fname in features.names() {
            if constrained.contains(fname) {
                continue;
            }
            if asked.contains(&(attr.display(), fname.to_string())) {
                continue;
            }
            let text = features
                .get(fname)
                .map(|f| f.question(&attr.display()))
                .unwrap_or_else(|_| format!("what is {fname} for {}?", attr.display()));
            out.push(Question {
                attr: attr.clone(),
                feature: fname.to_string(),
                text,
            });
        }
    }
    out
}

/// Converts a [`FeatureArg`] answer into the AST's constraint value.
pub fn to_constraint_arg(arg: &FeatureArg) -> ConstraintArg {
    match arg {
        FeatureArg::Tri(v) => ConstraintArg::Symbol(v.to_string()),
        FeatureArg::Num(n) => ConstraintArg::Num(*n),
        FeatureArg::Text(t) => ConstraintArg::Str(t.clone()),
    }
}

/// Returns a copy of `program` with `feature(attr) = value` appended to
/// every description rule of the attribute's IE predicate (§5.1: "iFlex
/// adds the predicate f(a) = v to the description rule").
pub fn add_constraint(
    program: &Program,
    attr: &Attribute,
    feature: &str,
    value: &FeatureArg,
) -> Program {
    let mut out = program.clone();
    for r in out.rules.iter_mut() {
        if !r.is_description() || r.head.name != attr.pred {
            continue;
        }
        push_constraint(r, &attr.var, feature, value);
    }
    out
}

fn push_constraint(rule: &mut Rule, var: &str, feature: &str, value: &FeatureArg) {
    rule.body.push(BodyAtom::Constraint {
        feature: feature.to_string(),
        var: var.to_string(),
        value: to_constraint_arg(value),
    });
}

/// Builds the program a simulation probe executes for one candidate
/// refinement (DESIGN.md §9). When the query is a single rule that calls
/// the probed IE predicate directly, the query rule is split into a
/// candidate-independent **base rule** that exposes every extraction
/// attribute, plus a σ **overlay rule** carrying only the probed
/// constraint:
///
/// ```text
/// q__probe_base(title, votes) :- imdb(x), extractIMDB(#x, title, votes), votes < 25000.
/// q__probe(title)             :- q__probe_base(title, votes), max-value(votes) = 500000.
/// ```
///
/// The base rule's fingerprint is the same for every candidate answer of
/// every question in a strategy call, so with the incremental engine it is
/// evaluated once and served from cache thereafter — each probe evaluates
/// only its overlay, shrinking Simulation cost from
/// O(candidates × program) toward O(candidates × cone). The overlay
/// constrains the base result *after* extraction rather than inside the
/// description rule (no §4.2 prior re-checks), which under superset
/// semantics yields an upper bound of the refined size — the quantity the
/// simulation ranks candidates by. When the program shape does not admit
/// the split (union query, or the IE predicate is not called from the
/// query rule), the exact refined program from [`add_constraint`] is
/// probed instead.
pub fn probe_program(
    program: &Program,
    attr: &Attribute,
    feature: &str,
    value: &FeatureArg,
) -> Program {
    overlay_probe(program, attr, feature, value)
        .unwrap_or_else(|| add_constraint(program, attr, feature, value))
}

fn overlay_probe(
    program: &Program,
    attr: &Attribute,
    feature: &str,
    value: &FeatureArg,
) -> Option<Program> {
    use iflex_alog::{Arg, Head, HeadArg, Term};
    let mut query_rules = program
        .rules
        .iter()
        .filter(|r| !r.is_description() && r.head.name == program.query);
    let rule = query_rules.next()?;
    if query_rules.next().is_some() {
        return None; // union query: per-branch column mapping may differ
    }
    // The variable the query rule binds at the probed attribute position.
    // A repeated call site would make the mapping ambiguous (the real
    // refinement constrains every call site); leave those to the fallback.
    let mut sites = rule.body.iter().filter_map(|a| match a {
        BodyAtom::Pred { name, args } if name == &attr.pred => Some(args),
        _ => None,
    });
    let args = sites.next()?;
    if sites.next().is_some() {
        return None;
    }
    let caller = match args.get(attr.pos) {
        Some(Arg {
            term: Term::Var(v), ..
        }) => v.clone(),
        _ => return None,
    };
    // The base head exposes the query head plus every extraction attribute
    // bound in this rule, so one base result serves probes of any
    // attribute.
    let description_preds: BTreeSet<&str> = program
        .description_rules()
        .map(|r| r.head.name.as_str())
        .collect();
    // Splitting is only a faithful estimate for single-extraction queries:
    // when the rule joins several IE predicates, a description-rule
    // constraint prunes join partners *before* the join, which a post-join
    // σ cannot imitate — those programs keep exact probes.
    let ie_calls = rule
        .body
        .iter()
        .filter(|a| matches!(a, BodyAtom::Pred { name, .. } if description_preds.contains(name.as_str())))
        .count();
    if ie_calls != 1 {
        return None;
    }
    let mut base_vars: Vec<String> = rule.head.args.iter().map(|h| h.var.clone()).collect();
    for atom in &rule.body {
        if let BodyAtom::Pred { name, args } = atom {
            if !description_preds.contains(name.as_str()) {
                continue;
            }
            for a in args {
                if let (false, Term::Var(v)) = (a.input, &a.term) {
                    if !base_vars.contains(v) {
                        base_vars.push(v.clone());
                    }
                }
            }
        }
    }
    if !base_vars.contains(&caller) {
        return None;
    }
    let base_name = format!("{}__probe_base", program.query);
    let probe_name = format!("{}__probe", program.query);
    let plain = |v: &String| HeadArg {
        var: v.clone(),
        input: false,
        annotated: false,
    };
    let base_rule = Rule {
        head: Head {
            name: base_name.clone(),
            args: base_vars.iter().map(plain).collect(),
            existence: false,
        },
        body: rule.body.clone(),
    };
    let overlay = Rule {
        // Mirror the original head (annotations included) so the probe's
        // size estimate tracks the real program's projected result.
        head: Head {
            name: probe_name.clone(),
            args: rule.head.args.clone(),
            existence: rule.head.existence,
        },
        body: vec![
            BodyAtom::Pred {
                name: base_name,
                args: base_vars
                    .iter()
                    .map(|v| Arg {
                        term: Term::Var(v.clone()),
                        input: false,
                    })
                    .collect(),
            },
            BodyAtom::Constraint {
                feature: feature.to_string(),
                var: caller,
                value: to_constraint_arg(value),
            },
        ],
    };
    let mut out = Program {
        // The original query rule is replaced by the split pair: probing
        // must not evaluate the unsplit rule a second time.
        rules: program
            .rules
            .iter()
            .filter(|r| r.is_description() || r.head.name != program.query)
            .cloned()
            .collect(),
        query: probe_name,
    };
    out.rules.push(base_rule);
    out.rules.push(overlay);
    Some(out)
}

/// The answer space the simulation strategy sums over for a feature.
/// Tri-state features have a closed space; numeric features get
/// data-independent ladder candidates; free-text features cannot be
/// enumerated (empty → the simulation strategy skips them).
pub fn answer_space(feature: &str) -> Vec<FeatureArg> {
    match feature {
        "numeric" | "bold-font" | "italic-font" | "underlined" | "hyperlinked" | "in-title"
        | "in-list" | "first-half" | "capitalized" | "person-name" => vec![
            FeatureArg::Tri(FeatureValue::Yes),
            FeatureArg::Tri(FeatureValue::DistinctYes),
            FeatureArg::Tri(FeatureValue::No),
        ],
        "max-length" => vec![
            FeatureArg::Num(12.0),
            FeatureArg::Num(18.0),
            FeatureArg::Num(40.0),
            FeatureArg::Num(80.0),
        ],
        "min-length" => vec![FeatureArg::Num(2.0), FeatureArg::Num(4.0), FeatureArg::Num(8.0)],
        "prec-label-max-dist" => vec![
            FeatureArg::Num(100.0),
            FeatureArg::Num(300.0),
            FeatureArg::Num(700.0),
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_alog::parse_program;

    fn prog() -> Program {
        parse_program(
            r#"
            houses(x, p, h) :- housePages(x), extractHouses(#x, p, h).
            extractHouses(#x, p, h) :- from(#x, p), from(#x, h), numeric(p) = yes.
        "#,
        )
        .unwrap()
    }

    #[test]
    fn attributes_found() {
        let attrs = attributes(&prog());
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].display(), "extractHouses.p");
        assert_eq!(attrs[1].pos, 2);
    }

    #[test]
    fn constrained_features_detected() {
        let p = prog();
        let attrs = attributes(&p);
        assert!(constrained_features(&p, &attrs[0]).contains("numeric"));
        assert!(constrained_features(&p, &attrs[1]).is_empty());
    }

    #[test]
    fn question_space_excludes_constrained_and_asked() {
        let p = prog();
        let reg = FeatureRegistry::default();
        let mut asked = BTreeSet::new();
        let qs = question_space(&p, &reg, &asked);
        // p already has numeric constrained → one fewer question for p
        let p_questions = qs
            .iter()
            .filter(|q| q.attr.var == "p")
            .count();
        let h_questions = qs.iter().filter(|q| q.attr.var == "h").count();
        assert_eq!(h_questions, p_questions + 1);
        // mark one asked
        asked.insert(("extractHouses.h".to_string(), "bold-font".to_string()));
        let qs2 = question_space(&p, &reg, &asked);
        assert_eq!(qs2.len(), qs.len() - 1);
    }

    #[test]
    fn add_constraint_modifies_description_rule() {
        let p = prog();
        let attrs = attributes(&p);
        let p2 = add_constraint(&p, &attrs[1], "bold-font", &FeatureArg::yes());
        let desc = p2.description_rules().next().unwrap();
        assert!(desc.to_string().contains("bold-font(h) = yes"));
        // original untouched
        assert!(!prog()
            .description_rules()
            .next()
            .unwrap()
            .to_string()
            .contains("bold-font"));
    }

    #[test]
    fn answer_spaces() {
        assert_eq!(answer_space("bold-font").len(), 3);
        assert!(!answer_space("max-length").is_empty());
        assert!(answer_space("preceded-by").is_empty());
    }

    #[test]
    fn constraint_arg_conversion() {
        assert_eq!(
            to_constraint_arg(&FeatureArg::yes()),
            ConstraintArg::Symbol("yes".into())
        );
        assert_eq!(
            to_constraint_arg(&FeatureArg::Num(7.0)),
            ConstraintArg::Num(7.0)
        );
        assert_eq!(
            to_constraint_arg(&FeatureArg::Text("x".into())),
            ConstraintArg::Str("x".into())
        );
    }
}
