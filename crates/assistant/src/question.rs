//! The question space of the next-effort assistant (§5.1): questions of
//! the form "what is the value of feature f for attribute a?", and the
//! program surgery that folds an answer back into a description rule.

use iflex_alog::{BodyAtom, ConstraintArg, Program, Rule};
use iflex_features::{FeatureArg, FeatureRegistry, FeatureValue};
use std::collections::BTreeSet;

/// An extraction attribute: an output variable of an IE predicate that has
/// description rules.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Attribute {
    /// The IE predicate the attribute belongs to (`extractHouses`).
    pub pred: String,
    /// The variable name inside the description rule (`p`).
    pub var: String,
    /// Position in the IE predicate's head.
    pub pos: usize,
}

impl Attribute {
    /// Human-readable name (`extractHouses.p`).
    pub fn display(&self) -> String {
        format!("{}.{}", self.pred, self.var)
    }
}

/// A concrete question the assistant may ask.
#[derive(Debug, Clone, PartialEq)]
pub struct Question {
    /// The attr.
    pub attr: Attribute,
    /// The feature.
    pub feature: String,
    /// The rendered question text shown to the developer.
    pub text: String,
}

/// The developer's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A concrete feature value; iFlex adds `feature(attr) = value`.
    Value(FeatureArg),
    /// "I do not know" — the question is retired without a constraint.
    DontKnow,
}

/// Collects the attributes of every IE predicate that has description
/// rules: the head's non-input variables.
pub fn attributes(program: &Program) -> Vec<Attribute> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for r in program.description_rules() {
        for (pos, a) in r.head.args.iter().enumerate() {
            if a.input {
                continue;
            }
            let attr = Attribute {
                pred: r.head.name.clone(),
                var: a.var.clone(),
                pos,
            };
            if seen.insert(attr.clone()) {
                out.push(attr);
            }
        }
    }
    out
}

/// Features already constrained for `attr` in its description rules.
pub fn constrained_features(program: &Program, attr: &Attribute) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for r in program.description_rules() {
        if r.head.name != attr.pred {
            continue;
        }
        for atom in &r.body {
            if let BodyAtom::Constraint { feature, var, .. } = atom {
                if var == &attr.var {
                    out.insert(feature.clone());
                }
            }
        }
    }
    out
}

/// The full question space: every (attribute, feature) pair not yet
/// constrained and not yet asked.
pub fn question_space(
    program: &Program,
    features: &FeatureRegistry,
    asked: &BTreeSet<(String, String)>,
) -> Vec<Question> {
    let mut out = Vec::new();
    for attr in attributes(program) {
        let constrained = constrained_features(program, &attr);
        for fname in features.names() {
            if constrained.contains(fname) {
                continue;
            }
            if asked.contains(&(attr.display(), fname.to_string())) {
                continue;
            }
            let text = features
                .get(fname)
                .map(|f| f.question(&attr.display()))
                .unwrap_or_else(|_| format!("what is {fname} for {}?", attr.display()));
            out.push(Question {
                attr: attr.clone(),
                feature: fname.to_string(),
                text,
            });
        }
    }
    out
}

/// Converts a [`FeatureArg`] answer into the AST's constraint value.
pub fn to_constraint_arg(arg: &FeatureArg) -> ConstraintArg {
    match arg {
        FeatureArg::Tri(v) => ConstraintArg::Symbol(v.to_string()),
        FeatureArg::Num(n) => ConstraintArg::Num(*n),
        FeatureArg::Text(t) => ConstraintArg::Str(t.clone()),
    }
}

/// Returns a copy of `program` with `feature(attr) = value` appended to
/// every description rule of the attribute's IE predicate (§5.1: "iFlex
/// adds the predicate f(a) = v to the description rule").
pub fn add_constraint(
    program: &Program,
    attr: &Attribute,
    feature: &str,
    value: &FeatureArg,
) -> Program {
    let mut out = program.clone();
    for r in out.rules.iter_mut() {
        if !r.is_description() || r.head.name != attr.pred {
            continue;
        }
        push_constraint(r, &attr.var, feature, value);
    }
    out
}

fn push_constraint(rule: &mut Rule, var: &str, feature: &str, value: &FeatureArg) {
    rule.body.push(BodyAtom::Constraint {
        feature: feature.to_string(),
        var: var.to_string(),
        value: to_constraint_arg(value),
    });
}

/// The answer space the simulation strategy sums over for a feature.
/// Tri-state features have a closed space; numeric features get
/// data-independent ladder candidates; free-text features cannot be
/// enumerated (empty → the simulation strategy skips them).
pub fn answer_space(feature: &str) -> Vec<FeatureArg> {
    match feature {
        "numeric" | "bold-font" | "italic-font" | "underlined" | "hyperlinked" | "in-title"
        | "in-list" | "first-half" | "capitalized" | "person-name" => vec![
            FeatureArg::Tri(FeatureValue::Yes),
            FeatureArg::Tri(FeatureValue::DistinctYes),
            FeatureArg::Tri(FeatureValue::No),
        ],
        "max-length" => vec![
            FeatureArg::Num(12.0),
            FeatureArg::Num(18.0),
            FeatureArg::Num(40.0),
            FeatureArg::Num(80.0),
        ],
        "min-length" => vec![FeatureArg::Num(2.0), FeatureArg::Num(4.0), FeatureArg::Num(8.0)],
        "prec-label-max-dist" => vec![
            FeatureArg::Num(100.0),
            FeatureArg::Num(300.0),
            FeatureArg::Num(700.0),
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_alog::parse_program;

    fn prog() -> Program {
        parse_program(
            r#"
            houses(x, p, h) :- housePages(x), extractHouses(#x, p, h).
            extractHouses(#x, p, h) :- from(#x, p), from(#x, h), numeric(p) = yes.
        "#,
        )
        .unwrap()
    }

    #[test]
    fn attributes_found() {
        let attrs = attributes(&prog());
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].display(), "extractHouses.p");
        assert_eq!(attrs[1].pos, 2);
    }

    #[test]
    fn constrained_features_detected() {
        let p = prog();
        let attrs = attributes(&p);
        assert!(constrained_features(&p, &attrs[0]).contains("numeric"));
        assert!(constrained_features(&p, &attrs[1]).is_empty());
    }

    #[test]
    fn question_space_excludes_constrained_and_asked() {
        let p = prog();
        let reg = FeatureRegistry::default();
        let mut asked = BTreeSet::new();
        let qs = question_space(&p, &reg, &asked);
        // p already has numeric constrained → one fewer question for p
        let p_questions = qs
            .iter()
            .filter(|q| q.attr.var == "p")
            .count();
        let h_questions = qs.iter().filter(|q| q.attr.var == "h").count();
        assert_eq!(h_questions, p_questions + 1);
        // mark one asked
        asked.insert(("extractHouses.h".to_string(), "bold-font".to_string()));
        let qs2 = question_space(&p, &reg, &asked);
        assert_eq!(qs2.len(), qs.len() - 1);
    }

    #[test]
    fn add_constraint_modifies_description_rule() {
        let p = prog();
        let attrs = attributes(&p);
        let p2 = add_constraint(&p, &attrs[1], "bold-font", &FeatureArg::yes());
        let desc = p2.description_rules().next().unwrap();
        assert!(desc.to_string().contains("bold-font(h) = yes"));
        // original untouched
        assert!(!prog()
            .description_rules()
            .next()
            .unwrap()
            .to_string()
            .contains("bold-font"));
    }

    #[test]
    fn answer_spaces() {
        assert_eq!(answer_space("bold-font").len(), 3);
        assert!(!answer_space("max-length").is_empty());
        assert!(answer_space("preceded-by").is_empty());
    }

    #[test]
    fn constraint_arg_conversion() {
        assert_eq!(
            to_constraint_arg(&FeatureArg::yes()),
            ConstraintArg::Symbol("yes".into())
        );
        assert_eq!(
            to_constraint_arg(&FeatureArg::Num(7.0)),
            ConstraintArg::Num(7.0)
        );
        assert_eq!(
            to_constraint_arg(&FeatureArg::Text("x".into())),
            ConstraintArg::Str("x".into())
        );
    }
}
