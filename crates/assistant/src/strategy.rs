//! Question-selection strategies (§5.1): **sequential** (predefined order
//! over the question space) and **simulation** (execute each candidate
//! refinement and pick the question with the largest expected reduction).

use crate::feedback::Examples;
use crate::probe::dynamic_answer_space;
use crate::question::{answer_space, attributes, probe_program, question_space, Attribute, Question};
use iflex_alog::{BodyAtom, Program, Term};
use iflex_engine::{Engine, Sample};
use std::collections::BTreeSet;

/// Everything a strategy may look at when choosing the next question.
pub struct AssistContext<'a> {
    /// The program.
    pub program: &'a Program,
    /// The engine.
    pub engine: &'a mut Engine,
    /// Questions already asked (attribute display name, feature).
    pub asked: &'a BTreeSet<(String, String)>,
    /// Sampling policy used for simulations.
    pub sample: Sample,
    /// Probability the developer answers "I do not know" (§5.1).
    pub alpha: f64,
    /// Result size (tuples) of the current program on the sample.
    pub current_size: usize,
    /// Marked-up example values (§5.1.1); prune contradicted answers.
    pub examples: Examples,
}

/// A question-selection strategy.
pub trait Strategy {
    /// The strategy / feature name.
    fn name(&self) -> &'static str;

    /// Picks the next question, or `None` when the space is exhausted.
    fn next_question(&mut self, ctx: &mut AssistContext<'_>) -> Option<Question>;
}

/// The curated feature order of the sequential strategy: appearance first
/// (quick to answer visually), then location, then semantics.
pub const FEATURE_ORDER: &[&str] = &[
    "numeric",
    "bold-font",
    "italic-font",
    "underlined",
    "hyperlinked",
    "in-title",
    "in-list",
    "capitalized",
    "person-name",
    "preceded-by",
    "followed-by",
    "max-value",
    "min-value",
    "max-length",
    "starts-with",
    "ends-with",
    "prec-label-contains",
    "prec-label-max-dist",
    "first-half",
    "min-length",
];

fn feature_rank(name: &str) -> usize {
    FEATURE_ORDER
        .iter()
        .position(|f| *f == name)
        .unwrap_or(FEATURE_ORDER.len())
}

/// Importance of an attribute (§5.1: "whether an attribute participates in
/// a join, commonly appears in a variety of Web pages, etc."): higher
/// scores are asked about first.
pub fn attribute_importance(program: &Program, attr: &Attribute) -> u32 {
    let mut score = 0u32;
    for rule in program.rules.iter().filter(|r| !r.is_description()) {
        // The caller variable bound to this attribute's position.
        let mut caller_vars: Vec<&str> = Vec::new();
        for atom in &rule.body {
            if let BodyAtom::Pred { name, args } = atom {
                if name == &attr.pred {
                    if let Some(arg) = args.get(attr.pos) {
                        if let Term::Var(v) = &arg.term {
                            caller_vars.push(v);
                        }
                    }
                }
            }
        }
        for v in caller_vars {
            // participates in a comparison?
            for atom in &rule.body {
                match atom {
                    BodyAtom::Compare { left, right, .. }
                        if (left.var() == Some(v) || right.var() == Some(v)) => {
                            score += 3;
                        }
                    BodyAtom::Pred { name, args } if name != &attr.pred
                        && args.iter().any(|a| a.term.var() == Some(v)) => {
                            score += 2; // join / p-function participation
                        }
                    _ => {}
                }
            }
            // exported by the head?
            if rule.head.args.iter().any(|a| a.var == v) {
                score += 1;
            }
        }
    }
    score
}

/// Orders the whole question space the way the sequential strategy walks
/// it: attributes by decreasing importance, features by the curated order.
pub fn ordered_questions(ctx: &AssistContext<'_>) -> Vec<Question> {
    let mut qs = question_space(ctx.program, ctx.engine.features(), ctx.asked);
    let attrs = attributes(ctx.program);
    let importance: std::collections::BTreeMap<String, u32> = attrs
        .iter()
        .map(|a| (a.display(), attribute_importance(ctx.program, a)))
        .collect();
    qs.sort_by_key(|q| {
        (
            std::cmp::Reverse(*importance.get(&q.attr.display()).unwrap_or(&0)),
            q.attr.display(),
            feature_rank(&q.feature),
        )
    });
    qs
}

/// §5.1 "Sequential Strategy".
#[derive(Debug, Default)]
pub struct Sequential;

impl Strategy for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn next_question(&mut self, ctx: &mut AssistContext<'_>) -> Option<Question> {
        ordered_questions(ctx).into_iter().next()
    }
}

/// §5.1 "Simulation Strategy": selects the question minimizing the
/// expected result size after the developer's answer.
#[derive(Debug)]
pub struct Simulation {
    /// Cap on how many candidate questions are simulated per iteration
    /// (the space can be large; candidates are taken in sequential order).
    pub max_candidates: usize,
}

impl Default for Simulation {
    fn default() -> Self {
        Simulation { max_candidates: 24 }
    }
}

impl Strategy for Simulation {
    fn name(&self) -> &'static str {
        "simulation"
    }

    fn next_question(&mut self, ctx: &mut AssistContext<'_>) -> Option<Question> {
        let by_attr = ordered_questions(ctx);
        if by_attr.is_empty() {
            return None;
        }
        let ordered = interleave_by_attr(by_attr);

        // Phase A (serial): derive and prune answer spaces, honoring the
        // candidate cap in interleaved order. Dynamic spaces probe the
        // live engine, so this phase stays on the session thread.
        let mut cands: Vec<(usize, Vec<iflex_features::FeatureArg>)> = Vec::new();
        for (i, q) in ordered.iter().enumerate() {
            let mut space = answer_space(&q.feature);
            if space.is_empty() {
                // derive an answer space from the data being queried (§5.1)
                space = dynamic_answer_space(
                    ctx.engine,
                    ctx.program,
                    &q.attr,
                    &q.feature,
                    ctx.sample,
                );
            }
            if space.is_empty() {
                continue; // cannot simulate free-text answers
            }
            // §5.1.1: answers the marked-up examples contradict need not
            // be simulated.
            space.retain(|v| ctx.examples.consistent(ctx.engine, &q.attr, &q.feature, v));
            if space.is_empty() {
                continue;
            }
            if cands.len() == self.max_candidates {
                break;
            }
            cands.push((i, space));
        }

        // Phase B: flatten every (candidate, answer) refinement into one
        // job list and execute it — on snapshot engines across worker
        // threads when the engine's thread budget allows, serially on the
        // live engine otherwise. Results come back in job order either
        // way, so the fold below is oblivious to how the jobs ran.
        let mut jobs: Vec<Program> = Vec::new();
        let mut ranges: Vec<(usize, usize, usize)> = Vec::new(); // (ordered idx, start, len)
        for (i, space) in &cands {
            let q = &ordered[*i];
            let start = jobs.len();
            for v in space {
                // Overlay probes (DESIGN.md §9): the candidate constraint
                // is stacked over the unchanged base query relation, so
                // the incremental cache serves the base result and each
                // probe evaluates only its σ overlay.
                jobs.push(probe_program(ctx.program, &q.attr, &q.feature, v));
            }
            ranges.push((*i, start, space.len()));
        }
        let results = simulate_jobs(ctx.engine, &jobs, ctx.sample, ctx.current_size);

        // Phase C (serial): fold expected sizes in candidate order — the
        // same arithmetic, in the same order, as the serial walk.
        //
        // (expected size, expected assignments, index): primary criterion
        // is the paper's expected result size; expected assignments break
        // ties so that refinements invisible to the projected size (e.g.
        // exactifying one side of a conjunctive condition) still register
        // as progress.
        let mut best: Option<(f64, f64, usize)> = None;
        for (i, start, len) in ranges {
            // expected = α·|current| + Σ_v (1-α)/|V| · |exec(g(P,(a,f,v)))|
            // Answers whose simulated result is empty are contradicted by
            // the data (superset semantics: the true result is contained
            // in every approximate result) — a truthful developer cannot
            // give them, so they are excluded and V renormalized.
            let feasible: Vec<(usize, usize)> = results[start..start + len]
                .iter()
                .copied()
                .filter(|&(s, _)| s > 0)
                .collect();
            if feasible.is_empty() {
                continue; // every answer contradicted: nothing to learn
            }
            let per_answer = (1.0 - ctx.alpha) / feasible.len() as f64;
            let mut expected = ctx.alpha * ctx.current_size as f64;
            let mut expected_assigns = 0.0;
            for (s, a) in &feasible {
                expected += per_answer * *s as f64;
                expected_assigns += per_answer * *a as f64;
            }
            let better = match best {
                None => true,
                Some((bs, ba, _)) => {
                    expected + 1e-9 < bs
                        || ((expected - bs).abs() <= 1e-9 && expected_assigns + 1e-9 < ba)
                }
            };
            if better {
                best = Some((expected, expected_assigns, i));
            }
        }
        match best {
            Some((_, _, i)) => Some(ordered[i].clone()),
            // Nothing simulatable: fall back to the sequential order.
            None => ordered.into_iter().next(),
        }
    }
}

/// Interleaves questions round-robin across attributes so every attribute
/// gets simulated within the budget (the sequential attribute-exhaustion
/// order would starve late attributes).
fn interleave_by_attr(by_attr: Vec<Question>) -> Vec<Question> {
    let mut buckets: Vec<(String, std::collections::VecDeque<Question>)> = Vec::new();
    for q in by_attr {
        let key = q.attr.display();
        match buckets.iter_mut().find(|(k, _)| *k == key) {
            Some((_, b)) => b.push_back(q),
            None => {
                let mut d = std::collections::VecDeque::new();
                d.push_back(q);
                buckets.push((key, d));
            }
        }
    }
    let mut ordered: Vec<Question> = Vec::new();
    loop {
        let mut any = false;
        for (_, b) in buckets.iter_mut() {
            if let Some(q) = b.pop_front() {
                ordered.push(q);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    ordered
}

/// Executes one simulated refinement, reporting the projected result size
/// and assignment count. A failed probe run carries no information, so it
/// reports the current size (and saturated assignments, so it never wins
/// a tie-break).
///
/// Probes ride the engine's incremental cache (DESIGN.md §9): the refined
/// candidate program shares every rule fingerprint with the base program
/// except the one refined rule and its dependency cone, so a probe
/// re-evaluates only that **overlay** — upstream results are served from
/// the cache the base iteration populated, shrinking Simulation-strategy
/// cost from O(candidates × program) toward O(candidates × cone). With
/// `Limits::use_incremental` off (ablation) every probe re-runs the whole
/// program.
fn simulate_probe(
    engine: &mut Engine,
    refined: &Program,
    sample: Sample,
    current_size: usize,
) -> (usize, usize) {
    use iflex_engine::obs::{SpanId, SpanKind};
    // The probe span wraps the whole simulated run; the engine's own
    // `run → rule → operator` spans nest under it via `trace_parent`.
    let probe_span = match engine.tracer.ctx(engine.trace_parent) {
        Some((t, parent)) => t.begin(parent, SpanKind::Probe, "probe"),
        None => SpanId::NONE,
    };
    let saved = engine.trace_parent;
    engine.trace_parent = probe_span;
    let out = match engine.run_sampled(refined, sample) {
        Ok(t) => {
            let sz = t.expanded_len(engine.store()).min(usize::MAX as u64) as usize;
            (sz, engine.stats.assignments_produced)
        }
        Err(_) => (current_size, usize::MAX), // failure → no info
    };
    engine.trace_parent = saved;
    engine.tracer.end_with(
        probe_span,
        &[("size", out.0 as u64), ("assignments", out.1.min(u64::MAX as usize) as u64)],
    );
    out
}

/// Runs every simulation job, returning results in job order.
///
/// With a thread budget above one, jobs are split into contiguous chunks
/// and each chunk runs on its own [`Engine::snapshot`] — sharing the
/// document store, fault plan, and feature memo with the live engine, and
/// starting from a **copy of the live incremental cache** (so every probe
/// reuses the base program's upstream rule results and overlays only its
/// probed cone). Snapshot engines run their probes serially
/// (`threads = 1`) so simulation-level fan-out does not multiply with
/// operator-level fan-out. Warm cache entries flow back via
/// [`Engine::absorb_cache`] in chunk order. Because each job is an
/// independent, deterministic engine run and results are folded in job
/// order, the parallel path returns exactly what the serial path would.
fn simulate_jobs(
    engine: &mut Engine,
    jobs: &[Program],
    sample: Sample,
    current_size: usize,
) -> Vec<(usize, usize)> {
    let threads = engine.limits.threads.max(1);
    if threads <= 1 || jobs.len() < 2 {
        return jobs
            .iter()
            .map(|p| simulate_probe(engine, p, sample, current_size))
            .collect();
    }
    let chunk = jobs.len().div_ceil(threads);
    let snapshots: Vec<Engine> = jobs
        .chunks(chunk)
        .map(|_| {
            let mut e = engine.snapshot();
            e.limits.threads = 1;
            e
        })
        .collect();
    let joined = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .zip(snapshots)
            .map(|(cjobs, mut eng)| {
                scope.spawn(move || {
                    let out: Vec<(usize, usize)> = cjobs
                        .iter()
                        .map(|p| simulate_probe(&mut eng, p, sample, current_size))
                        .collect();
                    (out, eng)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<_>>()
    });
    let mut results = Vec::with_capacity(jobs.len());
    for (cjobs, outcome) in jobs.chunks(chunk).zip(joined) {
        match outcome {
            Ok((out, eng)) => {
                results.extend(out);
                engine.absorb_cache(eng);
            }
            // A panicking probe worker yields no information for its
            // chunk — the same treatment as a failed probe run.
            Err(_) => results.extend(vec![(current_size, usize::MAX); cjobs.len()]),
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_alog::parse_program;
    use iflex_ctable::CompactTable;
    use iflex_ctable::Value;
    use iflex_text::DocumentStore;
    use std::sync::Arc;

    fn engine_with_pages() -> Engine {
        let mut store = DocumentStore::new();
        let a = store.add_markup("noise 7 words <b>42</b> more 99 noise");
        let b = store.add_markup("plain 5 page <b>77</b> stuff 1234");
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &[a, b]);
        eng.add_table(
            "limits",
            CompactTable::from_exact_rows(vec!["l".into()], vec![vec![Value::Num(50.0)]]),
        );
        eng
    }

    fn prog() -> Program {
        parse_program(
            r#"
            q(x, v) :- pages(x), extractV(#x, v), v < 1000.
            extractV(#x, v) :- from(#x, v), numeric(v) = yes.
        "#,
        )
        .unwrap()
    }

    #[test]
    fn importance_prefers_compared_attributes() {
        let p = parse_program(
            r#"
            q(x, v) :- pages(x), extractV(#x, v, w), v < 1000.
            extractV(#x, v, w) :- from(#x, v), from(#x, w).
        "#,
        )
        .unwrap();
        let attrs = attributes(&p);
        let v = attrs.iter().find(|a| a.var == "v").unwrap();
        let w = attrs.iter().find(|a| a.var == "w").unwrap();
        assert!(attribute_importance(&p, v) > attribute_importance(&p, w));
    }

    #[test]
    fn sequential_asks_in_feature_order() {
        let p = prog();
        let mut eng = engine_with_pages();
        let asked = BTreeSet::new();
        let mut ctx = AssistContext {
            program: &p,
            engine: &mut eng,
            asked: &asked,
            sample: Sample::new(1.0, 0),
            alpha: 0.1,
            current_size: 10,
            examples: Default::default(),
        };
        let q = Sequential.next_question(&mut ctx).unwrap();
        // numeric is already constrained; next in order is bold-font
        assert_eq!(q.feature, "bold-font");
    }

    #[test]
    fn asked_questions_are_skipped() {
        let p = prog();
        let mut eng = engine_with_pages();
        let mut asked = BTreeSet::new();
        asked.insert(("extractV.v".to_string(), "bold-font".to_string()));
        let mut ctx = AssistContext {
            program: &p,
            engine: &mut eng,
            asked: &asked,
            sample: Sample::new(1.0, 0),
            alpha: 0.1,
            current_size: 10,
            examples: Default::default(),
        };
        let q = Sequential.next_question(&mut ctx).unwrap();
        assert_ne!(
            (q.attr.display(), q.feature.clone()),
            ("extractV.v".to_string(), "bold-font".to_string())
        );
    }

    #[test]
    fn simulation_picks_a_reducing_question() {
        let p = prog();
        let mut eng = engine_with_pages();
        let asked = BTreeSet::new();
        let current = eng.run(&p).unwrap().len();
        let mut ctx = AssistContext {
            program: &p,
            engine: &mut eng,
            asked: &asked,
            sample: Sample::new(1.0, 0),
            alpha: 0.1,
            current_size: current,
            examples: Default::default(),
        };
        let q = Simulation::default().next_question(&mut ctx).unwrap();
        // Simulation must pick *some* simulatable question; on this corpus
        // the bold-font answer collapses each page to one number, so an
        // appearance or value-bound feature is expected.
        assert!(
            !answer_space(&q.feature).is_empty() || q.feature == "preceded-by"
                || q.feature == "followed-by" || q.feature == "max-value"
                || q.feature == "min-value",
            "{q:?}"
        );
    }

    #[test]
    fn simulation_choice_is_thread_count_invariant() {
        let p = prog();
        let pick = |threads: usize| {
            let mut eng = engine_with_pages();
            eng.limits.threads = threads;
            let asked = BTreeSet::new();
            let current = eng.run(&p).unwrap().len();
            let mut ctx = AssistContext {
                program: &p,
                engine: &mut eng,
                asked: &asked,
                sample: Sample::new(1.0, 0),
                alpha: 0.1,
                current_size: current,
                examples: Default::default(),
            };
            let q = Simulation::default().next_question(&mut ctx).unwrap();
            (q.attr.display(), q.feature)
        };
        let serial = pick(1);
        for threads in [2, 4, 8] {
            assert_eq!(pick(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn space_exhaustion_returns_none() {
        let p = prog();
        let mut eng = engine_with_pages();
        // mark everything asked
        let mut asked = BTreeSet::new();
        for q in question_space(&p, eng.features(), &BTreeSet::new()) {
            asked.insert((q.attr.display(), q.feature));
        }
        let mut ctx = AssistContext {
            program: &p,
            engine: &mut eng,
            asked: &asked,
            sample: Sample::new(1.0, 0),
            alpha: 0.1,
            current_size: 1,
            examples: Default::default(),
        };
        assert!(Sequential.next_question(&mut ctx).is_none());
        assert!(Simulation::default().next_question(&mut ctx).is_none());
    }
}
