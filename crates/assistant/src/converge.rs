//! Convergence detection (§5.1): notify the developer when the result set
//! and the number of produced assignments have been stable for `k`
//! iterations (the paper uses k = 3).

use iflex_ctable::TableStats;

/// Monitors per-iteration result statistics and reports convergence.
#[derive(Debug, Clone)]
pub struct ConvergenceMonitor {
    k: usize,
    history: Vec<(usize, usize)>,
}

impl ConvergenceMonitor {
    /// A monitor requiring `k` consecutive stable iterations.
    pub fn new(k: usize) -> Self {
        ConvergenceMonitor {
            k: k.max(1),
            history: Vec::new(),
        }
    }

    /// The paper's default (k = 3).
    pub fn paper_default() -> Self {
        Self::new(3)
    }

    /// Records one iteration's result statistics.
    pub fn observe(&mut self, stats: &TableStats) {
        self.history.push((stats.tuples, stats.assignments));
    }

    /// Number of iterations observed.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Per-iteration result sizes (tuple counts).
    pub fn sizes(&self) -> Vec<usize> {
        self.history.iter().map(|&(t, _)| t).collect()
    }

    /// The required stable-iteration count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// How many trailing observations are identical to the latest one —
    /// the monitor's progress toward `k` (1 after any lone observation,
    /// 0 before the first). Surfaced per iteration by the session tracer
    /// and the `exp_trace` timeline.
    pub fn stability_streak(&self) -> usize {
        let Some(last) = self.history.last() else {
            return 0;
        };
        self.history.iter().rev().take_while(|o| *o == last).count()
    }

    /// True when the last `k` observations are identical.
    pub fn converged(&self) -> bool {
        if self.history.len() < self.k {
            return false;
        }
        let tail = &self.history[self.history.len() - self.k..];
        tail.windows(2).all(|w| w[0] == w[1])
    }

    /// Clears the history (e.g. after switching from subset evaluation to
    /// the full input).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tuples: usize, assignments: usize) -> TableStats {
        TableStats {
            tuples,
            maybe_tuples: 0,
            assignments,
        }
    }

    #[test]
    fn converges_after_k_stable() {
        let mut m = ConvergenceMonitor::new(3);
        m.observe(&stats(10, 50));
        assert!(!m.converged());
        m.observe(&stats(5, 20));
        m.observe(&stats(5, 20));
        assert!(!m.converged()); // only 2 stable
        m.observe(&stats(5, 20));
        assert!(m.converged());
    }

    #[test]
    fn assignment_change_breaks_stability() {
        let mut m = ConvergenceMonitor::new(2);
        m.observe(&stats(5, 20));
        m.observe(&stats(5, 19)); // same tuples, fewer assignments
        assert!(!m.converged());
        m.observe(&stats(5, 19));
        assert!(m.converged());
    }

    #[test]
    fn reset_clears() {
        let mut m = ConvergenceMonitor::new(1);
        m.observe(&stats(1, 1));
        assert!(m.converged());
        m.reset();
        assert!(!m.converged());
        assert_eq!(m.iterations(), 0);
    }

    #[test]
    fn sizes_recorded() {
        let mut m = ConvergenceMonitor::paper_default();
        m.observe(&stats(60, 100));
        m.observe(&stats(10, 40));
        assert_eq!(m.sizes(), vec![60, 10]);
    }

    #[test]
    fn k_zero_clamps_to_one() {
        let mut m = ConvergenceMonitor::new(0);
        assert_eq!(m.k(), 1);
        // A k of 0 would declare convergence on an empty history (an empty
        // tail is vacuously stable); the clamp makes one observation the
        // minimum evidence.
        assert!(!m.converged());
        m.observe(&stats(4, 9));
        assert!(m.converged());
    }

    #[test]
    fn k_one_converges_on_any_single_observation() {
        let mut m = ConvergenceMonitor::new(1);
        assert!(!m.converged());
        assert_eq!(m.stability_streak(), 0);
        m.observe(&stats(100, 400));
        assert!(m.converged());
        // Still converged after a change: any lone latest observation is a
        // stable tail of length 1.
        m.observe(&stats(3, 7));
        assert!(m.converged());
        assert_eq!(m.stability_streak(), 1);
    }

    #[test]
    fn streak_resets_on_size_regression() {
        let mut m = ConvergenceMonitor::new(3);
        m.observe(&stats(5, 20));
        m.observe(&stats(5, 20));
        assert_eq!(m.stability_streak(), 2);
        // The result set growing back (a regression — e.g. a retracted
        // answer widened the superset) must restart the count from 1, not
        // credit the earlier matching pair.
        m.observe(&stats(6, 24));
        assert_eq!(m.stability_streak(), 1);
        assert!(!m.converged());
        m.observe(&stats(5, 20));
        // Equal to the pre-regression plateau, but not to its neighbour:
        // history is judged as a contiguous tail, so the streak is 1 again.
        assert_eq!(m.stability_streak(), 1);
        m.observe(&stats(5, 20));
        assert!(!m.converged()); // 2 of 3
        m.observe(&stats(5, 20));
        assert!(m.converged());
    }

    #[test]
    fn out_of_phase_oscillation_never_converges() {
        let mut m = ConvergenceMonitor::new(3);
        // Same tuple count every iteration, assignments flipping between
        // two values: no window of 3 is uniform, so a monitor comparing
        // only tuple counts would falsely converge here.
        for (t, a) in [(5, 20), (5, 21), (5, 20), (5, 21), (5, 20), (5, 21)] {
            m.observe(&stats(t, a));
            assert!(!m.converged(), "converged on oscillating history");
            assert_eq!(m.stability_streak(), 1);
        }
        assert_eq!(m.sizes(), vec![5; 6]);
    }
}
