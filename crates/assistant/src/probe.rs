//! Data-driven answer spaces for the simulation strategy (§5.1: "We are
//! currently examining how to better estimate these probabilities from the
//! data being queried" — this module estimates the *answer candidates*
//! from the data).
//!
//! For a question about attribute `a`, the probe runs a tiny program that
//! extracts `a`'s current candidate values over the sampled input, then
//! derives answer candidates:
//! * `preceded-by` / `followed-by`: the most frequent tokens adjacent to
//!   candidate values;
//! * `min-value` / `max-value`: quantiles of the candidate numeric values;
//! * `max-length`: quantiles of candidate span lengths.

use crate::question::Attribute;
use iflex_alog::{Arg, BodyAtom, Head, HeadArg, Program, Rule, Term};
use iflex_ctable::{Assignment, Value};
use iflex_engine::{Engine, Sample};
use iflex_features::FeatureArg;
use iflex_text::Span;
use std::collections::BTreeMap;

/// Maximum candidate spans collected per probe.
const PROBE_CAP: usize = 400;

/// Builds a probe program `__probe(v) :- table(x), pred(#x, ..., v, ...).`
/// plus the description rules, for the attribute's IE predicate. Returns
/// `None` when no caller rule binds the predicate to an extensional table.
fn probe_program(program: &Program, attr: &Attribute) -> Option<Program> {
    for rule in program.rules.iter().filter(|r| !r.is_description()) {
        for atom in &rule.body {
            let BodyAtom::Pred { name, args } = atom else {
                continue;
            };
            if name != &attr.pred || args.len() <= attr.pos {
                continue;
            }
            // the input variable feeding the IE predicate
            let input_var = args.iter().find(|a| a.input)?.term.var()?.to_string();
            // a relation atom binding it (anything that is not the IE pred)
            let table_atom = rule.body.iter().find_map(|b| match b {
                BodyAtom::Pred {
                    name: tname,
                    args: targs,
                } if tname != &attr.pred
                    && targs.iter().any(|a| a.term.var() == Some(&input_var)) =>
                {
                    Some(b.clone())
                }
                _ => None,
            })?;
            // fresh head: project the attribute's caller variable
            let out_var = args[attr.pos].term.var()?.to_string();
            let probe_rule = Rule {
                head: Head {
                    name: "__probe".into(),
                    args: vec![HeadArg {
                        var: out_var,
                        input: false,
                        annotated: false,
                    }],
                    existence: false,
                },
                body: vec![
                    table_atom,
                    BodyAtom::Pred {
                        name: name.clone(),
                        args: args
                            .iter()
                            .map(|a| Arg {
                                term: Term::Var(a.term.var().unwrap_or("_").to_string()),
                                input: a.input,
                            })
                            .collect(),
                    },
                ],
            };
            let mut rules = vec![probe_rule];
            rules.extend(program.description_rules().cloned());
            return Some(Program {
                rules,
                query: "__probe".into(),
            });
        }
    }
    None
}

/// Collects candidate spans for the attribute's current extraction.
pub fn probe_spans(engine: &mut Engine, program: &Program, attr: &Attribute, sample: Sample) -> Vec<Span> {
    use iflex_engine::obs::{SpanId, SpanKind};
    let Some(probe) = probe_program(program, attr) else {
        return Vec::new();
    };
    // Answer-space probes execute a synthetic program; trace them like
    // simulation probes so a dump attributes this engine time correctly.
    let probe_span = match engine.tracer.ctx(engine.trace_parent) {
        Some((t, parent)) => t.begin(parent, SpanKind::Probe, "probe:answer-space"),
        None => SpanId::NONE,
    };
    let saved = engine.trace_parent;
    engine.trace_parent = probe_span;
    let run = engine.run_sampled(&probe, sample);
    engine.trace_parent = saved;
    engine.tracer.end(probe_span);
    let Ok(table) = run else {
        return Vec::new();
    };
    let mut out = Vec::new();
    'outer: for t in table.tuples() {
        for a in t.cells[0].assignments() {
            match a {
                Assignment::Exact(Value::Span(s)) => out.push(*s),
                Assignment::Exact(_) => {}
                Assignment::Contain(s) => {
                    // take the region's individual tokens as representatives
                    let doc = engine.store().doc(s.doc);
                    for tok in doc.token_slice(s).iter().take(8) {
                        out.push(Span::new(s.doc, tok.start, tok.end));
                    }
                }
            }
            if out.len() >= PROBE_CAP {
                break 'outer;
            }
        }
    }
    out
}

/// The token (plus adjacent `:`/`$` punctuation) immediately before `s`.
fn preceding_label(engine: &Engine, s: Span) -> Option<String> {
    let doc = engine.store().doc(s.doc);
    let text = doc.text();
    let before = text[..s.start as usize].trim_end();
    if before.is_empty() {
        return None;
    }
    // walk back over trailing punctuation/space and one word token
    let mut start = before.len();
    let bytes = before.as_bytes();
    while start > 0
        && matches!(bytes[start - 1], b'$' | b':' | b'-' | b' ' | b'%' | b'(' | b')')
    {
        start -= 1;
    }
    while start > 0 && bytes[start - 1].is_ascii_alphanumeric() {
        start -= 1;
    }
    let label = before[start..].trim_start();
    if label.is_empty() || label.len() > 24 {
        None
    } else {
        Some(label.to_string())
    }
}

/// The token immediately after `s`.
fn following_label(engine: &Engine, s: Span) -> Option<String> {
    let doc = engine.store().doc(s.doc);
    let text = doc.text();
    let after = text[s.end as usize..].trim_start();
    if after.is_empty() {
        return None;
    }
    let bytes = after.as_bytes();
    let mut end = 0;
    while end < bytes.len()
        && (bytes[end] == b'(' || bytes[end] == b')' || bytes[end] == b':' || bytes[end] == b'-'
            || bytes[end] == b'$')
    {
        end += 1;
    }
    if end == 0 {
        while end < bytes.len() && bytes[end].is_ascii_alphanumeric() {
            end += 1;
        }
    }
    let label = after[..end].trim();
    if label.is_empty() || label.len() > 24 {
        None
    } else {
        Some(label.to_string())
    }
}

fn top_labels(mut counts: BTreeMap<String, usize>, k: usize) -> Vec<FeatureArg> {
    let mut items: Vec<(String, usize)> = counts.iter().map(|(s, &c)| (s.clone(), c)).collect();
    counts.clear();
    items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    items
        .into_iter()
        .take(k)
        .map(|(s, _)| FeatureArg::Text(s))
        .collect()
}

/// Quantile ladder over numeric values.
fn ladder(mut vals: Vec<f64>) -> Vec<f64> {
    if vals.is_empty() {
        return Vec::new();
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| vals[((vals.len() - 1) as f64 * f) as usize];
    let mut out = vec![q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)];
    out.dedup();
    out
}

/// Data-driven answer candidates for (attribute, feature); empty when the
/// feature has no derivable space.
pub fn dynamic_answer_space(
    engine: &mut Engine,
    program: &Program,
    attr: &Attribute,
    feature: &str,
    sample: Sample,
) -> Vec<FeatureArg> {
    match feature {
        "preceded-by" | "followed-by" => {
            let spans = probe_spans(engine, program, attr, sample);
            let mut counts: BTreeMap<String, usize> = BTreeMap::new();
            for s in spans {
                let label = if feature == "preceded-by" {
                    preceding_label(engine, s)
                } else {
                    following_label(engine, s)
                };
                if let Some(l) = label {
                    *counts.entry(l).or_default() += 1;
                }
            }
            top_labels(counts, 4)
        }
        "min-value" | "max-value" => {
            let spans = probe_spans(engine, program, attr, sample);
            let vals: Vec<f64> = spans
                .iter()
                .filter_map(|s| iflex_text::parse_number(engine.store().span_text(s)))
                .collect();
            ladder(vals).into_iter().map(FeatureArg::Num).collect()
        }
        "max-length" => {
            let spans = probe_spans(engine, program, attr, sample);
            let vals: Vec<f64> = spans.iter().map(|s| s.len() as f64).collect();
            ladder(vals).into_iter().map(FeatureArg::Num).collect()
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_alog::parse_program;
    use iflex_text::DocumentStore;
    use std::sync::Arc;

    fn setup() -> (Engine, Program) {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(store.add_markup(&format!("item {} price: {} votes {}", i, 100 + i, 50 + i)));
        }
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        let prog = parse_program(
            r#"
            q(x, v) :- pages(x), extractV(#x, v), v > 10.
            extractV(#x, v) :- from(#x, v), numeric(v) = yes.
        "#,
        )
        .unwrap();
        (eng, prog)
    }

    fn attr() -> Attribute {
        Attribute {
            pred: "extractV".into(),
            var: "v".into(),
            pos: 1,
        }
    }

    #[test]
    fn probe_program_construction() {
        let (_, prog) = setup();
        let probe = probe_program(&prog, &attr()).unwrap();
        assert_eq!(probe.query, "__probe");
        assert!(probe.rules[0].to_string().contains("pages("));
    }

    #[test]
    fn probe_collects_numeric_spans() {
        let (mut eng, prog) = setup();
        let spans = probe_spans(&mut eng, &prog, &attr(), Sample::new(1.0, 0));
        assert!(!spans.is_empty());
        // all collected spans parse as numbers (description constrains to numeric)
        assert!(spans
            .iter()
            .all(|s| iflex_text::parse_number(eng.store().span_text(s)).is_some()));
    }

    #[test]
    fn preceded_by_labels_found() {
        let (mut eng, prog) = setup();
        let args = dynamic_answer_space(
            &mut eng,
            &prog,
            &attr(),
            "preceded-by",
            Sample::new(1.0, 0),
        );
        let labels: Vec<&str> = args.iter().filter_map(|a| a.as_text()).collect();
        assert!(labels.iter().any(|l| l.contains("price") || l.contains("votes") || l.contains("item")), "{labels:?}");
    }

    #[test]
    fn value_ladder_derived() {
        let (mut eng, prog) = setup();
        let args =
            dynamic_answer_space(&mut eng, &prog, &attr(), "max-value", Sample::new(1.0, 0));
        assert!(!args.is_empty());
        assert!(args.iter().all(|a| a.as_num().is_some()));
    }

    #[test]
    fn unknown_feature_gives_empty_space() {
        let (mut eng, prog) = setup();
        assert!(dynamic_answer_space(
            &mut eng,
            &prog,
            &attr(),
            "bold-font",
            Sample::new(1.0, 0)
        )
        .is_empty());
    }
}
