//! # iflex-assistant
//!
//! The **next-effort assistant** of iFlex (§5): given the current
//! approximate Alog program and the data, it suggests where the
//! developer's next unit of effort is best spent, as questions of the form
//! *"what is the value of feature f for attribute a?"*. Answers are folded
//! back into the program's description rules as domain constraints.
//!
//! Two selection strategies are provided (§5.1):
//! * [`Sequential`] — a predefined order: attributes by decreasing
//!   importance, features by a curated appearance → location → semantics
//!   order;
//! * [`Simulation`] — executes each candidate refinement (over a sampled
//!   subset, with reuse) and picks the question with the minimum expected
//!   result size.
//!
//! [`ConvergenceMonitor`] implements the §5.1 convergence notification:
//! stable result size and assignment count for k consecutive iterations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod converge;
pub mod feedback;
pub mod probe;
pub mod question;
pub mod strategy;

pub use converge::ConvergenceMonitor;
pub use feedback::{implied_answers, Examples};
pub use probe::{dynamic_answer_space, probe_spans};
pub use question::{
    add_constraint, answer_space, attributes, constrained_features, question_space, Answer,
    Attribute, Question,
};
pub use strategy::{
    attribute_importance, ordered_questions, AssistContext, Sequential, Simulation, Strategy,
    FEATURE_ORDER,
};
