//! Richer developer feedback (§5.1.1 "More Types of Feedback"): the
//! developer can *mark up a sample value* for an attribute. The assistant
//! then (a) rules out answers the example contradicts — "if this title is
//! bold, … the answer cannot be 'no'" — shrinking the simulation's answer
//! space, and (b) can derive an initial batch of constraints directly
//! from the example's feature values.

use crate::question::Attribute;
use iflex_engine::Engine;
use iflex_features::{FeatureArg, FeatureValue};
use iflex_text::Span;
use std::collections::BTreeMap;

/// Marked-up example values, per attribute display name.
#[derive(Debug, Clone, Default)]
pub struct Examples {
    by_attr: BTreeMap<String, Vec<Span>>,
}

impl Examples {
    /// No examples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a developer-highlighted true value for `attr`.
    pub fn add(&mut self, attr: &Attribute, span: Span) {
        self.by_attr.entry(attr.display()).or_default().push(span);
    }

    /// The examples recorded for an attribute.
    pub fn for_attr(&self, attr: &Attribute) -> &[Span] {
        self.by_attr
            .get(&attr.display())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of attributes with at least one example.
    pub fn len(&self) -> usize {
        self.by_attr.len()
    }

    /// True when no examples have been given.
    pub fn is_empty(&self) -> bool {
        self.by_attr.is_empty()
    }

    /// True when answer `arg` for `feature` is consistent with every
    /// example of `attr`: a truthful developer cannot give an answer the
    /// highlighted true value fails to verify. Unknown features or
    /// unverifiable argument types stay consistent (no information).
    pub fn consistent(
        &self,
        engine: &Engine,
        attr: &Attribute,
        feature: &str,
        arg: &FeatureArg,
    ) -> bool {
        let spans = self.for_attr(attr);
        if spans.is_empty() {
            return true;
        }
        let Ok(f) = engine.features().get(feature) else {
            return true;
        };
        spans.iter().all(|s| {
            f.verify(engine.store(), *s, arg).unwrap_or(true)
        })
    }
}

/// The tri-state features an example can answer outright.
const TRI_FEATURES: &[&str] = &[
    "numeric",
    "bold-font",
    "italic-font",
    "underlined",
    "hyperlinked",
    "in-title",
    "in-list",
    "capitalized",
    "person-name",
    "first-half",
];

/// Derives the strongest tri-state answer each appearance/location feature
/// gives on the example: `distinct-yes` where it verifies, else `yes`,
/// else `no`. These are exactly the answers the developer would give when
/// asked — the example answers them all at once.
pub fn implied_answers(engine: &Engine, example: Span) -> Vec<(String, FeatureArg)> {
    let mut out = Vec::new();
    for fname in TRI_FEATURES {
        let Ok(f) = engine.features().get(fname) else {
            continue;
        };
        let store = engine.store();
        let ans = if f
            .verify(store, example, &FeatureArg::distinct_yes())
            .unwrap_or(false)
        {
            FeatureArg::distinct_yes()
        } else if f.verify(store, example, &FeatureArg::yes()).unwrap_or(false) {
            FeatureArg::yes()
        } else {
            FeatureArg::Tri(FeatureValue::No)
        };
        out.push((fname.to_string(), ans));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::DocumentStore;
    use std::sync::Arc;

    fn setup() -> (Engine, Span) {
        let mut store = DocumentStore::new();
        let id = store.add_markup("noise 12 <b>42</b> tail");
        let doc_text = store.doc(id).text().to_string();
        let pos = doc_text.find("42").unwrap() as u32;
        let span = Span::new(id, pos, pos + 2);
        (Engine::new(Arc::new(store)), span)
    }

    fn attr() -> Attribute {
        Attribute {
            pred: "e".into(),
            var: "v".into(),
            pos: 1,
        }
    }

    #[test]
    fn implied_answers_read_the_example() {
        let (eng, span) = setup();
        let answers = implied_answers(&eng, span);
        let get = |n: &str| {
            answers
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, a)| a.clone())
                .unwrap()
        };
        assert_eq!(get("numeric"), FeatureArg::distinct_yes());
        assert_eq!(get("bold-font"), FeatureArg::distinct_yes());
        assert_eq!(get("italic-font"), FeatureArg::Tri(FeatureValue::No));
    }

    #[test]
    fn consistency_prunes_contradicted_answers() {
        let (eng, span) = setup();
        let mut ex = Examples::new();
        ex.add(&attr(), span);
        // the example IS bold → "bold = no" is impossible
        assert!(!ex.consistent(&eng, &attr(), "bold-font", &FeatureArg::no()));
        assert!(ex.consistent(&eng, &attr(), "bold-font", &FeatureArg::yes()));
        // the example is 42 → max-value 10 impossible, 100 fine
        assert!(!ex.consistent(&eng, &attr(), "max-value", &FeatureArg::Num(10.0)));
        assert!(ex.consistent(&eng, &attr(), "max-value", &FeatureArg::Num(100.0)));
        // attributes without examples are unconstrained
        let other = Attribute {
            pred: "e".into(),
            var: "w".into(),
            pos: 2,
        };
        assert!(ex.consistent(&eng, &other, "bold-font", &FeatureArg::no()));
    }

    #[test]
    fn bookkeeping() {
        let (_, span) = setup();
        let mut ex = Examples::new();
        assert!(ex.is_empty());
        ex.add(&attr(), span);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex.for_attr(&attr()).len(), 1);
    }
}
