//! Property tests: compact-table invariants — condensation preserves the
//! encoded value set, conversions preserve possible worlds, expansion
//! counts agree with enumeration.

use iflex_ctable::{worlds, ATable, Assignment, Cell, CompactTable, CompactTuple, Value};
use iflex_text::{DocId, DocumentStore, Span};
use proptest::prelude::*;

fn store_with(words: usize) -> (DocumentStore, DocId) {
    let text: Vec<String> = (0..words.max(1)).map(|i| format!("w{i}")).collect();
    let mut st = DocumentStore::new();
    let id = st.add_plain(text.join(" "));
    (st, id)
}

/// Strategy: a random token-aligned span inside a `words`-token doc.
fn arb_span(words: usize) -> impl Strategy<Value = (usize, usize)> {
    (0..words, 0..words).prop_map(move |(a, b)| (a.min(b), a.max(b) + 1))
}

fn token_span(store: &DocumentStore, id: DocId, lo: usize, hi: usize) -> Span {
    let toks = store.doc(id).tokens().tokens();
    Span::new(id, toks[lo].start, toks[hi - 1].end)
}

proptest! {
    #[test]
    fn condense_preserves_value_set(
        spans in proptest::collection::vec(arb_span(8), 1..6)
    ) {
        let (st, id) = store_with(8);
        let assigns: Vec<Assignment> = spans
            .iter()
            .map(|&(lo, hi)| {
                let s = token_span(&st, id, lo, hi);
                if hi - lo == 1 {
                    Assignment::exact_span(s)
                } else {
                    Assignment::Contain(s)
                }
            })
            .collect();
        let cell = Cell::of(assigns);
        let before = cell.value_set(&st);
        let mut condensed = cell.clone();
        condensed.condense(&st);
        prop_assert_eq!(before, condensed.value_set(&st));
        prop_assert!(condensed.assignments().len() <= cell.assignments().len());
    }

    #[test]
    fn atable_roundtrip_preserves_worlds(
        spans in proptest::collection::vec(arb_span(5), 1..4),
        maybe in proptest::bool::ANY,
    ) {
        let (st, id) = store_with(5);
        let mut table = CompactTable::new(vec!["s".into()]);
        for &(lo, hi) in &spans {
            let mut t = CompactTuple::new(vec![Cell::contain(token_span(&st, id, lo, hi))]);
            t.maybe = maybe;
            table.push(t);
        }
        let at = ATable::from_compact(&table, &st, 100_000).unwrap();
        let back = at.to_compact(&st);
        let w1 = worlds::worlds_of_compact(&table, &st, 200_000).unwrap();
        let w2 = worlds::worlds_of_compact(&back, &st, 200_000).unwrap();
        prop_assert_eq!(w1, w2);
    }

    #[test]
    fn expanded_len_counts_expansion_products(
        lo_hi in arb_span(6),
        extra in arb_span(6),
    ) {
        let (st, id) = store_with(6);
        let (lo, hi) = lo_hi;
        let (elo, ehi) = extra;
        let mut table = CompactTable::new(vec!["a".into(), "b".into()]);
        table.push(CompactTuple::new(vec![
            Cell::expansion(vec![Assignment::Contain(token_span(&st, id, lo, hi))]),
            Cell::contain(token_span(&st, id, elo, ehi)), // choice cell: ×1
        ]));
        let n = hi - lo;
        let expected = (n * (n + 1) / 2) as u64;
        prop_assert_eq!(table.expanded_len(&st), expected);
    }

    #[test]
    fn tuple_universe_contains_every_world_tuple(
        spans in proptest::collection::vec(arb_span(4), 1..3),
    ) {
        let (st, id) = store_with(4);
        let mut table = CompactTable::new(vec!["s".into()]);
        for &(lo, hi) in &spans {
            table.push(CompactTuple::maybe(vec![Cell::contain(token_span(
                &st, id, lo, hi,
            ))]));
        }
        let universe = worlds::tuple_universe(&table, &st, 100_000).unwrap();
        for world in worlds::worlds_of_compact(&table, &st, 100_000).unwrap() {
            for row in world {
                prop_assert!(universe.contains(&row));
            }
        }
    }

    #[test]
    fn value_count_matches_enumeration(spans in proptest::collection::vec(arb_span(7), 1..5)) {
        let (st, id) = store_with(7);
        let assigns: Vec<Assignment> = spans
            .iter()
            .map(|&(lo, hi)| Assignment::Contain(token_span(&st, id, lo, hi)))
            .collect();
        let cell = Cell::of(assigns);
        prop_assert_eq!(cell.value_count(&st), cell.values(&st).count() as u64);
    }

    #[test]
    fn values_are_ordered_consistently(n in 1usize..30) {
        // Value total order is antisymmetric and transitive on a sample
        let vals: Vec<Value> = (0..n)
            .map(|i| match i % 3 {
                0 => Value::Num(i as f64 / 2.0),
                1 => Value::Str(format!("s{i}")),
                _ => Value::Null,
            })
            .collect();
        let mut sorted = vals.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
