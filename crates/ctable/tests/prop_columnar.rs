//! Property tests of the columnar compact-table form (DESIGN.md §14):
//! any row-built table must round-trip through `ColumnarTable` **byte
//! identically** — same `Debug` rendering, same `Display` rendering,
//! same `TableStats`, structural equality — because the engine's
//! `use_columnar` ablation flips between the two forms mid-pipeline and
//! promises the switch is invisible. The span interner must be a
//! bijection under deduplication, and the per-column dictionaries must
//! honor their side-array invariants (multiplicities mirror the
//! dictionary, duplicate cells share one id).

use iflex_ctable::{Assignment, Cell, ColumnarTable, CompactTable, CompactTuple, SpanInterner, Value};
use iflex_text::{DocId, DocumentStore, Span};
use proptest::prelude::*;

fn store_with(words: usize) -> (DocumentStore, DocId) {
    let text: Vec<String> = (0..words.max(1)).map(|i| format!("w{i}")).collect();
    let mut st = DocumentStore::new();
    let id = st.add_plain(text.join(" "));
    (st, id)
}

fn token_span(store: &DocumentStore, id: DocId, lo: usize, hi: usize) -> Span {
    let toks = store.doc(id).tokens().tokens();
    Span::new(id, toks[lo].start, toks[hi - 1].end)
}

/// One random cell covering every `Assignment`/`Value` shape the row
/// form can hold, including the lossless-float corners (-0.0, fractions)
/// and multi-assignment + expansion cells.
fn arb_cell(words: usize) -> impl Strategy<Value = (u8, usize, usize, i64)> {
    (0u8..8, 0..words, 0..words, -1000i64..1000)
}

fn build_cell(st: &DocumentStore, id: DocId, shape: u8, a: usize, b: usize, num: i64) -> Cell {
    let (lo, hi) = (a.min(b), a.max(b) + 1);
    let span = token_span(st, id, lo, hi);
    match shape {
        0 => Cell::exact(Value::Span(span)),
        1 => Cell::exact(Value::Str(format!("s{num}"))),
        // Divide by 8 so fractional doubles (and -0.0 at num == 0 via
        // the negation below) exercise the bit-exact encoding.
        2 => Cell::exact(Value::Num(-(num as f64) / 8.0)),
        3 => Cell::exact(Value::Bool(num % 2 == 0)),
        4 => Cell::exact(Value::Null),
        5 => Cell::contain(span),
        6 => Cell::of(vec![
            Assignment::Contain(span),
            Assignment::Exact(Value::Num(num as f64)),
            Assignment::Exact(Value::Str(format!("s{num}"))),
        ]),
        _ => Cell::expansion(vec![
            Assignment::Contain(span),
            Assignment::Exact(Value::Span(span)),
        ]),
    }
}

/// A random table with deliberate duplication: `rows` indexes into a
/// small pool of generated cells, so many rows share identical cells and
/// the dictionary actually dedups.
type RawTable = (Vec<(u8, usize, usize, i64)>, Vec<(Vec<usize>, bool)>);

fn arb_table(words: usize) -> impl Strategy<Value = RawTable> {
    let pool = proptest::collection::vec(arb_cell(words), 1..6);
    let rows = proptest::collection::vec(
        (proptest::collection::vec(0usize..6, 1..4), proptest::bool::ANY),
        0..12,
    );
    (pool, rows)
}

fn build_table(st: &DocumentStore, id: DocId, raw: &RawTable) -> CompactTable {
    let (pool_raw, rows) = raw;
    let pool: Vec<Cell> = pool_raw
        .iter()
        .map(|&(shape, a, b, num)| build_cell(st, id, shape, a, b, num))
        .collect();
    let arity = rows.iter().map(|(r, _)| r.len()).max().unwrap_or(1);
    let cols: Vec<String> = (0..arity).map(|c| format!("c{c}")).collect();
    let mut t = CompactTable::new(cols);
    for (picks, maybe) in rows {
        let cells: Vec<Cell> = (0..arity)
            .map(|c| pool[picks[c % picks.len()] % pool.len()].clone())
            .collect();
        let mut tup = CompactTuple::new(cells);
        tup.maybe = *maybe;
        t.push(tup);
    }
    t
}

proptest! {
    /// The round trip is byte-identical: `Debug`, `Display`, stats, and
    /// structural equality all survive `from_rows ∘ to_rows`, and the
    /// columnar accessors agree with the source rows without converting
    /// back.
    #[test]
    fn roundtrip_is_byte_identical(raw in arb_table(8)) {
        let (st, id) = store_with(8);
        let t = build_table(&st, id, &raw);
        let ct = ColumnarTable::from_rows(&t);
        let back = ct.to_rows();
        prop_assert_eq!(format!("{t:?}"), format!("{back:?}"));
        prop_assert_eq!(format!("{t}"), format!("{back}"));
        prop_assert_eq!(t.stats(), back.stats());
        prop_assert_eq!(t.stats(), ct.stats());
        prop_assert_eq!(&t, &back);
        // Accessors agree row by row with no conversion.
        prop_assert_eq!(t.len(), ct.len());
        prop_assert_eq!(t.columns(), ct.columns());
        for (i, tup) in t.tuples().iter().enumerate() {
            prop_assert_eq!(&tup.cells, &ct.row_cells(i));
            prop_assert_eq!(tup.maybe, ct.maybe(i));
        }
    }

    /// Dictionary invariants: equal cells in a column share one id,
    /// distinct ids materialize distinct-or-equal source cells, and the
    /// multiplicity side array mirrors the dictionary's run lengths.
    #[test]
    fn dictionaries_dedup_and_mirror_multiplicities(raw in arb_table(8)) {
        let (st, id) = store_with(8);
        let t = build_table(&st, id, &raw);
        let ct = ColumnarTable::from_rows(&t);
        for c in 0..ct.arity() {
            let col = ct.col(c);
            prop_assert!(col.distinct_len() <= t.len().max(1));
            for (i, tup) in t.tuples().iter().enumerate() {
                let cid = col.cell_id(i);
                prop_assert_eq!(&ct.materialize(c, cid), &tup.cells[c]);
                prop_assert_eq!(
                    col.multiplicities()[i] as usize,
                    tup.cells[c].assignments().len()
                );
                prop_assert_eq!(col.meta(cid).len as usize, tup.cells[c].assignments().len());
                prop_assert_eq!(col.meta(cid).expand, tup.cells[c].is_expand());
                // Same cell elsewhere in the column ⇒ same id (dedup).
                for (j, other) in t.tuples().iter().enumerate() {
                    if other.cells[c] == tup.cells[c] {
                        prop_assert_eq!(col.cell_id(j), cid);
                    }
                }
            }
        }
    }

    /// The span interner is a bijection under dedup: equal strings map
    /// to equal ids, distinct strings to distinct ids, and `resolve`
    /// inverts `intern`.
    #[test]
    fn interner_is_a_bijection_under_dedup(
        words in proptest::collection::vec("[a-z]{0,6}", 1..30),
    ) {
        let mut pool = SpanInterner::new();
        let ids: Vec<u32> = words.iter().map(|w| pool.intern(w)).collect();
        for (w, &i) in words.iter().zip(&ids) {
            prop_assert_eq!(pool.resolve(i), w.as_str());
        }
        for (a, &ia) in words.iter().zip(&ids) {
            for (b, &ib) in words.iter().zip(&ids) {
                prop_assert_eq!(a == b, ia == ib);
            }
        }
        let distinct: std::collections::BTreeSet<&str> =
            words.iter().map(|w| w.as_str()).collect();
        prop_assert_eq!(pool.len(), distinct.len());
    }
}

/// Serde derives compile and round-trip through the vendored stand-in
/// (the real crate swaps in transparently); the stub is a no-op encoder,
/// so this pins the API surface, not bytes on disk.
#[test]
fn columnar_table_serde_surface() {
    let (st, id) = store_with(4);
    let mut t = CompactTable::new(vec!["a".into()]);
    t.push(CompactTuple::new(vec![Cell::contain(token_span(&st, id, 0, 2))]));
    let ct = ColumnarTable::from_rows(&t);
    // Clone + equality stand in for encode/decode under the stub.
    let copy = ct.clone();
    assert_eq!(ct, copy);
    assert_eq!(copy.to_rows(), t);
}
