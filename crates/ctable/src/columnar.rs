//! Columnar (struct-of-arrays) form of a [`CompactTable`] (DESIGN.md §14).
//!
//! The row form is pointer-heavy: every tuple owns a `Vec<Cell>`, every
//! cell owns a `Vec<Assignment>`, and string constants are owned
//! `String`s — so the fused σ/constraint operators and the morsel
//! executor chase three levels of pointers per tuple. The columnar form
//! stores one table as:
//!
//! * a [`SpanInterner`] pool — every distinct string constant is interned
//!   once and referenced by a small id (spans are already three machine
//!   words and stay inline);
//! * per-column **distinct-cell dictionaries**: duplicated cells (the
//!   common case — e.g. every tuple of a doc-table column carries the
//!   same `contain(full-span)` cell) are stored once as a [`CellMeta`]
//!   run into a per-column contiguous [`CAssign`] arena;
//! * per-row side arrays: the `maybe` flags, and per column the
//!   distinct-cell id plus the assignment multiplicity of each row.
//!
//! A batch operator walks one column's contiguous id run, evaluates each
//! *distinct* cell once, and scatters results back by id — instead of
//! re-walking (and re-hashing) every row's boxed cells. The conversion is
//! lossless and order-preserving: `to_rows(from_rows(t)) == t` holds
//! byte-for-byte (`Debug`, `Display`, [`TableStats`], serde derives), which
//! `crates/ctable/tests/prop_columnar.rs` pins property-style and the
//! engine's `Limits::use_columnar` ablation relies on end to end.

use crate::cell::Cell;
use crate::table::{CompactTable, TableStats};
use crate::tuple::CompactTuple;
use crate::value::Value;
use crate::assignment::Assignment;
use iflex_text::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interns string constants so columnar cells carry small ids instead of
/// owned `String`s. Interning is a bijection under dedup: distinct
/// strings get distinct ids, and `resolve(intern(s)) == s` for every
/// string (pinned by `prop_columnar`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanInterner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl SpanInterner {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id. Identical strings share one id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("string pool exceeds u32 ids");
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// The string behind an id.
    ///
    /// # Panics
    /// On an id this pool never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One assignment in columnar form: spans stay inline (`Copy`, three
/// machine words), string constants are replaced by [`SpanInterner`] ids,
/// and numbers are stored by raw IEEE bit pattern so `-0.0` and NaN
/// payloads round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CAssign {
    /// `Exact(Value::Span(s))`.
    ExactSpan(Span),
    /// `Exact(Value::Str(_))`, by pool id.
    ExactStr(u32),
    /// `Exact(Value::Num(_))`, by raw bit pattern.
    ExactNum(u64),
    /// `Exact(Value::Bool(_))`.
    ExactBool(bool),
    /// `Exact(Value::Null)`.
    ExactNull,
    /// `Contain(s)`.
    Contain(Span),
}

impl CAssign {
    fn encode(a: &Assignment, pool: &mut SpanInterner) -> CAssign {
        match a {
            Assignment::Exact(Value::Span(s)) => CAssign::ExactSpan(*s),
            Assignment::Exact(Value::Str(s)) => CAssign::ExactStr(pool.intern(s)),
            Assignment::Exact(Value::Num(n)) => CAssign::ExactNum(n.to_bits()),
            Assignment::Exact(Value::Bool(b)) => CAssign::ExactBool(*b),
            Assignment::Exact(Value::Null) => CAssign::ExactNull,
            Assignment::Contain(s) => CAssign::Contain(*s),
        }
    }

    fn decode(self, pool: &SpanInterner) -> Assignment {
        match self {
            CAssign::ExactSpan(s) => Assignment::Exact(Value::Span(s)),
            CAssign::ExactStr(id) => Assignment::Exact(Value::Str(pool.resolve(id).to_string())),
            CAssign::ExactNum(bits) => Assignment::Exact(Value::Num(f64::from_bits(bits))),
            CAssign::ExactBool(b) => Assignment::Exact(Value::Bool(b)),
            CAssign::ExactNull => Assignment::Exact(Value::Null),
            CAssign::Contain(s) => Assignment::Contain(s),
        }
    }
}

/// One distinct cell of a column: a contiguous run `[start, start+len)`
/// into the column's [`CAssign`] arena plus the expansion flag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellMeta {
    /// First assignment in the column arena.
    pub start: u32,
    /// Run length (the cell's assignment multiplicity).
    pub len: u32,
    /// The §3 expansion flag.
    pub expand: bool,
}

/// One column in struct-of-arrays form: a per-row id run over a
/// dictionary of distinct cells whose assignments live contiguously in
/// one arena.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Per-row distinct-cell id (`rows.len()` == table length). This is
    /// the contiguous run batch operators (and morsel slices) walk.
    rows: Vec<u32>,
    /// Per-row assignment multiplicity — `mult[i] == cells[rows[i]].len`,
    /// kept as a side array so volume accounting never touches the
    /// dictionary.
    mult: Vec<u32>,
    /// The distinct cells, in first-appearance order.
    cells: Vec<CellMeta>,
    /// Contiguous assignment arena shared by every cell of this column.
    assigns: Vec<CAssign>,
}

impl Column {
    /// The distinct-cell id of `row`.
    #[inline]
    pub fn cell_id(&self, row: usize) -> u32 {
        self.rows[row]
    }

    /// The per-row id run (a morsel's column-run slice is `ids()[range]`).
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.rows
    }

    /// Per-row assignment multiplicities.
    #[inline]
    pub fn multiplicities(&self) -> &[u32] {
        &self.mult
    }

    /// Number of distinct cells in this column.
    pub fn distinct_len(&self) -> usize {
        self.cells.len()
    }

    /// The distinct-cell metadata for `id`.
    pub fn meta(&self, id: u32) -> CellMeta {
        self.cells[id as usize]
    }

    /// The arena run backing distinct cell `id`.
    pub fn assign_run(&self, id: u32) -> &[CAssign] {
        let m = self.cells[id as usize];
        &self.assigns[m.start as usize..(m.start + m.len) as usize]
    }
}

/// A [`CompactTable`] in columnar struct-of-arrays form. Immutable once
/// built; the engine shares one conversion per row table behind an `Arc`
/// (see `iflex_engine::incr::ColumnarShare`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnarTable {
    cols: Vec<String>,
    len: usize,
    maybe: Vec<bool>,
    columns: Vec<Column>,
    pool: SpanInterner,
}

impl ColumnarTable {
    /// Converts a row table. Lossless and order-preserving; duplicate
    /// cells within a column are stored once.
    pub fn from_rows(t: &CompactTable) -> ColumnarTable {
        let n = t.len();
        let arity = t.arity();
        let mut pool = SpanInterner::new();
        let mut columns: Vec<Column> = (0..arity)
            .map(|_| Column {
                rows: Vec::with_capacity(n),
                mult: Vec::with_capacity(n),
                cells: Vec::new(),
                assigns: Vec::new(),
            })
            .collect();
        // Per-column dedup: cell contents -> distinct id. Keys clone the
        // cell once per *distinct* cell, not per row.
        let mut seen: Vec<HashMap<Cell, u32>> = (0..arity).map(|_| HashMap::new()).collect();
        for tup in t.tuples() {
            for (c, cell) in tup.cells.iter().enumerate() {
                let col = &mut columns[c];
                let id = match seen[c].get(cell) {
                    Some(&id) => id,
                    None => {
                        let id = u32::try_from(col.cells.len())
                            .expect("distinct cells exceed u32 ids");
                        let start = u32::try_from(col.assigns.len())
                            .expect("assignment arena exceeds u32 offsets");
                        col.assigns
                            .extend(cell.assignments().iter().map(|a| CAssign::encode(a, &mut pool)));
                        col.cells.push(CellMeta {
                            start,
                            len: cell.assignments().len() as u32,
                            expand: cell.is_expand(),
                        });
                        seen[c].insert(cell.clone(), id);
                        id
                    }
                };
                col.rows.push(id);
                col.mult.push(col.cells[id as usize].len);
            }
        }
        ColumnarTable {
            cols: t.columns().to_vec(),
            len: n,
            maybe: t.tuples().iter().map(|tup| tup.maybe).collect(),
            columns,
            pool,
        }
    }

    /// Converts back to the row form. Exact inverse of
    /// [`ColumnarTable::from_rows`].
    pub fn to_rows(&self) -> CompactTable {
        let mut out = CompactTable::new(self.cols.clone());
        for row in 0..self.len {
            out.push(CompactTuple {
                cells: (0..self.columns.len())
                    .map(|c| self.materialize(c, self.columns[c].rows[row]))
                    .collect(),
                maybe: self.maybe[row],
            });
        }
        out
    }

    /// Materializes one distinct cell of column `col` back into row form.
    pub fn materialize(&self, col: usize, id: u32) -> Cell {
        let column = &self.columns[col];
        let meta = column.meta(id);
        let assigns: Vec<Assignment> = column
            .assign_run(id)
            .iter()
            .map(|ca| ca.decode(&self.pool))
            .collect();
        if meta.expand {
            Cell::expansion(assigns)
        } else {
            Cell::of(assigns)
        }
    }

    /// Materializes one full row (used when an operator emits a survivor).
    pub fn row_cells(&self, row: usize) -> Vec<Cell> {
        (0..self.columns.len())
            .map(|c| self.materialize(c, self.columns[c].rows[row]))
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column names, in schema order.
    pub fn columns(&self) -> &[String] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// One column's struct-of-arrays storage.
    pub fn col(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// The per-row maybe flags side array.
    pub fn maybe_flags(&self) -> &[bool] {
        &self.maybe
    }

    /// The maybe flag of one row.
    #[inline]
    pub fn maybe(&self, row: usize) -> bool {
        self.maybe[row]
    }

    /// The shared string pool.
    pub fn interner(&self) -> &SpanInterner {
        &self.pool
    }

    /// The same summary the row form reports — `stats()` must agree with
    /// `CompactTable::stats()` on the round-tripped table (assignments are
    /// counted per row, with multiplicity, via the side arrays alone).
    pub fn stats(&self) -> TableStats {
        TableStats {
            tuples: self.len,
            maybe_tuples: self.maybe.iter().filter(|&&m| m).count(),
            assignments: self
                .columns
                .iter()
                .map(|c| c.mult.iter().map(|&m| m as usize).sum::<usize>())
                .sum(),
        }
    }
}

impl From<&CompactTable> for ColumnarTable {
    fn from(t: &CompactTable) -> Self {
        ColumnarTable::from_rows(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::{DocId, Span};

    fn sample_table() -> CompactTable {
        let d = DocId(0);
        let mut t = CompactTable::new(vec!["x".into(), "p".into()]);
        let shared = Cell::contain(Span::new(d, 0, 40));
        t.push(CompactTuple {
            cells: vec![shared.clone(), Cell::exact(Value::Str("a".into()))],
            maybe: false,
        });
        t.push(CompactTuple {
            cells: vec![shared.clone(), Cell::exact(Value::Num(-0.0))],
            maybe: true,
        });
        t.push(CompactTuple {
            cells: vec![
                Cell::expansion(vec![
                    Assignment::Contain(Span::new(d, 3, 9)),
                    Assignment::Exact(Value::Null),
                ]),
                Cell::exact(Value::Str("a".into())),
            ],
            maybe: false,
        });
        t
    }

    #[test]
    fn round_trip_is_identical() {
        let t = sample_table();
        let ct = ColumnarTable::from_rows(&t);
        let back = ct.to_rows();
        assert_eq!(t, back);
        assert_eq!(format!("{t:?}"), format!("{back:?}"));
        assert_eq!(t.to_string(), back.to_string());
        assert_eq!(t.stats(), ct.stats());
    }

    #[test]
    fn duplicate_cells_are_stored_once() {
        let t = sample_table();
        let ct = ColumnarTable::from_rows(&t);
        // Column 0: the shared contain cell dedups; column 1: "a" dedups.
        assert_eq!(ct.col(0).distinct_len(), 2);
        assert_eq!(ct.col(1).distinct_len(), 2);
        assert_eq!(ct.col(1).cell_id(0), ct.col(1).cell_id(2));
        // The string pool interned "a" exactly once.
        assert_eq!(ct.interner().len(), 1);
    }

    #[test]
    fn interner_bijection() {
        let mut pool = SpanInterner::new();
        let a = pool.intern("alpha");
        let b = pool.intern("beta");
        assert_ne!(a, b);
        assert_eq!(pool.intern("alpha"), a);
        assert_eq!(pool.resolve(a), "alpha");
        assert_eq!(pool.resolve(b), "beta");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn side_arrays_track_multiplicity_and_maybe() {
        let t = sample_table();
        let ct = ColumnarTable::from_rows(&t);
        assert_eq!(ct.maybe_flags(), &[false, true, false]);
        assert_eq!(ct.col(0).multiplicities(), &[1, 1, 2]);
        assert_eq!(ct.stats().assignments, 7);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = CompactTable::new(vec!["x".into()]);
        let ct = ColumnarTable::from_rows(&t);
        assert!(ct.is_empty());
        assert_eq!(ct.to_rows(), t);
    }
}
