//! Assignments: the building block of compact-table cells (§3 of the paper).
//!
//! `exact(s)` encodes exactly one value; `contain(s)` encodes *every*
//! token-aligned sub-span of `s`. `contain` is what lets compact tables
//! stay polynomially smaller than the a-tables they stand for.

use crate::value::Value;
use iflex_text::{DocumentStore, Span};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One assignment within a cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Assignment {
    /// Exactly this value (modulo string→numeric cast at use sites).
    Exact(Value),
    /// Any token-aligned sub-span of this span.
    Contain(Span),
}

impl Assignment {
    /// Shorthand for `Exact(Value::Span(s))`.
    pub fn exact_span(s: Span) -> Self {
        Assignment::Exact(Value::Span(s))
    }

    /// Number of values this assignment encodes.
    pub fn value_count(&self, store: &DocumentStore) -> u64 {
        match self {
            Assignment::Exact(_) => 1,
            Assignment::Contain(s) => store.doc(s.doc).tokens().subspan_count(s.start, s.end),
        }
    }

    /// Iterates the values this assignment encodes.
    pub fn values<'a>(&'a self, store: &'a DocumentStore) -> Box<dyn Iterator<Item = Value> + 'a> {
        match self {
            Assignment::Exact(v) => Box::new(std::iter::once(v.clone())),
            Assignment::Contain(s) => Box::new(
                store
                    .doc(s.doc)
                    .tokens()
                    .subspans(s.start, s.end)
                    .map(move |(a, b)| Value::Span(Span::new(s.doc, a, b))),
            ),
        }
    }

    /// True when this assignment's value set includes `v`.
    pub fn encodes(&self, v: &Value, store: &DocumentStore) -> bool {
        match self {
            Assignment::Exact(e) => e == v,
            Assignment::Contain(s) => match v {
                Value::Span(vs) => {
                    if !s.contains(vs) || vs.is_empty() {
                        return false;
                    }
                    // must be token-aligned within the doc
                    let toks = store.doc(s.doc).tokens();
                    let r = toks.tokens_within(vs.start, vs.end);
                    toks.cover(r) == Some((vs.start, vs.end))
                }
                _ => false,
            },
        }
    }

    /// True when every value of `other` is also a value of `self`.
    pub fn covers(&self, other: &Assignment, store: &DocumentStore) -> bool {
        match (self, other) {
            (Assignment::Contain(a), Assignment::Contain(b)) => a.contains(b),
            (_, Assignment::Exact(v)) => self.encodes(v, store),
            (Assignment::Exact(_), Assignment::Contain(b)) => {
                // only possible if b encodes exactly one value equal to ours
                let toks = store.doc(b.doc).tokens();
                if toks.subspan_count(b.start, b.end) != 1 {
                    return false;
                }
                let (s, e) = toks
                    .cover(toks.tokens_within(b.start, b.end))
                    .expect("count==1 implies cover");
                self.encodes(&Value::Span(Span::new(b.doc, s, e)), store)
            }
        }
    }

    /// The span the assignment ranges over, when any.
    pub fn span(&self) -> Option<Span> {
        match self {
            Assignment::Exact(v) => v.span(),
            Assignment::Contain(s) => Some(*s),
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assignment::Exact(v) => write!(f, "exact({v})"),
            Assignment::Contain(s) => write!(f, "contain({s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::DocId;

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    #[test]
    fn exact_counts_one() {
        let (st, d) = store_with("a b c");
        let a = Assignment::exact_span(Span::new(d, 0, 1));
        assert_eq!(a.value_count(&st), 1);
        assert_eq!(a.values(&st).count(), 1);
    }

    #[test]
    fn contain_enumerates_token_subspans() {
        let (st, d) = store_with("one two three");
        let a = Assignment::Contain(Span::new(d, 0, 13));
        assert_eq!(a.value_count(&st), 6);
        let vals: Vec<_> = a.values(&st).collect();
        assert_eq!(vals.len(), 6);
        assert!(vals.contains(&Value::Span(Span::new(d, 0, 3)))); // "one"
        assert!(vals.contains(&Value::Span(Span::new(d, 4, 13)))); // "two three"
    }

    #[test]
    fn encodes_respects_token_alignment() {
        let (st, d) = store_with("one two");
        let a = Assignment::Contain(Span::new(d, 0, 7));
        assert!(a.encodes(&Value::Span(Span::new(d, 0, 3)), &st));
        assert!(a.encodes(&Value::Span(Span::new(d, 0, 7)), &st));
        assert!(!a.encodes(&Value::Span(Span::new(d, 0, 2)), &st)); // "on"
        assert!(!a.encodes(&Value::Str("one".into()), &st));
    }

    #[test]
    fn covers_relation() {
        let (st, d) = store_with("one two three");
        let big = Assignment::Contain(Span::new(d, 0, 13));
        let small = Assignment::Contain(Span::new(d, 0, 7));
        let ex = Assignment::exact_span(Span::new(d, 4, 7));
        assert!(big.covers(&small, &st));
        assert!(!small.covers(&big, &st));
        assert!(big.covers(&ex, &st));
        assert!(!ex.covers(&big, &st));
        // single-token contain covered by matching exact
        let one_tok = Assignment::Contain(Span::new(d, 4, 7));
        assert!(ex.covers(&one_tok, &st));
    }
}
