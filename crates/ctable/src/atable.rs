//! A-tables (§3): the non-compact approximate representation, used as the
//! exact reference model and as the intermediate form of the default
//! BAnnotate strategy (§4.3).

use crate::assignment::Assignment;
use crate::cell::Cell;
use crate::table::CompactTable;
use crate::tuple::CompactTuple;
use crate::value::Value;
use iflex_text::{DocumentStore, Span};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An a-tuple: a set of possible values per attribute plus the maybe flag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ATuple {
    /// The cells.
    pub cells: Vec<BTreeSet<Value>>,
    /// The maybe.
    pub maybe: bool,
}

impl ATuple {
    /// Creates a new instance.
    pub fn new(cells: Vec<BTreeSet<Value>>) -> Self {
        ATuple {
            cells,
            maybe: false,
        }
    }

    /// Number of concrete tuples represented (product of cell sizes).
    pub fn choice_count(&self) -> u64 {
        self.cells
            .iter()
            .fold(1u64, |acc, c| acc.saturating_mul(c.len() as u64))
    }
}

/// An a-table: columns plus a multiset of a-tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ATable {
    /// The cols.
    pub cols: Vec<String>,
    /// The tuples.
    pub tuples: Vec<ATuple>,
}

/// Error raised when a conversion would enumerate too many values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLarge {
    /// The budget.
    pub budget: usize,
    /// The needed.
    pub needed: u64,
}

impl std::fmt::Display for TooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "a-table conversion exceeds budget: needs {} values, budget {}",
            self.needed, self.budget
        )
    }
}

impl std::error::Error for TooLarge {}

impl ATable {
    /// Creates a new instance.
    pub fn new(cols: Vec<String>) -> Self {
        ATable {
            cols,
            tuples: Vec::new(),
        }
    }

    /// Converts a compact table into an a-table: expansion cells are fully
    /// expanded, then each cell becomes its value set. `budget` bounds the
    /// total number of (tuple, value) entries produced.
    pub fn from_compact(
        table: &CompactTable,
        store: &DocumentStore,
        budget: usize,
    ) -> Result<ATable, TooLarge> {
        let mut out = ATable::new(table.columns().to_vec());
        let mut spent: u64 = 0;
        for t in table.tuples() {
            let flats = t.expand_fully(store, budget).ok_or(TooLarge {
                budget,
                needed: t.possible_tuple_count(store),
            })?;
            for ft in flats {
                let mut cells = Vec::with_capacity(ft.cells.len());
                for c in &ft.cells {
                    let vs = c.value_set(store);
                    spent = spent.saturating_add(vs.len() as u64);
                    if spent > budget as u64 {
                        return Err(TooLarge {
                            budget,
                            needed: spent,
                        });
                    }
                    cells.push(vs);
                }
                out.tuples.push(ATuple {
                    cells,
                    maybe: ft.maybe,
                });
            }
        }
        Ok(out)
    }

    /// Converts back to a compact table, condensing each value set into a
    /// minimal assignment multiset (exact values, plus `contain` whenever a
    /// set is exactly "all token-aligned sub-spans of one span").
    pub fn to_compact(&self, store: &DocumentStore) -> CompactTable {
        let mut out = CompactTable::new(self.cols.clone());
        for t in &self.tuples {
            let cells = t
                .cells
                .iter()
                .map(|vs| Cell::of(condense_values(vs, store)))
                .collect();
            out.push(CompactTuple {
                cells,
                maybe: t.maybe,
            });
        }
        out
    }

    /// Tuple count.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Condenses a set of values into assignments. Span values that form the
/// complete token-aligned sub-span set of their common cover are packed
/// into a single `contain`; everything else stays `exact`.
pub fn condense_values(values: &BTreeSet<Value>, store: &DocumentStore) -> Vec<Assignment> {
    // Partition: spans per doc vs other values.
    let mut spans: Vec<Span> = Vec::new();
    let mut others: Vec<Assignment> = Vec::new();
    for v in values {
        match v {
            Value::Span(s) => spans.push(*s),
            other => others.push(Assignment::Exact(other.clone())),
        }
    }
    if spans.is_empty() {
        return others;
    }
    // Group span values by doc, then try to pack each doc-group into
    // contains over maximal covers.
    spans.sort();
    let mut out = others;
    let mut i = 0;
    while i < spans.len() {
        let doc = spans[i].doc;
        let mut j = i;
        while j < spans.len() && spans[j].doc == doc {
            j += 1;
        }
        let group = &spans[i..j];
        pack_doc_group(doc, group, store, &mut out);
        i = j;
    }
    out
}

/// Packs one document's span values: greedily finds covers whose complete
/// sub-span set is present, emits `contain` for those, `exact` for the rest.
fn pack_doc_group(
    doc: iflex_text::DocId,
    group: &[Span],
    store: &DocumentStore,
    out: &mut Vec<Assignment>,
) {
    let set: BTreeSet<Span> = group.iter().copied().collect();
    let toks = store.doc(doc).tokens();
    let mut consumed: BTreeSet<Span> = BTreeSet::new();
    // Consider candidate covers in decreasing length: a span S is a valid
    // cover when every token-aligned sub-span of S is in the set.
    let mut candidates: Vec<Span> = set.iter().copied().collect();
    candidates.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for cand in candidates {
        if consumed.contains(&cand) {
            continue;
        }
        let n = toks.subspan_count(cand.start, cand.end);
        if n > 1 && n <= set.len() as u64 {
            let all_present = toks
                .subspans(cand.start, cand.end)
                .all(|(a, b)| set.contains(&Span::new(doc, a, b)));
            if all_present {
                out.push(Assignment::Contain(cand));
                for (a, b) in toks.subspans(cand.start, cand.end) {
                    consumed.insert(Span::new(doc, a, b));
                }
                continue;
            }
        }
    }
    for s in &set {
        if !consumed.contains(s) {
            out.push(Assignment::exact_span(*s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::DocId;

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    #[test]
    fn compact_to_atable_expands() {
        let (st, d) = store_with("a b");
        let mut ct = CompactTable::new(vec!["x".into(), "s".into()]);
        ct.push(CompactTuple::new(vec![
            Cell::exact(Value::Num(1.0)),
            Cell::expansion(vec![Assignment::Contain(Span::new(d, 0, 3))]),
        ]));
        let at = ATable::from_compact(&ct, &st, 1000).unwrap();
        assert_eq!(at.len(), 3); // "a", "b", "a b"
        assert!(at.tuples.iter().all(|t| t.cells[1].len() == 1));
    }

    #[test]
    fn budget_enforced() {
        let (st, d) = store_with("a b c d e f g h i j");
        let mut ct = CompactTable::new(vec!["s".into()]);
        ct.push(CompactTuple::new(vec![Cell::contain(Span::new(d, 0, 19))]));
        assert!(ATable::from_compact(&ct, &st, 10).is_err());
        assert!(ATable::from_compact(&ct, &st, 100).is_ok());
    }

    #[test]
    fn condense_full_subspan_set_becomes_contain() {
        let (st, d) = store_with("one two three");
        let toks = st.doc(d).tokens();
        let set: BTreeSet<Value> = toks
            .subspans(0, 13)
            .map(|(a, b)| Value::Span(Span::new(d, a, b)))
            .collect();
        let assigns = condense_values(&set, &st);
        assert_eq!(assigns.len(), 1);
        assert_eq!(assigns[0], Assignment::Contain(Span::new(d, 0, 13)));
    }

    #[test]
    fn condense_partial_set_stays_exact() {
        let (st, d) = store_with("one two three");
        let mut set = BTreeSet::new();
        set.insert(Value::Span(Span::new(d, 0, 3)));
        set.insert(Value::Span(Span::new(d, 8, 13)));
        let assigns = condense_values(&set, &st);
        assert_eq!(assigns.len(), 2);
        assert!(assigns
            .iter()
            .all(|a| matches!(a, Assignment::Exact(_))));
    }

    #[test]
    fn roundtrip_compact_atable_compact_preserves_worlds_size() {
        let (st, d) = store_with("alpha beta");
        let mut ct = CompactTable::new(vec!["s".into()]);
        ct.push(CompactTuple::new(vec![Cell::contain(Span::new(d, 0, 10))]));
        let at = ATable::from_compact(&ct, &st, 1000).unwrap();
        let back = at.to_compact(&st);
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.tuples()[0].cells[0].value_set(&st),
            ct.tuples()[0].cells[0].value_set(&st)
        );
    }

    #[test]
    fn mixed_values_condense() {
        let (st, d) = store_with("a b");
        let mut set = BTreeSet::new();
        set.insert(Value::Num(5.0));
        set.insert(Value::Span(Span::new(d, 0, 1)));
        let assigns = condense_values(&set, &st);
        assert_eq!(assigns.len(), 2);
    }
}
