//! Cells of compact tuples: multisets of assignments, optionally marked
//! as *expansion cells* (§3).

use crate::assignment::Assignment;
use crate::value::Value;
use iflex_text::DocumentStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A compact-table cell.
///
/// * Non-expansion cell: the attribute takes **one** value out of the set
///   encoded by `assigns` (value-level uncertainty within a single tuple).
/// * Expansion cell (`expand == true`): the tuple stands for **one tuple
///   per value** encoded by `assigns` (tuple-multiplying shorthand, used by
///   the `from` predicate).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    assigns: Vec<Assignment>,
    expand: bool,
}

impl Cell {
    /// A cell holding exactly one known value.
    pub fn exact(v: impl Into<Value>) -> Self {
        Cell {
            assigns: vec![Assignment::Exact(v.into())],
            expand: false,
        }
    }

    /// A cell whose value is any token-aligned sub-span of `span`.
    pub fn contain(span: iflex_text::Span) -> Self {
        Cell {
            assigns: vec![Assignment::Contain(span)],
            expand: false,
        }
    }

    /// A non-expansion cell over the given assignments.
    pub fn of(assigns: Vec<Assignment>) -> Self {
        Cell {
            assigns,
            expand: false,
        }
    }

    /// An expansion cell over the given assignments.
    pub fn expansion(assigns: Vec<Assignment>) -> Self {
        Cell {
            assigns,
            expand: true,
        }
    }

    #[inline]
    /// Is expand.
    pub fn is_expand(&self) -> bool {
        self.expand
    }

    /// Marks / unmarks this cell as an expansion cell.
    pub fn set_expand(&mut self, expand: bool) {
        self.expand = expand;
    }

    #[inline]
    /// Assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assigns
    }

    /// Replaces the assignment multiset, keeping the expansion flag.
    pub fn with_assignments(&self, assigns: Vec<Assignment>) -> Cell {
        Cell {
            assigns,
            expand: self.expand,
        }
    }

    /// True when the cell encodes no value at all (σ removed everything).
    pub fn is_empty(&self) -> bool {
        self.assigns.is_empty()
    }

    /// Number of values encoded (union counted with multiplicity bound).
    pub fn value_count(&self, store: &DocumentStore) -> u64 {
        self.assigns
            .iter()
            .fold(0u64, |acc, a| acc.saturating_add(a.value_count(store)))
    }

    /// Number of assignments (the paper's convergence monitor counts these).
    pub fn assignment_count(&self) -> usize {
        self.assigns.len()
    }

    /// Iterates all encoded values (may repeat across assignments).
    pub fn values<'a>(&'a self, store: &'a DocumentStore) -> impl Iterator<Item = Value> + 'a {
        self.assigns.iter().flat_map(move |a| a.values(store))
    }

    /// The distinct encoded values.
    pub fn value_set(&self, store: &DocumentStore) -> BTreeSet<Value> {
        self.values(store).collect()
    }

    /// True when `v` is among the encoded values.
    pub fn encodes(&self, v: &Value, store: &DocumentStore) -> bool {
        self.assigns.iter().any(|a| a.encodes(v, store))
    }

    /// When the cell encodes exactly one value, returns it.
    pub fn singleton(&self, store: &DocumentStore) -> Option<Value> {
        let mut it = self.values(store);
        let first = it.next()?;
        for v in it {
            if v != first {
                return None;
            }
        }
        Some(first)
    }

    /// Fast path of [`Cell::singleton`]: a single `Exact` assignment.
    pub fn exact_singleton(&self) -> Option<&Value> {
        match self.assigns.as_slice() {
            [Assignment::Exact(v)] => Some(v),
            _ => None,
        }
    }

    /// Removes redundant assignments: duplicates and assignments fully
    /// covered by another assignment in the cell.
    pub fn condense(&mut self, store: &DocumentStore) {
        // Sort so bigger contains come first, then dedupe by coverage.
        self.assigns.sort();
        self.assigns.dedup();
        let mut kept: Vec<Assignment> = Vec::with_capacity(self.assigns.len());
        for a in self.assigns.drain(..) {
            if kept.iter().any(|k| k.covers(&a, store)) {
                continue;
            }
            kept.retain(|k| !a.covers(k, store));
            kept.push(a);
        }
        self.assigns = kept;
    }

    /// Merges another cell's assignments into this one.
    pub fn merge(&mut self, other: &Cell) {
        self.assigns.extend(other.assigns.iter().cloned());
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.expand {
            write!(f, "expand(")?;
        }
        write!(f, "{{")?;
        for (i, a) in self.assigns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")?;
        if self.expand {
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::{DocId, Span};

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    #[test]
    fn exact_cell_is_singleton() {
        let (st, d) = store_with("x");
        let c = Cell::exact(Value::Span(Span::new(d, 0, 1)));
        assert_eq!(c.value_count(&st), 1);
        assert!(c.singleton(&st).is_some());
        assert!(c.exact_singleton().is_some());
    }

    #[test]
    fn contain_cell_counts() {
        let (st, d) = store_with("a b c d");
        let c = Cell::contain(Span::new(d, 0, 7));
        assert_eq!(c.value_count(&st), 10);
        assert!(c.singleton(&st).is_none());
    }

    #[test]
    fn condense_removes_covered() {
        let (st, d) = store_with("one two three");
        let mut c = Cell::of(vec![
            Assignment::Contain(Span::new(d, 0, 13)),
            Assignment::Contain(Span::new(d, 0, 7)),
            Assignment::exact_span(Span::new(d, 4, 7)),
            Assignment::exact_span(Span::new(d, 4, 7)),
        ]);
        c.condense(&st);
        assert_eq!(c.assignments().len(), 1);
        assert_eq!(
            c.assignments()[0],
            Assignment::Contain(Span::new(d, 0, 13))
        );
    }

    #[test]
    fn condense_keeps_disjoint() {
        let (st, d) = store_with("one two three");
        let mut c = Cell::of(vec![
            Assignment::exact_span(Span::new(d, 0, 3)),
            Assignment::exact_span(Span::new(d, 4, 7)),
        ]);
        c.condense(&st);
        assert_eq!(c.assignments().len(), 2);
    }

    #[test]
    fn singleton_with_duplicate_values() {
        let (st, d) = store_with("one one"); // two tokens, same text, different spans
        let c = Cell::of(vec![
            Assignment::exact_span(Span::new(d, 0, 3)),
            Assignment::exact_span(Span::new(d, 0, 3)),
        ]);
        assert!(c.singleton(&st).is_some());
        let c2 = Cell::of(vec![
            Assignment::exact_span(Span::new(d, 0, 3)),
            Assignment::exact_span(Span::new(d, 4, 7)),
        ]);
        // different spans are different values even with identical text
        assert!(c2.singleton(&st).is_none());
    }

    #[test]
    fn expansion_flag_preserved_by_with_assignments() {
        let (_, d) = store_with("x");
        let c = Cell::expansion(vec![Assignment::Contain(Span::new(d, 0, 1))]);
        let c2 = c.with_assignments(vec![]);
        assert!(c2.is_expand());
        assert!(c2.is_empty());
    }
}
