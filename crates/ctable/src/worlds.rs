//! Possible-worlds enumeration and superset checking.
//!
//! These are the *reference semantics* against which the approximate query
//! processor's superset guarantee (§4) is property-tested. Enumeration is
//! exponential by nature and bounded by explicit budgets; production code
//! never calls it — tests and small examples do.

use crate::atable::{ATable, TooLarge};
use crate::table::CompactTable;
use crate::value::Value;
use iflex_text::DocumentStore;
use std::collections::BTreeSet;

/// A concrete relation: a *set* of concrete tuples. The paper's possible
/// relations are compared set-wise.
pub type Relation = BTreeSet<Vec<Value>>;

/// The set of possible relations represented by an a-table.
pub fn worlds_of_atable(at: &ATable, budget: usize) -> Result<BTreeSet<Relation>, TooLarge> {
    // Split tuples into certain / maybe.
    let mut worlds: BTreeSet<Relation> = BTreeSet::new();
    worlds.insert(Relation::new());
    for t in &at.tuples {
        // All value choices for this tuple.
        let mut choices: Vec<Vec<Value>> = vec![Vec::new()];
        for cell in &t.cells {
            let mut next = Vec::with_capacity(choices.len() * cell.len());
            for prefix in &choices {
                for v in cell {
                    let mut row = prefix.clone();
                    row.push(v.clone());
                    next.push(row);
                }
            }
            choices = next;
            if choices.len() > budget {
                return Err(TooLarge {
                    budget,
                    needed: choices.len() as u64,
                });
            }
        }
        if choices.is_empty() || t.cells.iter().any(BTreeSet::is_empty) {
            // A tuple with an empty cell contributes nothing; it simply
            // cannot exist, so the worlds are unchanged... unless it is a
            // *certain* tuple, which is contradictory; we treat it as absent.
            continue;
        }
        let mut next_worlds: BTreeSet<Relation> = BTreeSet::new();
        for w in &worlds {
            for row in &choices {
                let mut w2 = w.clone();
                w2.insert(row.clone());
                next_worlds.insert(w2);
            }
            if t.maybe {
                next_worlds.insert(w.clone());
            }
            if next_worlds.len() > budget {
                return Err(TooLarge {
                    budget,
                    needed: next_worlds.len() as u64,
                });
            }
        }
        worlds = next_worlds;
    }
    Ok(worlds)
}

/// The set of possible relations represented by a compact table.
pub fn worlds_of_compact(
    table: &CompactTable,
    store: &DocumentStore,
    budget: usize,
) -> Result<BTreeSet<Relation>, TooLarge> {
    let at = ATable::from_compact(table, store, budget)?;
    worlds_of_atable(&at, budget)
}

/// The union of all possible tuples across all worlds ("superset result"):
/// what a user sifting through the approximate answer actually sees.
pub fn tuple_universe(
    table: &CompactTable,
    store: &DocumentStore,
    budget: usize,
) -> Result<Relation, TooLarge> {
    let at = ATable::from_compact(table, store, budget)?;
    let mut out = Relation::new();
    for t in &at.tuples {
        let mut choices: Vec<Vec<Value>> = vec![Vec::new()];
        for cell in &t.cells {
            let mut next = Vec::with_capacity(choices.len() * cell.len().max(1));
            for prefix in &choices {
                for v in cell {
                    let mut row = Vec::with_capacity(prefix.len() + 1);
                    row.extend_from_slice(prefix);
                    row.push(v.clone());
                    next.push(row);
                }
            }
            choices = next;
            if choices.len() > budget {
                return Err(TooLarge {
                    budget,
                    needed: choices.len() as u64,
                });
            }
        }
        out.extend(choices);
        if out.len() > budget {
            return Err(TooLarge {
                budget,
                needed: out.len() as u64,
            });
        }
    }
    Ok(out)
}

/// True when every world of `sub` is also a world of `sup` — the paper's
/// superset-semantics guarantee, checked exactly.
pub fn worlds_superset(
    sup: &CompactTable,
    sub: &CompactTable,
    store: &DocumentStore,
    budget: usize,
) -> Result<bool, TooLarge> {
    let ws_sup = worlds_of_compact(sup, store, budget)?;
    let ws_sub = worlds_of_compact(sub, store, budget)?;
    Ok(ws_sub.is_subset(&ws_sup))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::cell::Cell;
    use crate::tuple::CompactTuple;
    use iflex_text::{DocId, Span};

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    #[test]
    fn certain_exact_tuple_has_one_world() {
        let (st, _) = store_with("x");
        let mut ct = CompactTable::new(vec!["a".into()]);
        ct.push(CompactTuple::new(vec![Cell::exact(Value::Num(1.0))]));
        let ws = worlds_of_compact(&ct, &st, 1000).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.iter().next().unwrap().len(), 1);
    }

    #[test]
    fn maybe_tuple_doubles_worlds() {
        let (st, _) = store_with("x");
        let mut ct = CompactTable::new(vec!["a".into()]);
        ct.push(CompactTuple::maybe(vec![Cell::exact(Value::Num(1.0))]));
        let ws = worlds_of_compact(&ct, &st, 1000).unwrap();
        assert_eq!(ws.len(), 2); // {} and {(1)}
    }

    #[test]
    fn value_choice_produces_one_world_per_value() {
        let (st, d) = store_with("a b");
        let mut ct = CompactTable::new(vec!["s".into()]);
        ct.push(CompactTuple::new(vec![Cell::of(vec![
            Assignment::exact_span(Span::new(d, 0, 1)),
            Assignment::exact_span(Span::new(d, 2, 3)),
        ])]));
        let ws = worlds_of_compact(&ct, &st, 1000).unwrap();
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn expansion_cell_multiplies_tuples_not_choices() {
        let (st, d) = store_with("a b");
        let mut ct = CompactTable::new(vec!["s".into()]);
        ct.push(CompactTuple::new(vec![Cell::expansion(vec![
            Assignment::Contain(Span::new(d, 0, 3)),
        ])]));
        // expand → 3 certain tuples ("a", "b", "a b"); single world of size 3
        let ws = worlds_of_compact(&ct, &st, 1000).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.iter().next().unwrap().len(), 3);
    }

    #[test]
    fn example_2_3_key_annotation_shape() {
        // Mirrors Figure 2.e: each possible houses relation has exactly one
        // tuple per document when p,a,h are annotated. Modeled here with a
        // choice cell: worlds = one per (p) choice.
        let (st, d) = store_with("351000 5146 2750");
        let toks: Vec<Span> = st
            .doc(d)
            .tokens()
            .tokens()
            .iter()
            .map(|t| Span::new(d, t.start, t.end))
            .collect();
        let mut ct = CompactTable::new(vec!["x".into(), "p".into()]);
        ct.push(CompactTuple::new(vec![
            Cell::exact(Value::Num(1.0)),
            Cell::of(toks.iter().map(|s| Assignment::exact_span(*s)).collect()),
        ]));
        let ws = worlds_of_compact(&ct, &st, 1000).unwrap();
        assert_eq!(ws.len(), 3);
        assert!(ws.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn superset_check() {
        let (st, _) = store_with("x");
        let mut small = CompactTable::new(vec!["a".into()]);
        small.push(CompactTuple::new(vec![Cell::exact(Value::Num(1.0))]));
        let mut big = CompactTable::new(vec!["a".into()]);
        big.push(CompactTuple::maybe(vec![Cell::exact(Value::Num(1.0))]));
        // big's worlds {∅, {(1)}} ⊇ small's worlds {{(1)}}
        assert!(worlds_superset(&big, &small, &st, 1000).unwrap());
        assert!(!worlds_superset(&small, &big, &st, 1000).unwrap());
    }

    #[test]
    fn tuple_universe_unions_choices() {
        let (st, d) = store_with("a b");
        let mut ct = CompactTable::new(vec!["s".into()]);
        ct.push(CompactTuple::new(vec![Cell::contain(Span::new(d, 0, 3))]));
        let u = tuple_universe(&ct, &st, 1000).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn budget_error_propagates() {
        let (st, d) = store_with("a b c d e f g h i j k l m n o p");
        let mut ct = CompactTable::new(vec!["s".into()]);
        ct.push(CompactTuple::maybe(vec![Cell::contain(Span::new(d, 0, 31))]));
        ct.push(CompactTuple::maybe(vec![Cell::contain(Span::new(d, 0, 31))]));
        assert!(worlds_of_compact(&ct, &st, 50).is_err());
    }
}
