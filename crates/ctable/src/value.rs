//! Scalar values appearing in (approximate) extracted relations.

use iflex_text::{parse_number, DocumentStore, Span};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

/// A concrete relational value.
///
/// Extraction produces [`Value::Span`]s; programs introduce string and
/// numeric constants; p-functions may produce booleans. `Num` wraps an
/// `f64` with a *total* order (IEEE total ordering via bit patterns with
/// -0/+0 and NaN normalized) so values can live in `BTreeSet`s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// A document fragment.
    Span(Span),
    /// A string constant.
    Str(String),
    /// A numeric constant.
    Num(f64),
    /// A boolean constant.
    Bool(bool),
    /// SQL-ish NULL (used e.g. by `journalYear != NULL` in task T4).
    Null,
}

impl Value {
    /// Numeric interpretation: `Num` directly; `Span`/`Str` parsed as a
    /// number ("modulo an optional cast from string to numeric", §3).
    pub fn as_num(&self, store: &DocumentStore) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Span(s) => parse_number(store.span_text(s)),
            Value::Str(s) => parse_number(s),
            Value::Bool(_) | Value::Null => None,
        }
    }

    /// Text interpretation.
    pub fn as_text<'a>(&'a self, store: &'a DocumentStore) -> Cow<'a, str> {
        match self {
            Value::Span(s) => Cow::Borrowed(store.span_text(s)),
            Value::Str(s) => Cow::Borrowed(s.as_str()),
            Value::Num(n) => Cow::Owned(format_num(*n)),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Null => Cow::Borrowed("NULL"),
        }
    }

    /// The underlying span, when the value is one.
    pub fn span(&self) -> Option<Span> {
        match self {
            Value::Span(s) => Some(*s),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Num(_) => 2,
            Value::Str(_) => 3,
            Value::Span(_) => 4,
        }
    }
}

fn normalize_bits(n: f64) -> u64 {
    let n = if n == 0.0 { 0.0 } else { n }; // collapse -0.0
    let bits = n.to_bits();
    // Map to a lexicographically ordered space (IEEE total order trick).
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Span(a), Value::Span(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Num(a), Value::Num(b)) => normalize_bits(*a).cmp(&normalize_bits(*b)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Span(s) => s.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Num(n) => normalize_bits(*n).hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Null => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Span(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Num(n) => write!(f, "{}", format_num(*n)),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<Span> for Value {
    fn from(s: Span) -> Self {
        Value::Span(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::DocId;

    #[test]
    fn numeric_interpretation_of_spans() {
        let mut store = DocumentStore::new();
        let d = store.add_plain("price 500,000 dollars");
        let span = Span::new(d, 6, 13);
        assert_eq!(store.span_text(&span), "500,000");
        assert_eq!(Value::Span(span).as_num(&store), Some(500000.0));
        assert_eq!(Value::Num(3.5).as_num(&store), Some(3.5));
        assert_eq!(Value::Str("92".into()).as_num(&store), Some(92.0));
        assert_eq!(Value::Null.as_num(&store), None);
    }

    #[test]
    fn total_order_on_numbers() {
        let mut v = [
            Value::Num(2.0),
            Value::Num(-1.0),
            Value::Num(0.0),
            Value::Num(f64::NAN),
        ];
        v.sort();
        assert_eq!(v[0], Value::Num(-1.0));
        assert_eq!(v[1], Value::Num(0.0));
        assert_eq!(v[2], Value::Num(2.0));
        // NaN sorts last and equals itself.
        assert_eq!(v[3], Value::Num(f64::NAN));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::Num(0.0), Value::Num(-0.0));
    }

    #[test]
    fn cross_type_ordering_is_stable() {
        let mut v = [
            Value::Span(Span::new(DocId(0), 0, 1)),
            Value::Null,
            Value::Str("a".into()),
            Value::Num(1.0),
            Value::Bool(true),
        ];
        v.sort();
        assert!(v[0].is_null());
        assert!(matches!(v[4], Value::Span(_)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Num(500000.0).to_string(), "500000");
        assert_eq!(Value::Num(35.99).to_string(), "35.99");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
