//! Compact tables: the approximate-relation representation of §3.

use crate::cell::Cell;
use crate::tuple::CompactTuple;
use crate::value::Value;
use iflex_text::DocumentStore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size statistics used by the next-effort assistant's convergence monitor
/// (§5.1): result tuples and total assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TableStats {
    /// Compact tuples stored.
    pub tuples: usize,
    /// Tuples flagged maybe (existence-uncertain).
    pub maybe_tuples: usize,
    /// The assignments.
    pub assignments: usize,
}

/// A compact table: named columns plus a multiset of compact tuples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompactTable {
    cols: Vec<String>,
    tuples: Vec<CompactTuple>,
}

impl CompactTable {
    /// An empty table with the given column names.
    pub fn new(cols: Vec<String>) -> Self {
        CompactTable {
            cols,
            tuples: Vec::new(),
        }
    }

    /// Builds a compact table from an ordinary (exact) relation: every cell
    /// becomes `{exact(v)}` (§4, step one of plan conversion).
    pub fn from_exact_rows(cols: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        let tuples = rows
            .into_iter()
            .map(|r| CompactTuple::new(r.into_iter().map(Cell::exact).collect()))
            .collect();
        CompactTable { cols, tuples }
    }

    #[inline]
    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.cols
    }

    /// Index of column `name`. An O(arity) scan — **cold-path only**: the
    /// engine resolves every column reference to a `usize` index at plan
    /// compile / lowering time (`iflex_engine::plan`), so per-tuple
    /// operator loops never call this (pinned by the `project_by_index`
    /// regression tests below).
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == name)
    }

    #[inline]
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    #[inline]
    /// The stored tuples.
    pub fn tuples(&self) -> &[CompactTuple] {
        &self.tuples
    }

    #[inline]
    /// Tuples mut.
    pub fn tuples_mut(&mut self) -> &mut Vec<CompactTuple> {
        &mut self.tuples
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    #[inline]
    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a tuple; panics (debug) on arity mismatch.
    pub fn push(&mut self, t: CompactTuple) {
        debug_assert_eq!(t.arity(), self.cols.len(), "tuple arity mismatch");
        self.tuples.push(t);
    }

    /// Drops tuples that can no longer exist (an empty cell).
    pub fn drop_impossible(&mut self) {
        self.tuples.retain(|t| !t.has_empty_cell());
    }

    /// Condenses every cell of every tuple.
    pub fn condense(&mut self, store: &DocumentStore) {
        for t in &mut self.tuples {
            for c in &mut t.cells {
                c.condense(store);
            }
        }
    }

    /// Projection onto the named columns (duplicates kept: bag semantics).
    pub fn project(&self, names: &[&str]) -> Option<CompactTable> {
        // Resolve every name exactly once, before the tuple loop.
        let idxs: Vec<usize> = names
            .iter()
            .map(|n| self.col_index(n))
            .collect::<Option<_>>()?;
        Some(self.project_idx(&idxs, names.iter().map(|n| n.to_string()).collect()))
    }

    /// Projection by pre-resolved column indices (bag semantics), renaming
    /// to `cols` — the hot path callers with lowering-time-resolved
    /// indices use directly, bypassing name resolution entirely.
    ///
    /// # Panics
    /// When an index is out of bounds for this table's arity.
    pub fn project_idx(&self, idxs: &[usize], cols: Vec<String>) -> CompactTable {
        debug_assert_eq!(idxs.len(), cols.len());
        let tuples = self
            .tuples
            .iter()
            .map(|t| CompactTuple {
                cells: idxs.iter().map(|&i| t.cells[i].clone()).collect(),
                maybe: t.maybe,
            })
            .collect();
        CompactTable { cols, tuples }
    }

    /// Number of result tuples after expanding all expansion cells — the
    /// paper's result-set size (expansion cells multiply tuples; choice
    /// cells do not). Tuples with an empty expansion cell contribute 0.
    pub fn expanded_len(&self, store: &DocumentStore) -> u64 {
        self.tuples
            .iter()
            .map(|t| {
                t.cells
                    .iter()
                    .filter(|c| c.is_expand())
                    .fold(1u64, |acc, c| acc.saturating_mul(c.value_count(store)))
            })
            .sum()
    }

    /// The **certain** sub-relation: concrete tuples present in *every*
    /// possible world — non-maybe tuples whose non-expansion cells all
    /// encode exactly one value (expansion cells enumerate certainly-
    /// existing tuples, so each of their values yields one certain tuple,
    /// provided every other cell is a singleton).
    ///
    /// Together with the superset result this brackets the true answer:
    /// `certain ⊆ truth ⊆ superset` — the complementary execution
    /// semantics §4 sketches as future work ("one that minimizes the
    /// number of incorrect tuples").
    pub fn certain_tuples(&self, store: &DocumentStore, limit: usize) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for t in &self.tuples {
            if t.maybe {
                continue;
            }
            // Every non-expansion cell must be a singleton.
            let singletons: Option<Vec<Option<Value>>> = t
                .cells
                .iter()
                .map(|c| {
                    if c.is_expand() {
                        Some(None) // enumerate below
                    } else {
                        c.singleton(store).map(Some)
                    }
                })
                .collect();
            let Some(cells) = singletons else { continue };
            // Expand the expansion cells (each value = one certain tuple).
            let mut rows: Vec<Vec<Value>> = vec![Vec::with_capacity(t.cells.len())];
            for (cell, fixed) in t.cells.iter().zip(&cells) {
                match fixed {
                    Some(v) => {
                        for r in &mut rows {
                            r.push(v.clone());
                        }
                    }
                    None => {
                        let vals: Vec<Value> = cell.values(store).collect();
                        let mut next = Vec::with_capacity(rows.len() * vals.len());
                        for r in rows {
                            for v in &vals {
                                let mut r2 = r.clone();
                                r2.push(v.clone());
                                next.push(r2);
                            }
                        }
                        rows = next;
                    }
                }
                if rows.len() + out.len() > limit {
                    return out; // budget: report what we have (still certain)
                }
            }
            out.extend(rows);
        }
        out
    }

    /// Current statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            tuples: self.tuples.len(),
            maybe_tuples: self.tuples.iter().filter(|t| t.maybe).count(),
            assignments: self.tuples.iter().map(CompactTuple::assignment_count).sum(),
        }
    }

    /// Renders the table with resolved span text — for examples and
    /// debugging, not for machine consumption.
    pub fn render(&self, store: &DocumentStore, max_rows: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.cols.join(" | "));
        for t in self.tuples.iter().take(max_rows) {
            let row: Vec<String> = t
                .cells
                .iter()
                .map(|c| {
                    let vals: Vec<String> = c
                        .values(store)
                        .take(3)
                        .map(|v| match v {
                            Value::Span(sp) => format!("{:?}", store.span_text(&sp)),
                            other => other.to_string(),
                        })
                        .collect();
                    let more = if c.value_count(store) > 3 { ", …" } else { "" };
                    format!("{{{}{more}}}", vals.join(", "))
                })
                .collect();
            let _ = writeln!(
                s,
                "{}{}",
                row.join(" | "),
                if t.maybe { " ?" } else { "" }
            );
        }
        if self.tuples.len() > max_rows {
            let _ = writeln!(s, "… ({} rows total)", self.tuples.len());
        }
        s
    }
}

impl fmt::Display for CompactTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.cols.join(" | "))?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vnum(n: f64) -> Value {
        Value::Num(n)
    }

    #[test]
    fn from_exact_rows_roundtrip() {
        let t = CompactTable::from_exact_rows(
            vec!["a".into(), "b".into()],
            vec![vec![vnum(1.0), vnum(2.0)], vec![vnum(3.0), vnum(4.0)]],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.col_index("b"), Some(1));
        assert!(t.col_index("z").is_none());
        assert_eq!(t.stats().assignments, 4);
    }

    #[test]
    fn project_keeps_order_and_maybe() {
        let mut t = CompactTable::from_exact_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec![vnum(1.0), vnum(2.0), vnum(3.0)]],
        );
        t.tuples_mut()[0].maybe = true;
        let p = t.project(&["c", "a"]).unwrap();
        assert_eq!(p.columns(), &["c".to_string(), "a".to_string()]);
        assert!(p.tuples()[0].maybe);
        assert!(t.project(&["nope"]).is_none());
    }

    /// Pins the hot-path contract `col_index` documents: projection by
    /// pre-resolved indices equals name-based projection (which resolves
    /// each name exactly once, outside the tuple loop) — so operator
    /// loops can carry `usize` indices from plan lowering and never pay
    /// the O(arity) name scan per tuple.
    #[test]
    fn project_by_index_equals_project_by_name() {
        let mut t = CompactTable::from_exact_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![vnum(1.0), vnum(2.0), vnum(3.0)],
                vec![vnum(4.0), vnum(5.0), vnum(6.0)],
            ],
        );
        t.tuples_mut()[1].maybe = true;
        let names = ["c", "a", "c"];
        let idxs: Vec<usize> = names.iter().map(|n| t.col_index(n).unwrap()).collect();
        assert_eq!(idxs, vec![2, 0, 2]);
        let by_name = t.project(&names).unwrap();
        let by_idx = t.project_idx(&idxs, names.iter().map(|n| n.to_string()).collect());
        assert_eq!(by_name, by_idx);
        assert_eq!(format!("{by_name:?}"), format!("{by_idx:?}"));
        assert!(by_idx.tuples()[1].maybe);
    }

    /// Index projection renames freely — the lowering layer aliases
    /// head columns without round-tripping through `col_index`.
    #[test]
    fn project_by_index_renames_without_name_resolution() {
        let t = CompactTable::from_exact_rows(
            vec!["a".into(), "b".into()],
            vec![vec![vnum(1.0), vnum(2.0)]],
        );
        let p = t.project_idx(&[1], vec!["renamed".into()]);
        assert_eq!(p.columns(), &["renamed".to_string()]);
        assert_eq!(p.tuples()[0].cells, vec![Cell::exact(vnum(2.0))]);
        // The rename is invisible to the source table.
        assert_eq!(t.col_index("renamed"), None);
    }

    #[test]
    fn drop_impossible_removes_empty_cells() {
        let mut t = CompactTable::new(vec!["a".into()]);
        t.push(CompactTuple::new(vec![Cell::of(vec![])]));
        t.push(CompactTuple::new(vec![Cell::exact(vnum(1.0))]));
        t.drop_impossible();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn certain_tuples_bracket_the_answer() {
        let store = DocumentStore::new();
        let mut t = CompactTable::new(vec!["a".into(), "b".into()]);
        // certain: both singletons, not maybe
        t.push(CompactTuple::new(vec![Cell::exact(vnum(1.0)), Cell::exact(vnum(2.0))]));
        // not certain: maybe flag
        t.push(CompactTuple::maybe(vec![Cell::exact(vnum(3.0)), Cell::exact(vnum(4.0))]));
        // not certain: value choice
        t.push(CompactTuple::new(vec![
            Cell::of(vec![
                crate::assignment::Assignment::Exact(vnum(5.0)),
                crate::assignment::Assignment::Exact(vnum(6.0)),
            ]),
            Cell::exact(vnum(7.0)),
        ]));
        let certain = t.certain_tuples(&store, 1000);
        assert_eq!(certain, vec![vec![vnum(1.0), vnum(2.0)]]);
    }

    #[test]
    fn certain_tuples_expand_expansion_cells() {
        let store = DocumentStore::new();
        let mut t = CompactTable::new(vec!["k".into(), "v".into()]);
        t.push(CompactTuple::new(vec![
            Cell::exact(vnum(1.0)),
            Cell::expansion(vec![
                crate::assignment::Assignment::Exact(vnum(10.0)),
                crate::assignment::Assignment::Exact(vnum(20.0)),
            ]),
        ]));
        let certain = t.certain_tuples(&store, 1000);
        assert_eq!(certain.len(), 2);
        assert!(certain.contains(&vec![vnum(1.0), vnum(10.0)]));
    }

    #[test]
    fn stats_counts_maybe() {
        let mut t = CompactTable::new(vec!["a".into()]);
        t.push(CompactTuple::maybe(vec![Cell::exact(vnum(1.0))]));
        t.push(CompactTuple::new(vec![Cell::exact(vnum(2.0))]));
        let s = t.stats();
        assert_eq!(s.tuples, 2);
        assert_eq!(s.maybe_tuples, 1);
    }
}
