//! # iflex-ctable
//!
//! The approximate-data representation at the heart of iFlex (§3 of
//! *Toward Best-Effort Information Extraction*, SIGMOD 2008):
//!
//! * [`Value`] — concrete relational values (spans, strings, numbers).
//! * [`Assignment`] — `exact(s)` / `contain(s)`, the text-specific
//!   compression that keeps approximate extracted data tractable.
//! * [`Cell`], [`CompactTuple`], [`CompactTable`] — compact tables with
//!   expansion cells and maybe-tuples.
//! * [`ATable`] — the uncompressed a-table model, used as the reference
//!   semantics and by the default BAnnotate strategy.
//! * [`worlds`] — exact possible-worlds enumeration for property tests of
//!   the processor's superset guarantee.
//!
//! ```
//! use iflex_ctable::{Assignment, Cell, CompactTable, CompactTuple, Value};
//! use iflex_text::{DocumentStore, Span};
//!
//! let mut store = DocumentStore::new();
//! let d = store.add_plain("one two three");
//!
//! // one `contain` assignment stands for all 6 token-aligned sub-spans
//! let cell = Cell::contain(Span::new(d, 0, 13));
//! assert_eq!(cell.value_count(&store), 6);
//!
//! // an expansion cell multiplies tuples instead of offering a choice
//! let mut table = CompactTable::new(vec!["s".into()]);
//! table.push(CompactTuple::new(vec![Cell::expansion(vec![
//!     Assignment::Contain(Span::new(d, 0, 13)),
//! ])]));
//! assert_eq!(table.expanded_len(&store), 6);
//! ```
//!
//! As §3 notes, compact tables are deliberately *not* a complete model:
//! they cannot express mutual exclusion between tuples. They trade that
//! expressiveness for the two approximation kinds best-effort IE actually
//! produces (tuple existence, attribute value) and for text-specific
//! compression (`contain` over token-aligned sub-spans).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod atable;
pub mod cell;
pub mod columnar;
pub mod table;
pub mod tuple;
pub mod value;
pub mod worlds;

pub use assignment::Assignment;
pub use atable::{condense_values, ATable, ATuple, TooLarge};
pub use cell::Cell;
pub use columnar::{CAssign, CellMeta, Column, ColumnarTable, SpanInterner};
pub use table::{CompactTable, TableStats};
pub use tuple::CompactTuple;
pub use value::Value;
