//! Compact tuples and their expansion semantics.

use crate::cell::Cell;
use crate::value::Value;
use iflex_text::DocumentStore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact tuple: one cell per attribute plus the *maybe* flag
/// (existence uncertainty).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactTuple {
    /// The cells.
    pub cells: Vec<Cell>,
    /// The maybe.
    pub maybe: bool,
}

impl CompactTuple {
    /// Creates a new instance.
    pub fn new(cells: Vec<Cell>) -> Self {
        CompactTuple {
            cells,
            maybe: false,
        }
    }

    /// Maybe.
    pub fn maybe(cells: Vec<Cell>) -> Self {
        CompactTuple { cells, maybe: true }
    }

    #[inline]
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// Total assignments across cells (convergence monitor metric).
    pub fn assignment_count(&self) -> usize {
        self.cells.iter().map(Cell::assignment_count).sum()
    }

    /// True when some cell encodes no values (tuple cannot exist).
    pub fn has_empty_cell(&self) -> bool {
        self.cells.iter().any(Cell::is_empty)
    }

    /// Index of the first expansion cell, if any.
    pub fn first_expansion(&self) -> Option<usize> {
        self.cells.iter().position(Cell::is_expand)
    }

    /// Expands the first expansion cell: one output tuple per encoded
    /// value, the cell replaced by `exact(value)`. Per §3, expanded tuples
    /// inherit the maybe flag.
    pub fn expand_once(&self, store: &DocumentStore) -> Option<Vec<CompactTuple>> {
        let idx = self.first_expansion()?;
        let vals = self.cells[idx].value_set(store);
        let mut out = Vec::with_capacity(vals.len());
        for v in vals {
            let mut cells = self.cells.clone();
            cells[idx] = Cell::exact(v);
            out.push(CompactTuple {
                cells,
                maybe: self.maybe,
            });
        }
        Some(out)
    }

    /// Fully expands all expansion cells. `limit` bounds the output size;
    /// `None` is returned when it would be exceeded.
    pub fn expand_fully(
        &self,
        store: &DocumentStore,
        limit: usize,
    ) -> Option<Vec<CompactTuple>> {
        let mut work = vec![self.clone()];
        loop {
            let Some(pos) = work.iter().position(|t| t.first_expansion().is_some()) else {
                return Some(work);
            };
            let t = work.swap_remove(pos);
            let expanded = t.expand_once(store).expect("expansion cell present");
            if work.len() + expanded.len() > limit {
                return None;
            }
            work.extend(expanded);
        }
    }

    /// Number of concrete tuples this compact tuple represents (product of
    /// cell value counts for non-expansion cells, sum-factor for expansion
    /// cells), saturating.
    pub fn possible_tuple_count(&self, store: &DocumentStore) -> u64 {
        self.cells
            .iter()
            .fold(1u64, |acc, c| acc.saturating_mul(c.value_count(store)))
    }

    /// Enumerates the concrete `Vec<Value>` tuples represented, after full
    /// expansion, bounded by `limit`.
    pub fn possible_tuples(
        &self,
        store: &DocumentStore,
        limit: usize,
    ) -> Option<Vec<Vec<Value>>> {
        let flats = self.expand_fully(store, limit)?;
        let mut out: Vec<Vec<Value>> = Vec::new();
        for t in flats {
            let sets: Vec<Vec<Value>> = t
                .cells
                .iter()
                .map(|c| c.value_set(store).into_iter().collect())
                .collect();
            if sets.iter().any(Vec::is_empty) {
                continue;
            }
            let total: usize = sets.iter().map(Vec::len).product();
            if out.len() + total > limit {
                return None;
            }
            let mut idx = vec![0usize; sets.len()];
            loop {
                out.push(
                    idx.iter()
                        .zip(&sets)
                        .map(|(&i, s)| s[i].clone())
                        .collect(),
                );
                // odometer increment
                let mut k = sets.len();
                loop {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < sets[k].len() {
                        break;
                    }
                    idx[k] = 0;
                    if k == 0 {
                        k = usize::MAX;
                        break;
                    }
                }
                if k == usize::MAX {
                    break;
                }
            }
            if sets.is_empty() {
                // zero-arity tuple contributes a single empty tuple
            }
        }
        Some(out)
    }
}

impl fmt::Display for CompactTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")?;
        if self.maybe {
            write!(f, "?")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use iflex_text::{DocId, Span};

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    #[test]
    fn expand_once_multiplies_tuples() {
        let (st, d) = store_with("a b");
        let t = CompactTuple::new(vec![
            Cell::exact(Value::Num(1.0)),
            Cell::expansion(vec![Assignment::Contain(Span::new(d, 0, 3))]),
        ]);
        let out = t.expand_once(&st).unwrap();
        assert_eq!(out.len(), 3); // "a", "b", "a b"
        assert!(out.iter().all(|u| u.first_expansion().is_none()));
        assert!(out.iter().all(|u| !u.maybe));
    }

    #[test]
    fn expand_preserves_maybe() {
        let (st, d) = store_with("a");
        let t = CompactTuple::maybe(vec![Cell::expansion(vec![Assignment::Contain(
            Span::new(d, 0, 1),
        )])]);
        let out = t.expand_once(&st).unwrap();
        assert!(out.iter().all(|u| u.maybe));
    }

    #[test]
    fn expand_fully_respects_limit() {
        let (st, d) = store_with("a b c d e f g h");
        let t = CompactTuple::new(vec![Cell::expansion(vec![Assignment::Contain(
            Span::new(d, 0, 15),
        )])]);
        assert!(t.expand_fully(&st, 5).is_none());
        assert!(t.expand_fully(&st, 100).is_some());
    }

    #[test]
    fn possible_tuples_cartesian() {
        let (st, d) = store_with("x y");
        let t = CompactTuple::new(vec![
            Cell::of(vec![
                Assignment::exact_span(Span::new(d, 0, 1)),
                Assignment::exact_span(Span::new(d, 2, 3)),
            ]),
            Cell::exact(Value::Num(7.0)),
        ]);
        let tuples = t.possible_tuples(&st, 100).unwrap();
        assert_eq!(tuples.len(), 2);
        assert!(tuples.iter().all(|tp| tp[1] == Value::Num(7.0)));
    }

    #[test]
    fn tuple_with_empty_cell_has_no_possible_tuples() {
        let (st, _) = store_with("x");
        let t = CompactTuple::new(vec![Cell::of(vec![]), Cell::exact(Value::Num(1.0))]);
        assert!(t.has_empty_cell());
        assert_eq!(t.possible_tuples(&st, 10).unwrap().len(), 0);
    }

    #[test]
    fn possible_count_is_product() {
        let (st, d) = store_with("a b c");
        let t = CompactTuple::new(vec![
            Cell::contain(Span::new(d, 0, 5)), // 6 values
            Cell::exact(Value::Num(1.0)),      // 1 value
        ]);
        assert_eq!(t.possible_tuple_count(&st), 6);
    }
}
