//! Reference-semantics property test: for small single-rule programs, the
//! engine's possible worlds must contain every world of the *true* Alog
//! semantics (§2.2.3) computed by brute force —
//!
//! 1. the true relation R: every (doc, value) with value a token-aligned
//!    sub-span satisfying all domain constraints (by `Verify`) and all
//!    comparisons;
//! 2. annotations applied to R per Definitions 1 and 2;
//! 3. engine worlds ⊇ the resulting set of relations.

use iflex_alog::parse_program;
use iflex_ctable::{worlds, Value};
use iflex_engine::Engine;
use iflex_features::{FeatureArg, FeatureRegistry};
use iflex_text::{DocumentStore, Span};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

type Relation = BTreeSet<Vec<Value>>;

/// Brute force: the true relation of
/// `q(x, v) :- pages(x), e(#x, v), v > T.`
/// `e(#x, v) :- from(#x, v), numeric(v) = yes [, bold-font(v) = yes]`.
fn true_relation(
    store: &DocumentStore,
    reg: &FeatureRegistry,
    docs: &[iflex_text::DocId],
    with_bold: bool,
    threshold: f64,
) -> Relation {
    let mut out = Relation::new();
    let numeric = reg.get("numeric").unwrap();
    let bold = reg.get("bold-font").unwrap();
    for &d in docs {
        let doc = store.doc(d);
        let full = doc.full_span();
        for (s, e) in doc.tokens().subspans(0, doc.len()) {
            let span = Span::new(d, s, e);
            if !numeric.verify(store, span, &FeatureArg::yes()).unwrap() {
                continue;
            }
            if with_bold && !bold.verify(store, span, &FeatureArg::yes()).unwrap() {
                continue;
            }
            let v = iflex_text::parse_number(store.span_text(&span)).unwrap();
            if v > threshold {
                out.insert(vec![Value::Span(full), Value::Span(span)]);
            }
        }
    }
    out
}

/// Definition 2 on the true relation: group by doc, one value per doc.
fn definition2_worlds(r: &Relation) -> BTreeSet<Relation> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Value, BTreeSet<Vec<Value>>> = BTreeMap::new();
    for row in r {
        groups.entry(row[0].clone()).or_default().insert(row.clone());
    }
    let mut out: BTreeSet<Relation> = BTreeSet::new();
    out.insert(Relation::new());
    for rows in groups.values() {
        let mut next = BTreeSet::new();
        for rel in &out {
            for row in rows {
                let mut r2 = rel.clone();
                r2.insert(row.clone());
                next.insert(r2);
            }
        }
        out = next;
    }
    out
}

fn build_docs(specs: &[(Vec<u8>, usize)]) -> (Arc<DocumentStore>, Vec<iflex_text::DocId>) {
    let mut store = DocumentStore::new();
    let mut ids = Vec::new();
    for (nums, bold_at) in specs {
        let body: Vec<String> = nums
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let tok = if n % 2 == 0 {
                    format!("{}", n as u32 * 3)
                } else {
                    format!("w{n}")
                };
                if i == bold_at % nums.len() {
                    format!("<b>{tok}</b>")
                } else {
                    tok
                }
            })
            .collect();
        ids.push(store.add_markup(&body.join(" ")));
    }
    (Arc::new(store), ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Without annotations: every true tuple appears in the engine's tuple
    /// universe, and the *certain* part of the engine result is a subset
    /// of the truth.
    #[test]
    fn engine_brackets_the_true_relation(
        specs in proptest::collection::vec(
            (proptest::collection::vec(0u8..40, 1..5), 0usize..4),
            1..4,
        ),
        with_bold in proptest::bool::ANY,
        threshold in 0u32..60,
    ) {
        let (store, ids) = build_docs(&specs);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        let constraint = if with_bold { ", bold-font(v) = yes" } else { "" };
        let prog = parse_program(&format!(
            "q(x, v) :- pages(x), e(#x, v), v > {threshold}.\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes{constraint}."
        ))
        .unwrap();
        let result = eng.run(&prog).unwrap();
        let truth = true_relation(eng.store(), eng.features(), &ids, with_bold, threshold as f64);

        // superset: truth ⊆ tuple universe
        let universe = worlds::tuple_universe(&result, eng.store(), 1_000_000).unwrap();
        for row in &truth {
            prop_assert!(universe.contains(row), "true tuple {row:?} lost");
        }
        // lower bound: certain ⊆ truth
        for row in result.certain_tuples(eng.store(), 1_000_000) {
            prop_assert!(truth.contains(&row), "wrong certain tuple {row:?}");
        }
    }

    /// With an attribute annotation `<v>`: every Definition-2 world of the
    /// true relation appears among the engine's worlds.
    #[test]
    fn engine_worlds_cover_definition2_of_truth(
        specs in proptest::collection::vec(
            (proptest::collection::vec(0u8..20, 1..3), 0usize..2),
            1..3,
        ),
        threshold in 0u32..30,
    ) {
        let (store, ids) = build_docs(&specs);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        let prog = parse_program(&format!(
            "q(x, <v>) :- pages(x), e(#x, v), v > {threshold}.\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        ))
        .unwrap();
        let result = eng.run(&prog).unwrap();
        let truth = true_relation(eng.store(), eng.features(), &ids, false, threshold as f64);
        let reference = definition2_worlds(&truth);
        let engine_worlds =
            worlds::worlds_of_compact(&result, eng.store(), 1_000_000).unwrap();
        for rel in &reference {
            prop_assert!(
                engine_worlds.contains(rel),
                "reference world {rel:?} missing (engine has {} worlds)",
                engine_worlds.len()
            );
        }
    }
}
