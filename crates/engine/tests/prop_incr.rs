//! Property tests of the incremental re-execution engine: for seeded
//! random developer-answer sequences over full sessions, turning
//! `use_incremental` on must be observationally invisible — byte-identical
//! final tables, the same [`StopReason`], the same question count, and the
//! same degradations — across thread counts and under injected faults at
//! every named site. The cache is a pure performance lever; serving a rule
//! from it may never change what a session computes.

use iflex::{Developer, OracleSpec, Session};
use iflex_assistant::{Answer, Question, Simulation, Strategy};
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use iflex_engine::{fault, Fault, Trigger};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Every named injection site, in a fixed order the generator indexes.
const SITES: &[&str] = &[
    fault::site::EVAL_RULE,
    fault::site::JOIN_TUPLE,
    fault::site::GENERATOR,
    fault::site::ANNOTATE,
    fault::site::IO_READ,
];

/// One tiny corpus shared by every case: corpus construction dominates a
/// session at these sizes and the inputs themselves are not under test.
fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| Corpus::build(CorpusConfig::tiny()))
}

/// A developer whose answer *sequence* is seeded-random: each question the
/// oracle could answer is returned or withheld ("I do not know") by a
/// deterministic coin. Withheld answers steer sessions down different
/// refinement paths, so the cache sees varied invalidation patterns —
/// while the same seed drives the on/off runs identically.
struct FlakyDeveloper {
    oracle: OracleSpec,
    rng: SmallRng,
    withhold_permille: u64,
}

impl FlakyDeveloper {
    fn new(oracle: OracleSpec, seed: u64, withhold_permille: u64) -> Self {
        FlakyDeveloper {
            oracle,
            rng: SmallRng::seed_from_u64(seed),
            withhold_permille,
        }
    }
}

impl Developer for FlakyDeveloper {
    fn answer(&mut self, question: &Question) -> Answer {
        let known = self
            .oracle
            .lookup(&question.attr.display(), &question.feature)
            .cloned();
        // Draw unconditionally so the stream position depends only on how
        // many questions were asked, not on which were answerable.
        let withhold = self.rng.gen_range_u64(1000) < self.withhold_permille;
        match known {
            Some(v) if !withhold => Answer::Value(v),
            _ => Answer::DontKnow,
        }
    }
}

/// Everything observable about one full session, rendered byte-comparably.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    table: String,
    stop: String,
    iterations: usize,
    questions_asked: usize,
    final_degraded: Vec<String>,
}

/// Runs one full session (iterate → ask → refine → final execution) and
/// records its observable outcome. `site` arms a `Trigger::Always` fault:
/// unlike `Nth`, an always-firing trigger is insensitive to how many times
/// a site is probed, which is exactly what caching changes — hit counts
/// may differ between configurations, observable behaviour may not.
fn observe(
    id: TaskId,
    n: usize,
    threads: usize,
    site: Option<usize>,
    seed: u64,
    withhold_permille: u64,
    use_incremental: bool,
) -> Observation {
    let c = corpus();
    let task = c.task(id, Some(n));
    let mut engine = task.engine(c);
    engine.limits.use_incremental = use_incremental;
    if let Some(i) = site {
        engine.fault.arm(
            SITES[i % SITES.len()],
            Trigger::Always,
            Fault::TooLarge,
            seed,
        );
    }
    let strategy: Box<dyn Strategy> = Box::new(Simulation::default());
    let mut session = Session::new(
        engine,
        task.program.clone(),
        strategy,
        Box::new(FlakyDeveloper::new(
            task.oracle.clone(),
            seed,
            withhold_permille,
        )),
    );
    session.config.threads = Some(threads);
    let outcome = session.run().expect("session runs");
    Observation {
        // Debug output is a faithful structural rendering; comparing it
        // keeps the assertion byte-level without requiring tables to be Ord.
        table: format!("{:?}", outcome.table),
        stop: format!("{:?}", outcome.stop),
        iterations: outcome.iterations,
        questions_asked: outcome.questions_asked,
        final_degraded: outcome
            .final_stats
            .degradations
            .iter()
            .map(|d| d.rule.clone())
            .collect(),
    }
}

const TASKS: [TaskId; 2] = [TaskId::T1, TaskId::T2];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exact runs: for any seeded answer sequence and either task, the
    /// incremental engine returns byte-identical results at 1 and 4
    /// threads.
    #[test]
    fn incremental_is_invisible(
        task_idx in 0usize..2,
        n in 4usize..14,
        seed in any::<u64>(),
        withhold in 0u64..400,
    ) {
        let id = TASKS[task_idx];
        for threads in [1usize, 4] {
            let off = observe(id, n, threads, None, seed, withhold, false);
            let on = observe(id, n, threads, None, seed, withhold, true);
            prop_assert_eq!(&on, &off, "task={:?} threads={}", id, threads);
        }
    }

    /// Faulted runs: an always-firing fault at any named site degrades the
    /// same rules and leaves the same widened table whether or not the
    /// cache is on — and degraded results are never served from it.
    #[test]
    fn incremental_is_invisible_under_faults(
        task_idx in 0usize..2,
        n in 4usize..10,
        site_idx in 0usize..5,
        seed in any::<u64>(),
        withhold in 0u64..400,
    ) {
        let id = TASKS[task_idx];
        for threads in [1usize, 4] {
            let off = observe(id, n, threads, Some(site_idx), seed, withhold, false);
            let on = observe(id, n, threads, Some(site_idx), seed, withhold, true);
            prop_assert_eq!(
                &on, &off,
                "task={:?} threads={} site={}", id, threads, SITES[site_idx]
            );
        }
    }
}

/// Pinned sanity check (not property-driven): with every answer given, T1
/// converges identically on/off, and the incremental run actually reuses
/// cached rule results (otherwise the properties above would pass
/// vacuously with the cache never consulted).
#[test]
fn incremental_run_actually_hits_the_cache() {
    let off = observe(TaskId::T1, 12, 1, None, 7, 0, false);
    let on = observe(TaskId::T1, 12, 1, None, 7, 0, true);
    assert_eq!(on, off);

    let c = corpus();
    let task = c.task(TaskId::T1, Some(12));
    let mut engine = task.engine(c);
    engine.limits.use_incremental = true;
    let mut session = Session::new(
        engine,
        task.program.clone(),
        Box::new(Simulation::default()) as Box<dyn Strategy>,
        Box::new(FlakyDeveloper::new(task.oracle.clone(), 7, 0)),
    );
    session.config.threads = Some(1);
    session.run().expect("session runs");
    let hits = session
        .engine
        .metrics
        .counter_value(iflex_engine::obs::metrics::names::INCR_HITS)
        .unwrap_or(0);
    assert!(hits > 0, "expected incremental cache hits, got {hits}");
}
