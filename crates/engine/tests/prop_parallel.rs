//! Property tests of the parallel execution engine: for any program shape
//! and any thread count, the sharded operators must produce a result
//! **byte-identical** to the serial run — including which rules degrade
//! when a fault is injected at any named site. Parallelism is a pure
//! performance lever; it may never change what the engine computes.

use iflex_alog::{parse_program, Program};
use iflex_ctable::Value;
use iflex_engine::{fault, Engine, Fault, Trigger};
use iflex_text::DocumentStore;
use proptest::prelude::*;
use std::sync::Arc;

/// Every named injection site that fires identically under serial and
/// parallel execution, in a fixed order the generator indexes.
/// `fault::site::PAR_STEAL` is deliberately absent: it is probed only
/// when a participant begins a *stolen* morsel, which never happens in a
/// serial run, so it cannot satisfy a serial-identity property. Its
/// containment guarantee is covered by [`steal_faults_degrade_not_corrupt`]
/// below and by the deterministic forced-steal unit tests in `par.rs`.
const SITES: &[&str] = &[
    fault::site::EVAL_RULE,
    fault::site::JOIN_TUPLE,
    fault::site::GENERATOR,
    fault::site::ANNOTATE,
    fault::site::IO_READ,
];

/// An engine over `n` markup documents, with a second relation for join
/// shapes and a pass-through generator for generator shapes.
fn build_engine(n: usize, threads: usize) -> Engine {
    let mut store = DocumentStore::new();
    let mut ids = Vec::new();
    for i in 0..n {
        ids.push(store.add_markup(&format!(
            "row {} val <b>{}</b> extra {}",
            i,
            (i + 1) * 10,
            i % 7
        )));
    }
    let mut eng = Engine::new(Arc::new(store));
    eng.add_doc_table("pages", &ids);
    eng.add_doc_table("others", &ids);
    eng.procs_mut().register_generator("gen", 1, |_, args| {
        let Some(Value::Span(x)) = args.first() else {
            return vec![];
        };
        vec![vec![Value::Span(*x)]]
    });
    eng.limits.threads = threads;
    eng
}

/// Program shapes covering the sharded operators: extraction with a
/// domain constraint, a cross join, a generator procedure, a comparison,
/// and an annotated head (the ψ operator).
fn program(kind: u8) -> Program {
    let src = match kind % 4 {
        0 => {
            "q(x, <v>) :- pages(x), e(#x, v).\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        }
        1 => "q(x, y) :- pages(x), others(y).",
        2 => "q(v) :- pages(x), gen(#x, v).",
        _ => {
            "q(x, v) :- pages(x), e(#x, v), v > 20.\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        }
    };
    parse_program(src).unwrap()
}

/// One full run: the result table plus the full degradation records
/// (cause, rule, truncated error, site), in order. `morsel` overrides
/// `Limits::morsel_tuples` so the sweep can force many tiny morsels
/// (maximum dispenser traffic) or one huge one (serial-like).
fn observe_morsel(
    n: usize,
    threads: usize,
    kind: u8,
    arm: Option<(usize, u64, bool)>,
    morsel: Option<(usize, usize)>,
) -> (String, Vec<String>) {
    let mut eng = build_engine(n, threads);
    if let Some(m) = morsel {
        eng.limits.morsel_tuples = m;
    }
    if let Some((site_idx, nth, panic_not_budget)) = arm {
        let f = if panic_not_budget {
            Fault::Panic("prop-parallel".into())
        } else {
            Fault::TooLarge
        };
        eng.fault.arm(SITES[site_idx % SITES.len()], Trigger::Nth(nth), f, 11);
    }
    let table = eng.run(&program(kind)).unwrap();
    let degraded: Vec<String> = eng
        .stats
        .degradations
        .iter()
        .map(|d| d.to_string())
        .collect();
    // Debug output is a faithful structural rendering; comparing it keeps
    // the assertion byte-level without requiring tables to be Ord.
    (format!("{table:?}"), degraded)
}

/// [`observe_morsel`] with the default morsel bounds.
fn observe(n: usize, threads: usize, kind: u8, arm: Option<(usize, u64, bool)>) -> (String, Vec<String>) {
    observe_morsel(n, threads, kind, arm, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact runs: every thread count yields the identical table.
    #[test]
    fn parallel_equals_serial_exact(
        n in 1usize..24,
        kind in 0u8..4,
    ) {
        let serial = observe(n, 1, kind, None);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&observe(n, threads, kind, None), &serial, "threads={}", threads);
        }
    }

    /// Faulted runs: a single armed Nth fault at any named site degrades
    /// the same rule and leaves the same widened table, at every thread
    /// count. Rules evaluate serially and every shard joins before the
    /// rule boundary, so the shared hit counter reaches a rule boundary
    /// with the same value no matter how tuples were scattered.
    #[test]
    fn faults_degrade_identically_across_thread_counts(
        n in 4usize..24,
        kind in 0u8..4,
        site_idx in 0usize..5,
        nth in 0u64..8,
        panic_not_budget in any::<bool>(),
    ) {
        let armed = Some((site_idx, nth, panic_not_budget));
        let serial = observe(n, 1, kind, armed);
        for threads in [2usize, 8] {
            prop_assert_eq!(&observe(n, threads, kind, armed), &serial, "threads={}", threads);
        }
    }

    /// Warm caches (rule cache + feature memo) must be invisible: a second
    /// run on the same engine returns exactly what a fresh engine returns.
    #[test]
    fn warm_caches_preserve_results(
        n in 1usize..16,
        kind in 0u8..4,
    ) {
        let prog = program(kind);
        let mut eng = build_engine(n, 8);
        let first = format!("{:?}", eng.run(&prog).unwrap());
        let warm = format!("{:?}", eng.run(&prog).unwrap());
        prop_assert_eq!(&warm, &first);
        prop_assert_eq!(&observe(n, 8, kind, None).0, &first);
    }

    /// Morsel-size sweep (exact runs): from pathological 1-tuple morsels
    /// (maximum dispenser and steal traffic) to morsels larger than the
    /// input (serial-like), every configuration folds to the serial
    /// table at every thread count.
    #[test]
    fn morsel_sizes_preserve_exact_results(
        n in 1usize..24,
        kind in 0u8..4,
        min_idx in 0usize..4,
    ) {
        let min = [1usize, 2, 4, 64][min_idx];
        let serial = observe(n, 1, kind, None);
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &observe_morsel(n, threads, kind, None, Some((min, min * 4))),
                &serial,
                "threads={} morsel_min={}", threads, min
            );
        }
    }

    /// Morsel-size × threads × fault-site sweep: a single armed Nth fault
    /// at any serial-reachable site degrades the same rule with the
    /// identical record and leaves the identical widened table, no matter
    /// how the index space was morselized.
    #[test]
    fn morsel_sizes_degrade_identically(
        n in 4usize..24,
        kind in 0u8..4,
        site_idx in 0usize..5,
        nth in 0u64..6,
        panic_not_budget in any::<bool>(),
        min_idx in 0usize..3,
    ) {
        let min = [1usize, 2, 16][min_idx];
        let armed = Some((site_idx, nth, panic_not_budget));
        let serial = observe(n, 1, kind, armed);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(
                &observe_morsel(n, threads, kind, armed, Some((min, min * 4))),
                &serial,
                "threads={} morsel_min={}", threads, min
            );
        }
    }
}

/// Acceptance gate: tracing is a pure observer. Enabling it changes no
/// result at any thread count, and the journal — including the shard
/// spans emitted inside scatter workers — is well-nested.
#[test]
fn traced_runs_match_untraced_at_every_thread_count() {
    use iflex_engine::obs::{validate_nesting, SpanKind};
    for kind in 0..4u8 {
        let baseline = observe(16, 1, kind, None);
        for threads in [1usize, 2, 4, 8] {
            let mut eng = build_engine(16, threads);
            eng.tracer.enable();
            let table = eng.run(&program(kind)).unwrap();
            assert_eq!(
                format!("{table:?}"),
                baseline.0,
                "threads={threads} kind={kind}"
            );
            let spans = validate_nesting(&eng.tracer.events()).expect("well-formed journal");
            assert!(spans.iter().any(|s| s.kind == SpanKind::Run));
            assert!(spans.iter().any(|s| s.kind == SpanKind::Rule));
            assert!(spans.iter().any(|s| s.kind == SpanKind::Operator));
        }
    }
}

/// A trace-disabled engine must journal nothing: the tracer's event and
/// drop counters stay at zero across full runs (the begin/end calls are
/// single relaxed atomic loads that allocate nothing).
#[test]
fn disabled_tracer_journals_nothing_across_runs() {
    let mut eng = build_engine(16, 4);
    for kind in 0..4u8 {
        eng.run(&program(kind)).unwrap();
    }
    assert_eq!(eng.tracer.recorded(), 0, "no events journaled");
    assert_eq!(eng.tracer.dropped(), 0, "nothing hit the journal cap");
    assert!(eng.tracer.events().is_empty());
}

/// Faulted + traced: the degradation instant carries the cause and the
/// record carries the injection site (satellite 3).
#[test]
fn traced_degradation_names_site_and_rule() {
    let mut eng = build_engine(8, 2);
    eng.tracer.enable();
    eng.fault
        .arm(fault::site::EVAL_RULE, Trigger::Nth(0), Fault::TooLarge, 3);
    eng.run(&program(0)).unwrap();
    let d = &eng.stats.degradations[0];
    assert_eq!(d.site.as_deref(), Some(fault::site::EVAL_RULE));
    assert!(d.to_string().contains("site: engine.eval_rule"), "{d}");
    let events = eng.tracer.events();
    let inst = events
        .iter()
        .find(|e| e.name == "degradation")
        .expect("degradation instant");
    let note = inst.note.as_deref().unwrap_or("");
    assert!(note.contains("budget"), "{note}");
    assert!(note.contains("engine.eval_rule"), "{note}");
}

/// A fault injected at the steal site — the thief panicking the moment it
/// begins someone else's morsel — must be contained exactly like any rule
/// failure: the run still completes, the affected rule degrades (never
/// corrupts), and the record names `engine.par_steal`. Steals are
/// timing-dependent (this probe only fires on a real steal), so the run
/// is retried with pathological 1-tuple morsels until one fires; if the
/// scheduler never interleaves (possible on a single-core host), the
/// deterministic forced-steal coverage in `par.rs` stands in.
#[test]
fn steal_faults_degrade_not_corrupt() {
    for attempt in 0..32 {
        let mut eng = build_engine(48, 4);
        eng.limits.morsel_tuples = (1, 2);
        eng.fault.arm(
            fault::site::PAR_STEAL,
            Trigger::Always,
            Fault::Panic("mid-steal".into()),
            attempt,
        );
        let table = eng.run(&program(1)).expect("steal fault must not abort the run");
        if eng.fault.fired_count(fault::site::PAR_STEAL) == 0 {
            continue; // no steal happened this run; try again
        }
        let d = eng
            .stats
            .degradations
            .iter()
            .find(|d| d.site.as_deref() == Some(fault::site::PAR_STEAL))
            .expect("a fired steal fault must be recorded as a degradation");
        assert!(d.truncated.contains("mid-steal"), "{d}");
        // Degraded, not corrupted: the widened table still has the rule's
        // declared columns.
        assert_eq!(table.columns(), &["x", "y"], "{table:?}");
        return;
    }
    eprintln!("steal never fired in 32 attempts (single-core scheduler); covered by par.rs unit tests");
}
