//! Property tests of the processor's superset guarantee (§4): for small
//! random inputs, the set of possible worlds of an operator's output must
//! contain every world-consistent answer — checked against brute-force
//! possible-worlds enumeration.

use iflex_alog::parse_program;
use iflex_ctable::worlds;
use iflex_engine::Engine;
use iflex_text::DocumentStore;
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a random "record": a few word tokens mixed with numbers, some
/// bolded.
fn record(words: &[u32], bold_at: usize) -> String {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let tok = if w % 2 == 0 {
                format!("{}", w * 7)
            } else {
                format!("w{w}")
            };
            if i == bold_at {
                format!("<b>{tok}</b>")
            } else {
                tok
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every truly-satisfying concrete extraction survives the approximate
    /// selection pipeline: if a document contains a bold numeric token
    /// above the threshold, the result must keep that document with that
    /// token among the possible values.
    #[test]
    fn selections_never_lose_true_answers(
        docs in proptest::collection::vec(
            (proptest::collection::vec(0u32..40, 2..6), 0usize..4),
            1..4,
        ),
        threshold in 0u32..150,
    ) {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        let mut sources = Vec::new();
        for (words, bold_at) in &docs {
            let src = record(words, *bold_at % words.len());
            ids.push(store.add_markup(&src));
            sources.push(src);
        }
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        let prog = parse_program(&format!(
            r#"
            q(x, v) :- pages(x), e(#x, v), v > {threshold}.
            e(#x, v) :- from(#x, v), numeric(v) = yes, bold-font(v) = yes.
        "#
        ))
        .unwrap();
        let result = eng.run(&prog).unwrap();

        // ground truth: per doc, the bold numeric tokens above threshold
        for (id, src) in ids.iter().zip(&sources) {
            let doc = eng.store().doc(*id);
            let expected: Vec<String> = src
                .split(' ')
                .filter(|t| t.starts_with("<b>"))
                .map(|t| t.trim_start_matches("<b>").trim_end_matches("</b>").to_string())
                .filter(|t| {
                    t.parse::<f64>()
                        .map(|v| v > threshold as f64)
                        .unwrap_or(false)
                })
                .collect();
            for val in expected {
                // some result tuple for this doc must encode `val`
                let found = result.tuples().iter().any(|t| {
                    t.cells[0]
                        .values(eng.store())
                        .any(|v| v.span().map(|s| s.doc == *id).unwrap_or(false))
                        && t.cells[1]
                            .values(eng.store())
                            .any(|v| v.as_text(eng.store()) == val.as_str())
                });
                prop_assert!(found, "lost true answer {val} in doc {id:?} ({})", doc.text());
            }
        }
    }

    /// Comparison selections keep supersets: the kept tuples' worlds
    /// contain every world of a brute-force-filtered table.
    #[test]
    fn comparison_keeps_world_superset(
        nums in proptest::collection::vec(0u32..30, 1..5),
        threshold in 0u32..25,
    ) {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        for n in &nums {
            ids.push(store.add_plain(format!("a {} b {}", n, n + 3)));
        }
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        let prog = parse_program(&format!(
            r#"
            q(v) :- pages(x), e(#x, v), v > {threshold}.
            e(#x, v) :- from(#x, v), numeric(v) = yes.
        "#
        ))
        .unwrap();
        let result = eng.run(&prog).unwrap();
        // brute force: every number token > threshold must appear in the
        // result's tuple universe
        let universe = worlds::tuple_universe(&result, eng.store(), 1_000_000).unwrap();
        let universe_texts: std::collections::BTreeSet<String> = universe
            .iter()
            .map(|row| row[0].as_text(eng.store()).to_string())
            .collect();
        for n in &nums {
            for cand in [*n, n + 3] {
                if cand > threshold {
                    prop_assert!(
                        universe_texts.contains(&cand.to_string()),
                        "{cand} missing from universe {universe_texts:?}"
                    );
                }
            }
        }
    }

    /// The ψ annotation operator preserves worlds superset: annotating
    /// cannot drop any (key, value) pair that some world supports.
    #[test]
    fn annotation_preserves_universe(
        nums in proptest::collection::vec(0u32..20, 1..4),
    ) {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        for n in &nums {
            ids.push(store.add_plain(format!("{} x {}", n, n + 1)));
        }
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &ids);
        let plain = parse_program(
            "q(x, v) :- pages(x), e(#x, v).\ne(#x, v) :- from(#x, v), numeric(v) = yes.",
        )
        .unwrap();
        let annotated = parse_program(
            "q(x, <v>) :- pages(x), e(#x, v).\ne(#x, v) :- from(#x, v), numeric(v) = yes.",
        )
        .unwrap();
        let u_plain = worlds::tuple_universe(
            &eng.run(&plain).unwrap(), eng.store(), 1_000_000).unwrap();
        let u_ann = worlds::tuple_universe(
            &eng.run(&annotated).unwrap(), eng.store(), 1_000_000).unwrap();
        // annotation regroups but must not lose any possible pair
        prop_assert!(u_plain.is_subset(&u_ann) || u_ann.is_superset(&u_plain));
        prop_assert_eq!(&u_ann, &u_plain);
    }
}
