//! Property tests of the columnar compact-table core and the batch
//! `Verify`/`Refine` entry points (DESIGN.md §14): for any program
//! shape, thread count, optimizer setting, and fault arm, executing
//! over column runs (`Limits::use_columnar`, the default) must produce
//! a result **byte-identical** to the row core — same table rendering,
//! same stop behavior, same degradation records. The columnar core is a
//! pure performance lever, exactly like the optimizer and the morsel
//! executor before it.
//!
//! The suite also pins the batch entry points directly: the `Feature`
//! trait's `verify_run`/`verify_value_run`/`refine_run` over a random
//! contiguous run must equal the per-span scalar calls for **every**
//! registered feature, and the engine's `apply_constraint_run` must
//! equal per-cell `apply_constraint_memo` over random cell runs — cold,
//! under a shared memo, and on a warm second pass (the borrowed-key
//! batch-hit path).
//!
//! Fault arms use `Trigger::Always`, mirroring `prop_opt`: an
//! always-armed site fires on its first visit in both modes whenever
//! the site is visited at all, so the same rules degrade for the same
//! cause regardless of how much per-tuple work each core saves.

use iflex_alog::{parse_program, Program};
use iflex_ctable::{Assignment, Cell, Value};
use iflex_engine::constraint::{apply_constraint_memo, apply_constraint_run, chain_ctx};
use iflex_engine::memo::FeatureMemo;
use iflex_engine::{fault, CompiledConstraint, Engine, Fault, Trigger};
use iflex_features::{Feature, FeatureArg, FeatureRegistry};
use iflex_text::{DocumentStore, Span};
use proptest::prelude::*;
use std::sync::Arc;

/// Every engine-side injection site the columnar rewrite touches or
/// skirts, in a fixed order the generator indexes.
const SITES: &[&str] = &[
    fault::site::EVAL_RULE,
    fault::site::MEMO_LOOKUP,
    fault::site::JOIN_TUPLE,
    fault::site::GENERATOR,
    fault::site::ANNOTATE,
];

/// An engine over `n` markup documents plus a 3×-larger second corpus
/// (so join shapes exercise the row-based fused join under both cores)
/// and a pass-through generator. Duplicate-heavy on purpose: every
/// third page repeats the same bold value, so column runs actually
/// contain repeated cells and the per-distinct-cell batch paths do
/// strictly less work than the row core.
fn build_engine(n: usize, threads: usize, use_columnar: bool, use_optimizer: bool) -> Engine {
    let mut store = DocumentStore::new();
    let mut pages = Vec::new();
    for i in 0..n {
        pages.push(store.add_markup(&format!(
            "row {} val <b>{}</b> extra {}",
            i,
            (i / 3 + 1) * 10,
            i % 7
        )));
    }
    let mut big = Vec::new();
    for i in 0..3 * n {
        big.push(store.add_markup(&format!("item {} cost <b>{}</b>", i, i + 5)));
    }
    let r2_rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let d = store.add_plain(format!("{}", i * 3));
            vec![Value::Num(i as f64), Value::Span(store.doc(d).full_span())]
        })
        .collect();
    let mut eng = Engine::new(Arc::new(store));
    eng.add_doc_table("pages", &pages);
    eng.add_doc_table("big", &big);
    eng.add_table(
        "r2",
        iflex_ctable::CompactTable::from_exact_rows(vec!["a".to_string(), "b".to_string()], r2_rows),
    );
    eng.procs_mut().register_generator("gen", 1, |_, args| {
        let Some(Value::Span(x)) = args.first() else {
            return vec![];
        };
        vec![vec![Value::Span(*x)]]
    });
    eng.limits.threads = threads;
    eng.limits.use_columnar = use_columnar;
    eng.limits.use_optimizer = use_optimizer;
    eng
}

/// Program shapes covering both columnar entry points and the paths the
/// rewrite must leave untouched: a constraint chain (standalone σ with
/// the optimizer off, one fused pass with it on), a skewed cross join
/// (row-based fused join), a post-join selection with a numeric
/// constraint, a generator, and an annotated head.
fn program(kind: u8) -> Program {
    let src = match kind % 5 {
        0 => {
            "q(x, v) :- pages(x), e(#x, v), v > 20.\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        }
        1 => "q(x, y) :- pages(x), big(y).",
        2 => "q(x, a, b) :- pages(x), r2(a, b), x < a, numeric(b) = yes.",
        3 => "q(v) :- pages(x), gen(#x, v).",
        _ => {
            "q(x, <v>) :- pages(x), e(#x, v).\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        }
    };
    parse_program(src).unwrap()
}

/// One full run: the result table plus which rules degraded (with their
/// cause and site), in order.
fn observe(
    n: usize,
    threads: usize,
    kind: u8,
    use_columnar: bool,
    use_optimizer: bool,
    arm: Option<(usize, bool)>,
) -> (String, Vec<String>) {
    let mut eng = build_engine(n, threads, use_columnar, use_optimizer);
    if let Some((site_idx, panic_not_budget)) = arm {
        let f = if panic_not_budget {
            Fault::Panic("prop-batch".into())
        } else {
            Fault::TooLarge
        };
        eng.fault
            .arm(SITES[site_idx % SITES.len()], Trigger::Always, f, 17);
    }
    let table = eng.run(&program(kind)).unwrap();
    let degraded: Vec<String> = eng
        .stats
        .degradations
        .iter()
        .map(|d| d.to_string())
        .collect();
    (format!("{table:?}"), degraded)
}

/// A document store with enough structure (bold, title, list, labels)
/// that the built-in features return a mix of yes/no answers over
/// random spans instead of uniformly failing.
fn feature_store() -> (DocumentStore, Vec<Span>) {
    let mut store = DocumentStore::new();
    let mut full = Vec::new();
    for i in 0..3 {
        let id = store.add_markup(&format!(
            "Price: <b>{}</b> and label {} plus <i>Deluxe Item</i> total {} end",
            (i + 1) * 100,
            i,
            i * 7 + 2
        ));
        full.push(store.doc(id).full_span());
    }
    (store, full)
}

/// The argument type a feature accepts, found by probing (tri-state,
/// then numeric, then text) — robust to future feature additions.
fn arg_for(f: &Arc<dyn Feature>, store: &DocumentStore, probe: Span) -> FeatureArg {
    for arg in [
        FeatureArg::yes(),
        FeatureArg::Num(3.0),
        FeatureArg::Text("Price".to_string()),
    ] {
        if f.verify(store, probe, &arg).is_ok() {
            return arg;
        }
    }
    panic!("feature {} accepted no probe argument", f.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact runs: columnar ≡ row, byte for byte, at one and four worker
    /// threads, with the optimizer on (fused columnar passes) and off
    /// (standalone columnar σ).
    #[test]
    fn columnar_ablation_is_byte_identical(
        n in 3usize..20,
        kind in 0u8..5,
        use_optimizer in any::<bool>(),
    ) {
        for threads in [1usize, 4] {
            let row = observe(n, threads, kind, false, use_optimizer, None);
            let col = observe(n, threads, kind, true, use_optimizer, None);
            prop_assert_eq!(
                &col, &row,
                "threads={} optimizer={}", threads, use_optimizer
            );
        }
    }

    /// Faulted runs: an always-armed fault at any named site degrades
    /// the same rules for the same cause and leaves the same widened
    /// table, columnar or row, at either thread count.
    #[test]
    fn faults_degrade_identically_with_columnar_on_or_off(
        n in 3usize..20,
        kind in 0u8..5,
        site_idx in 0usize..5,
        panic_not_budget in any::<bool>(),
    ) {
        let armed = Some((site_idx, panic_not_budget));
        for threads in [1usize, 4] {
            let row = observe(n, threads, kind, false, true, armed);
            let col = observe(n, threads, kind, true, true, armed);
            prop_assert_eq!(&col, &row, "threads={} site={}", threads, SITES[site_idx]);
        }
    }

    /// Warm vs cold incremental cache across cores: entries warmed by a
    /// columnar run serve a row run byte-identically (and vice versa) —
    /// the cache stores row tables, the columnar form rides along behind
    /// the same `Arc` sharing and never leaks into cached bytes.
    #[test]
    fn warm_incremental_cache_is_invisible_across_cores(
        n in 3usize..16,
        kind in 0u8..5,
    ) {
        let prog = program(kind);
        let mut eng = build_engine(n, 4, true, true);
        let cold = format!("{:?}", eng.run(&prog).unwrap());
        let warm = format!("{:?}", eng.run(&prog).unwrap());
        prop_assert_eq!(&warm, &cold);
        eng.limits.use_columnar = false;
        let row_served = format!("{:?}", eng.run(&prog).unwrap());
        prop_assert_eq!(&row_served, &cold);
        // A fresh row-core engine (fully cold) agrees too.
        prop_assert_eq!(&observe(n, 4, kind, false, true, None).0, &cold);
    }

    /// The `Feature` trait's batch entry points equal the scalar loops
    /// for every registered feature over a random contiguous run of
    /// spans — positionally aligned, including errors.
    #[test]
    fn batch_verify_refine_equal_scalar_for_all_features(
        raw in proptest::collection::vec((0u32..40, 1u32..24), 1..12),
    ) {
        let (store, full) = feature_store();
        let spans: Vec<Span> = raw
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| {
                let base = full[i % full.len()];
                let s = base.start + (start % base.len().max(1)).min(base.len() - 1);
                let e = (s + len).min(base.end);
                Span::new(base.doc, s, e.max(s + 1))
            })
            .collect();
        let values: Vec<Value> = spans
            .iter()
            .enumerate()
            .map(|(i, &s)| match i % 3 {
                0 => Value::Span(s),
                1 => Value::Num(i as f64 * 10.0),
                _ => Value::Str(format!("v{i}")),
            })
            .collect();
        let reg = FeatureRegistry::default();
        for name in reg.names() {
            let f = reg.get(name).unwrap();
            let arg = arg_for(f, &store, full[0]);
            let batch = f.verify_run(&store, &spans, &arg);
            let scalar: Result<Vec<bool>, _> =
                spans.iter().map(|&s| f.verify(&store, s, &arg)).collect();
            prop_assert_eq!(
                format!("{batch:?}"), format!("{scalar:?}"),
                "verify_run diverges for {}", name
            );
            let batch = f.refine_run(&store, &spans, &arg);
            let scalar: Result<Vec<Vec<Assignment>>, _> =
                spans.iter().map(|&s| f.refine(&store, s, &arg)).collect();
            prop_assert_eq!(
                format!("{batch:?}"), format!("{scalar:?}"),
                "refine_run diverges for {}", name
            );
            let batch = f.verify_value_run(&store, &values, &arg);
            let scalar: Result<Vec<bool>, _> = values
                .iter()
                .map(|v| f.verify_value(&store, v, &arg))
                .collect();
            prop_assert_eq!(
                format!("{batch:?}"), format!("{scalar:?}"),
                "verify_value_run diverges for {}", name
            );
        }
    }

    /// The engine's batch constraint entry point equals per-cell scalar
    /// application over a random run of cells — cold, under a shared
    /// memo (cold then warm, exercising the borrowed-key batch-hit
    /// path), with a prior chained on top.
    #[test]
    fn apply_constraint_run_equals_per_cell(
        raw in proptest::collection::vec((0u32..40, 1u32..24, 0u8..4), 1..10),
        with_prior in any::<bool>(),
    ) {
        let (store, full) = feature_store();
        let cells: Vec<Cell> = raw
            .iter()
            .enumerate()
            .map(|(i, &(start, len, shape))| {
                let base = full[i % full.len()];
                let s = base.start + (start % base.len().max(1)).min(base.len() - 1);
                let e = (s + len).min(base.end).max(s + 1);
                let span = Span::new(base.doc, s, e);
                match shape {
                    0 => Cell::contain(span),
                    1 => Cell::exact(Value::Span(span)),
                    2 => Cell::exact(Value::Num((i as f64) * 10.0)),
                    _ => Cell::of(vec![
                        Assignment::Contain(span),
                        Assignment::Exact(Value::Num(30.0)),
                    ]),
                }
            })
            .collect();
        let new = CompiledConstraint {
            feature: "numeric".to_string(),
            arg: FeatureArg::yes(),
        };
        let priors: Vec<CompiledConstraint> = if with_prior {
            vec![CompiledConstraint {
                feature: "bold-font".to_string(),
                arg: FeatureArg::yes(),
            }]
        } else {
            Vec::new()
        };
        let features = FeatureRegistry::default();
        let refs: Vec<&Cell> = cells.iter().collect();
        let scalar: Vec<Cell> = cells
            .iter()
            .map(|c| apply_constraint_memo(c, &new, &priors, &store, &features, None).unwrap())
            .collect();
        // Cold, no memo.
        let batch = apply_constraint_run(&refs, &new, &priors, &store, &features, None, None)
            .unwrap();
        prop_assert_eq!(format!("{batch:?}"), format!("{scalar:?}"));
        // Shared memo: a cold pass fills it, a warm pass must serve the
        // identical cells from the batch lookup.
        let memo = FeatureMemo::new();
        let ctx = chain_ctx(&new, &priors);
        let cold = apply_constraint_run(
            &refs, &new, &priors, &store, &features, Some(&memo), Some(&ctx),
        )
        .unwrap();
        prop_assert_eq!(format!("{cold:?}"), format!("{scalar:?}"));
        let warm = apply_constraint_run(
            &refs, &new, &priors, &store, &features, Some(&memo), Some(&ctx),
        )
        .unwrap();
        prop_assert_eq!(format!("{warm:?}"), format!("{scalar:?}"));
    }
}

/// The columnar path actually runs (this guards against the ablation
/// tests passing vacuously because every plan skipped the columnar
/// branch): a constraint directly over a stable extensional table is
/// converted on its second sight — both standalone (optimizer off) and
/// fused (optimizer on) — while the row core performs no conversions.
/// The incremental cache is disabled so the second run re-evaluates
/// instead of serving the first run's results.
#[test]
fn columnar_path_actually_runs() {
    let prog = parse_program("q(x) :- pages(x), numeric(x) = yes.").unwrap();
    for use_optimizer in [true, false] {
        let mut eng = build_engine(8, 1, true, use_optimizer);
        eng.limits.use_incremental = false;
        // Second-sight policy: one warm-up run notes the allocation, the
        // second converts it.
        eng.run(&prog).unwrap();
        eng.run(&prog).unwrap();
        assert!(
            eng.columnar_conversions() > 0,
            "no columnar conversion happened (optimizer={use_optimizer})"
        );
    }
    let mut row = build_engine(8, 1, false, true);
    row.limits.use_incremental = false;
    row.run(&prog).unwrap();
    row.run(&prog).unwrap();
    assert_eq!(row.columnar_conversions(), 0);
}
