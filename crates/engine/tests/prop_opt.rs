//! Property tests of the logical-plan optimizer (DESIGN.md §11): for any
//! program shape, thread count, and fault arm, the optimized execution
//! must produce a result **byte-identical** to the unoptimized one —
//! same table rendering, same degradation records. The optimizer is a
//! pure performance lever; `Limits::use_optimizer` is an ablation knob
//! that may never change what the engine computes.
//!
//! Fault arms use `Trigger::Always`: an always-armed site fires on its
//! first visit in both modes whenever the site is visited at all, so the
//! same rules degrade for the same cause. (`Trigger::Nth` visit *counts*
//! are plan-dependent by design — doing less work is the optimizer's
//! whole point — so Nth equivalence is deliberately out of scope; see
//! the module docs in `lplan`.)

use iflex_alog::{parse_program, Program};
use iflex_ctable::Value;
use iflex_engine::{fault, Engine, Fault, Trigger};
use iflex_text::DocumentStore;
use proptest::prelude::*;
use std::sync::Arc;

/// Every engine-side injection site the optimizer's rewrites could
/// plausibly disturb, in a fixed order the generator indexes.
const SITES: &[&str] = &[
    fault::site::EVAL_RULE,
    fault::site::MEMO_LOOKUP,
    fault::site::JOIN_TUPLE,
    fault::site::GENERATOR,
    fault::site::ANNOTATE,
];

/// An engine over `n` markup documents plus a 3×-larger second corpus
/// (`big`) so join-orientation flips actually trigger, and a
/// pass-through generator for generator shapes.
fn build_engine(n: usize, threads: usize, use_optimizer: bool) -> Engine {
    let mut store = DocumentStore::new();
    let mut pages = Vec::new();
    for i in 0..n {
        pages.push(store.add_markup(&format!(
            "row {} val <b>{}</b> extra {}",
            i,
            (i + 1) * 10,
            i % 7
        )));
    }
    let mut big = Vec::new();
    for i in 0..3 * n {
        big.push(store.add_markup(&format!("item {} cost <b>{}</b>", i, i + 5)));
    }
    // A two-column table (exact number, numeric-text span) for the
    // post-join-selection shape.
    let r2_rows: Vec<Vec<iflex_ctable::Value>> = (0..n)
        .map(|i| {
            let d = store.add_plain(format!("{}", i * 3));
            vec![
                Value::Num(i as f64),
                Value::Span(store.doc(d).full_span()),
            ]
        })
        .collect();
    let mut eng = Engine::new(Arc::new(store));
    eng.add_doc_table("pages", &pages);
    eng.add_doc_table("big", &big);
    eng.add_table(
        "r2",
        iflex_ctable::CompactTable::from_exact_rows(
            vec!["a".to_string(), "b".to_string()],
            r2_rows,
        ),
    );
    eng.procs_mut().register_generator("gen", 1, |_, args| {
        let Some(Value::Span(x)) = args.first() else {
            return vec![];
        };
        vec![vec![Value::Span(*x)]]
    });
    eng.limits.threads = threads;
    eng.limits.use_optimizer = use_optimizer;
    eng
}

/// Program shapes covering the optimizer's passes: a constraint chain
/// that fuses (and reorders once stats warm up), a skewed cross join
/// that flips orientation, a join with a single-side post-join selection
/// that pushes down, a generator, and an annotated head.
fn program(kind: u8) -> Program {
    let src = match kind % 5 {
        0 => {
            // fusion: constraint + comparison chain over an extraction
            "q(x, v) :- pages(x), e(#x, v), v > 20.\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        }
        1 => {
            // orientation: pages × big is 1:3 — flips to outer=right,
            // exercising the order-restoring index sort
            "q(x, y) :- pages(x), big(y)."
        }
        2 => {
            // pushdown: `x < a` straddles pages × r2 and forces the
            // join; `numeric(b)` comes later in source order, touches
            // only the right side, and must commute past the comparison
            // and sink below the join (it keeps every r2 row, so
            // JOIN_TUPLE stays visited in both modes)
            "q(x, a, b) :- pages(x), r2(a, b), x < a, numeric(b) = yes."
        }
        3 => "q(v) :- pages(x), gen(#x, v).",
        _ => {
            // annotated head over a fused chain (ψ after Fused)
            "q(x, <v>) :- pages(x), e(#x, v).\n\
             e(#x, v) :- from(#x, v), numeric(v) = yes."
        }
    };
    parse_program(src).unwrap()
}

/// One full run: the result table plus which rules degraded (with their
/// cause and site), in order.
fn observe(
    n: usize,
    threads: usize,
    kind: u8,
    use_optimizer: bool,
    arm: Option<(usize, bool)>,
) -> (String, Vec<String>) {
    let mut eng = build_engine(n, threads, use_optimizer);
    if let Some((site_idx, panic_not_budget)) = arm {
        let f = if panic_not_budget {
            Fault::Panic("prop-opt".into())
        } else {
            Fault::TooLarge
        };
        eng.fault
            .arm(SITES[site_idx % SITES.len()], Trigger::Always, f, 17);
    }
    let table = eng.run(&program(kind)).unwrap();
    let degraded: Vec<String> = eng
        .stats
        .degradations
        .iter()
        .map(|d| d.to_string())
        .collect();
    (format!("{table:?}"), degraded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact runs: optimized ≡ unoptimized, byte for byte, at one and
    /// four worker threads.
    #[test]
    fn optimizer_ablation_is_byte_identical(
        n in 3usize..20,
        kind in 0u8..5,
    ) {
        for threads in [1usize, 4] {
            let off = observe(n, threads, kind, false, None);
            let on = observe(n, threads, kind, true, None);
            prop_assert_eq!(&on, &off, "threads={}", threads);
        }
    }

    /// Faulted runs: an always-armed fault at any named site degrades
    /// the same rules for the same cause and leaves the same widened
    /// table, with the optimizer on or off, at either thread count.
    #[test]
    fn faults_degrade_identically_with_optimizer_on_or_off(
        n in 3usize..20,
        kind in 0u8..5,
        site_idx in 0usize..5,
        panic_not_budget in any::<bool>(),
    ) {
        let armed = Some((site_idx, panic_not_budget));
        for threads in [1usize, 4] {
            let off = observe(n, threads, kind, false, armed);
            let on = observe(n, threads, kind, true, armed);
            prop_assert_eq!(&on, &off, "threads={} site={}", threads, SITES[site_idx]);
        }
    }

    /// Warm caches with the optimizer on (rule cache, feature memo, and
    /// the fused-pipeline tuple cache) must be invisible: a second run on
    /// the same engine returns exactly what a fresh unoptimized engine
    /// returns — and warmed feature stats may reorder plans but never
    /// change results.
    #[test]
    fn warm_optimized_caches_preserve_results(
        n in 3usize..16,
        kind in 0u8..5,
    ) {
        let prog = program(kind);
        let mut eng = build_engine(n, 4, true);
        let first = format!("{:?}", eng.run(&prog).unwrap());
        let warm = format!("{:?}", eng.run(&prog).unwrap());
        prop_assert_eq!(&warm, &first);
        prop_assert_eq!(&observe(n, 4, kind, false, None).0, &first);
    }
}

/// Fingerprint stability (DESIGN.md §11): incremental-cache entries are
/// keyed by the *pre-optimization* rule, so entries warmed by an
/// optimized run are served — byte-identically — to a later run with
/// the optimizer off, and vice versa.
#[test]
fn incremental_cache_entries_are_shared_across_optimizer_settings() {
    let prog = program(0);
    let mut eng = build_engine(8, 1, true);
    let warm = format!("{:?}", eng.run(&prog).unwrap());
    eng.limits.use_optimizer = false;
    let served = format!("{:?}", eng.run(&prog).unwrap());
    assert!(
        eng.stats.incr_hits > 0,
        "optimizer-off run must hit entries warmed by the optimized run"
    );
    assert_eq!(served, warm);
}

/// The optimizer actually fires on these shapes: the rewrite counters
/// are non-zero where the shape is built to trigger them (this guards
/// against the ablation tests passing vacuously because nothing was
/// ever rewritten).
#[test]
fn shapes_actually_exercise_the_passes() {
    use iflex_engine::obs::metrics::names;
    let checks: [(u8, &str); 3] = [
        (0, names::OPT_FUSED_NODES),
        (1, names::OPT_JOIN_FLIPS),
        (2, names::OPT_PUSHDOWNS),
    ];
    for (kind, counter) in checks {
        let mut eng = build_engine(8, 1, true);
        eng.run(&program(kind)).unwrap();
        let snap = eng.metrics.snapshot();
        let hit = snap.counters.get(counter).copied().unwrap_or(0) > 0;
        assert!(hit, "kind {kind} never bumped {counter}: {snap:?}");
    }
}
