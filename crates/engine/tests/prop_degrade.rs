//! Property tests of graceful degradation: whatever the engine degrades —
//! injected faults, panics, a zero deadline — the degraded result's set of
//! possible tuples must stay a **superset** of the exact run's. Best-effort
//! execution may widen, never lose.

use iflex_alog::parse_program;
use iflex_ctable::worlds;
use iflex_engine::{fault, Engine, Fault, FaultPlan, RunBudget, Trigger};
use iflex_text::DocumentStore;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const UNIVERSE_BUDGET: usize = 4_000_000;

/// Tiny single-digit documents keep the widened tuples' universes
/// enumerable (a widened cell covers every subspan of every doc).
fn build_engine(nums: &[(u32, u32)]) -> Engine {
    let mut store = DocumentStore::new();
    let mut ids = Vec::new();
    for (a, b) in nums {
        ids.push(store.add_plain(format!("{} {}", a % 10, b % 10)));
    }
    let mut eng = Engine::new(Arc::new(store));
    eng.add_doc_table("pages", &ids);
    eng
}

fn program(threshold: u32) -> iflex_alog::Program {
    parse_program(&format!(
        "q(x, v) :- pages(x), e(#x, v), v > {}.\n\
         e(#x, v) :- from(#x, v), numeric(v) = yes.",
        threshold % 10
    ))
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An injected fault at the rule boundary (budget overflow or a
    /// contained panic, at a random rule index) degrades the run but the
    /// degraded universe still contains every exact tuple.
    #[test]
    fn degraded_universe_contains_exact(
        nums in proptest::collection::vec((0u32..10, 0u32..10), 1..3),
        threshold in 0u32..10,
        nth in 0u64..3,
        panic_not_budget in any::<bool>(),
    ) {
        let prog = program(threshold);
        let mut exact_eng = build_engine(&nums);
        let exact = exact_eng.run(&prog).unwrap();
        let u_exact = worlds::tuple_universe(
            &exact, exact_eng.store(), UNIVERSE_BUDGET).unwrap();

        let mut deg_eng = build_engine(&nums);
        let f = if panic_not_budget {
            Fault::Panic("prop".into())
        } else {
            Fault::TooLarge
        };
        deg_eng.fault.arm(fault::site::EVAL_RULE, Trigger::Nth(nth), f, 1);
        let degraded = deg_eng.run(&prog).unwrap();
        if nth == 0 {
            // the first rule evaluation always probes the site
            prop_assert!(deg_eng.stats.degraded());
        }
        let u_deg = worlds::tuple_universe(
            &degraded, deg_eng.store(), UNIVERSE_BUDGET).unwrap();
        prop_assert!(
            u_deg.is_superset(&u_exact),
            "degraded run lost tuples: exact {} vs degraded {}",
            u_exact.len(),
            u_deg.len()
        );
    }

    /// A run whose deadline has already expired degrades everything, yet
    /// still returns a universe covering the exact result.
    #[test]
    fn expired_deadline_still_covers_exact(
        nums in proptest::collection::vec((0u32..10, 0u32..10), 1..3),
        threshold in 0u32..10,
    ) {
        let prog = program(threshold);
        let mut exact_eng = build_engine(&nums);
        let exact = exact_eng.run(&prog).unwrap();
        let u_exact = worlds::tuple_universe(
            &exact, exact_eng.store(), UNIVERSE_BUDGET).unwrap();

        let mut deg_eng = build_engine(&nums);
        deg_eng.budget = RunBudget::with_deadline(Duration::ZERO);
        let degraded = deg_eng.run(&prog).unwrap();
        prop_assert!(deg_eng.stats.degraded());
        let u_deg = worlds::tuple_universe(
            &degraded, deg_eng.store(), UNIVERSE_BUDGET).unwrap();
        prop_assert!(u_deg.is_superset(&u_exact));
    }

    /// The fault plan itself is deterministic: two runs with the same seed
    /// and plan degrade identically.
    #[test]
    fn seeded_faults_replay_identically(
        nums in proptest::collection::vec((0u32..10, 0u32..10), 1..3),
        per_mille in 0u32..1000,
        seed in any::<u64>(),
    ) {
        let prog = program(0);
        let run = |seed: u64| {
            let mut eng = build_engine(&nums);
            eng.fault.arm(
                fault::site::EVAL_RULE,
                Trigger::PerMille(per_mille),
                Fault::TooLarge,
                seed,
            );
            let _ = eng.run(&prog).unwrap();
            eng.stats
                .degradations
                .iter()
                .map(|d| d.rule.clone())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// A disarmed plan is inert: arming then disarming leaves the engine
    /// exact.
    #[test]
    fn disarmed_plan_is_exact(
        nums in proptest::collection::vec((0u32..10, 0u32..10), 1..3),
    ) {
        let prog = program(0);
        let mut eng = build_engine(&nums);
        eng.fault.arm(fault::site::EVAL_RULE, Trigger::Always, Fault::TooLarge, 0);
        eng.fault.disarm_all();
        let _ = eng.run(&prog).unwrap();
        prop_assert!(!eng.stats.degraded());
        let _ = FaultPlan::disarmed(); // the default everywhere
    }
}
