//! Property test of ψ/BAnnotate (§4.3) against a brute-force reference:
//! Definition 2 applied world-by-world.
//!
//! For an input table T with worlds W(T), the rule's true semantics under
//! an attribute annotation is the union over R ∈ W(T) of the Definition-2
//! relation sets of R. BAnnotate must produce a table whose worlds contain
//! every such relation (superset semantics); for singleton-key inputs it
//! is exact.

use iflex_ctable::{worlds, Assignment, Cell, CompactTable, CompactTuple, Value};
use iflex_engine::annotate::bannotate_exact;
use iflex_text::DocumentStore;
use proptest::prelude::*;
use std::collections::BTreeSet;

type Relation = BTreeSet<Vec<Value>>;

/// Definition 2 on one concrete relation: group by the key column (0),
/// choose one value of the annotated column (1) per group — the set of
/// all relations so constructible.
fn definition2(r: &Relation) -> BTreeSet<Relation> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
    for row in r {
        groups.entry(row[0].clone()).or_default().insert(row[1].clone());
    }
    let keys: Vec<&Value> = groups.keys().collect();
    let mut out: BTreeSet<Relation> = BTreeSet::new();
    out.insert(Relation::new());
    for k in keys {
        let vals = &groups[k];
        let mut next = BTreeSet::new();
        for rel in &out {
            for v in vals {
                let mut r2 = rel.clone();
                r2.insert(vec![(*k).clone(), v.clone()]);
                next.insert(r2);
            }
        }
        out = next;
    }
    out
}

fn num(n: u8) -> Value {
    Value::Num(n as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Superset guarantee: every Definition-2 relation of every input
    /// world appears among the worlds of BAnnotate's output.
    #[test]
    fn bannotate_worlds_cover_definition2(
        rows in proptest::collection::vec(
            ((0u8..3), proptest::collection::vec(0u8..4, 1..3), proptest::bool::ANY),
            1..4,
        ),
    ) {
        let store = DocumentStore::new();
        let mut table = CompactTable::new(vec!["k".into(), "v".into()]);
        for (k, vs, maybe) in &rows {
            let mut t = CompactTuple::new(vec![
                Cell::exact(num(*k)),
                Cell::of(vs.iter().map(|v| Assignment::Exact(num(*v))).collect()),
            ]);
            t.maybe = *maybe;
            table.push(t);
        }
        let annotated = bannotate_exact(&table, &[1], &store, 1_000_000).unwrap();

        let input_worlds = worlds::worlds_of_compact(&table, &store, 1_000_000).unwrap();
        let output_worlds = worlds::worlds_of_compact(&annotated, &store, 1_000_000).unwrap();

        for w in &input_worlds {
            for rel in definition2(w) {
                prop_assert!(
                    output_worlds.contains(&rel),
                    "Definition-2 relation {rel:?} of input world {w:?} missing \
                     from ψ output worlds"
                );
            }
        }
    }

    /// Certain keys: a key contributed only by non-maybe tuples appears in
    /// every output world (the Figure-5 "Dave" case).
    #[test]
    fn certain_keys_survive_every_world(
        certain_key in 0u8..3,
        vals in proptest::collection::vec(0u8..4, 1..3),
    ) {
        let store = DocumentStore::new();
        let mut table = CompactTable::new(vec!["k".into(), "v".into()]);
        table.push(CompactTuple::new(vec![
            Cell::exact(num(certain_key)),
            Cell::of(vals.iter().map(|v| Assignment::Exact(num(*v))).collect()),
        ]));
        // plus an unrelated maybe tuple
        table.push(CompactTuple::maybe(vec![
            Cell::exact(num(certain_key.wrapping_add(1) % 3)),
            Cell::exact(num(0)),
        ]));
        let annotated = bannotate_exact(&table, &[1], &store, 1_000_000).unwrap();
        for w in worlds::worlds_of_compact(&annotated, &store, 1_000_000).unwrap() {
            prop_assert!(
                w.iter().any(|row| row[0] == num(certain_key)),
                "certain key missing from world {w:?}"
            );
        }
    }
}
