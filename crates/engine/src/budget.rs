//! Run budgets: wall-clock deadlines and cooperative cancellation.
//!
//! A [`RunBudget`] is attached to the engine and describes how long a run
//! may take; [`RunBudget::start`] arms a [`RunClock`] that operators probe
//! at loop boundaries. Expiry never aborts a run outright — the engine
//! records a degradation and substitutes a superset-safe widened result
//! (see `exec.rs`), which is the paper's best-effort contract extended to
//! the time axis.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a rule's evaluation was degraded instead of completed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeCause {
    /// A materialization/enumeration budget ([`crate::Limits`]) overflowed.
    Budget,
    /// The run's wall-clock deadline expired.
    Deadline,
    /// The run was cancelled through its [`CancelToken`].
    Cancelled,
    /// The rule's evaluation panicked and was contained at the rule
    /// boundary.
    RulePanic,
}

impl DegradeCause {
    /// Stable machine-readable identifier, usable inside metric names
    /// (`engine.degradations.<slug>`): no spaces, lowercase.
    pub fn slug(self) -> &'static str {
        match self {
            DegradeCause::Budget => "budget",
            DegradeCause::Deadline => "deadline",
            DegradeCause::Cancelled => "cancelled",
            DegradeCause::RulePanic => "rule_panic",
        }
    }
}

impl fmt::Display for DegradeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeCause::Budget => write!(f, "budget"),
            DegradeCause::Deadline => write!(f, "deadline"),
            DegradeCause::Cancelled => write!(f, "cancelled"),
            DegradeCause::RulePanic => write!(f, "rule panic"),
        }
    }
}

/// A cloneable flag for cooperative cancellation: hand a clone to another
/// thread, call [`CancelToken::cancel`], and the engine degrades the rest
/// of the run at its next operator boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Clears the flag so the token can be reused for the next run.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// The time budget of one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock allowance for a single run; `None` means unlimited.
    pub deadline: Option<Duration>,
    cancel: CancelToken,
}

impl RunBudget {
    /// No deadline, not cancellable from outside (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget with the given wall-clock deadline per run.
    pub fn with_deadline(deadline: Duration) -> Self {
        RunBudget {
            deadline: Some(deadline),
            cancel: CancelToken::new(),
        }
    }

    /// A clone of the budget's cancellation token, to be triggered from
    /// another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Arms a clock for one run starting now.
    pub fn start(&self) -> RunClock {
        RunClock {
            deadline_at: self.deadline.map(|d| Instant::now() + d),
            cancel: self.cancel.clone(),
            tripped: AtomicBool::new(false),
            tick: AtomicU32::new(0),
        }
    }
}

/// How many [`RunClock::tick`] calls are amortized into one wall-clock
/// read.
const TICK_STRIDE: u32 = 1024;

/// A per-run armed clock. `Sync`, so parallel join workers sharing the
/// engine can probe it.
#[derive(Debug)]
pub struct RunClock {
    deadline_at: Option<Instant>,
    cancel: CancelToken,
    /// Latched once expiry/cancellation has been observed; lets hot paths
    /// ask "already expired?" without reading the wall clock again.
    tripped: AtomicBool,
    tick: AtomicU32,
}

impl RunClock {
    /// A clock that never expires (engine default before any run).
    pub fn unlimited() -> Self {
        RunBudget::unlimited().start()
    }

    /// Reads the wall clock and the cancellation flag.
    pub fn expired(&self) -> Option<DegradeCause> {
        if self.cancel.is_cancelled() {
            self.tripped.store(true, Ordering::Relaxed);
            return Some(DegradeCause::Cancelled);
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                self.tripped.store(true, Ordering::Relaxed);
                return Some(DegradeCause::Deadline);
            }
        }
        None
    }

    /// True once expiry has been observed by any prior probe. Never reads
    /// the wall clock — the cheap question for per-tuple paths.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Full check: `Err(cause)` when the run should degrade.
    pub fn check(&self) -> Result<(), DegradeCause> {
        match self.expired() {
            Some(c) => Err(c),
            None => Ok(()),
        }
    }

    /// Amortized check for inner loops: only every `TICK_STRIDE`-th call
    /// (and the first) reads the wall clock.
    pub fn tick(&self) -> Result<(), DegradeCause> {
        let n = self.tick.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(TICK_STRIDE) {
            if self.tripped() {
                return self.check();
            }
            return Ok(());
        }
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let clock = RunClock::unlimited();
        for _ in 0..5000 {
            assert!(clock.tick().is_ok());
        }
        assert!(clock.check().is_ok());
        assert!(!clock.tripped());
    }

    #[test]
    fn deadline_expires_and_latches() {
        let budget = RunBudget::with_deadline(Duration::from_millis(0));
        let clock = budget.start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(clock.check(), Err(DegradeCause::Deadline));
        assert!(clock.tripped());
    }

    #[test]
    fn cancel_token_cooperates() {
        let budget = RunBudget::unlimited();
        let token = budget.cancel_token();
        let clock = budget.start();
        assert!(clock.check().is_ok());
        token.cancel();
        assert_eq!(clock.check(), Err(DegradeCause::Cancelled));
        token.reset();
        assert!(budget.start().check().is_ok());
    }

    #[test]
    fn tick_detects_expiry_within_a_stride() {
        let budget = RunBudget::with_deadline(Duration::from_millis(0));
        let clock = budget.start();
        std::thread::sleep(Duration::from_millis(2));
        let mut saw = false;
        for _ in 0..2 * TICK_STRIDE {
            if clock.tick().is_err() {
                saw = true;
                break;
            }
        }
        assert!(saw, "expiry must surface within one stride");
    }
}
