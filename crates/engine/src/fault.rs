//! Deterministic, seeded fault injection for robustness testing.
//!
//! A [`FaultPlan`] arms named sites in the engine (and the corpus loader)
//! with faults — budget overflows, deadline expiry, rule panics, I/O
//! errors — that fire on a chosen hit count or with a seeded probability.
//! The plan is a cheap cloneable handle: clones share state, so one plan
//! can drive both the engine and `iflex::io`. An unarmed plan costs one
//! relaxed atomic load per probe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The named injection sites.
pub mod site {
    /// Before each rule's evaluation in the engine's run loop.
    pub const EVAL_RULE: &str = "engine.eval_rule";
    /// Inside the tuple-pair loop of the join operators (cross, fused,
    /// similarity).
    pub const JOIN_TUPLE: &str = "engine.join_tuple";
    /// Per input tuple of a generator procedure.
    pub const GENERATOR: &str = "engine.generator";
    /// At the entry of the ψ annotation operator.
    pub const ANNOTATE: &str = "engine.annotate";
    /// Per file read by the corpus loader.
    pub const IO_READ: &str = "core.io.read";
    /// Per stolen morsel in the work-stealing executor, probed at the
    /// moment a participant begins a range it took from another
    /// participant's segment. A panic here unwinds the thief mid-steal —
    /// the worst spot for the dispenser's bookkeeping — and must still be
    /// contained as a per-rule degradation.
    pub const PAR_STEAL: &str = "engine.par_steal";
    /// Per rule-result lookup in the shared memo/incremental-cache path
    /// (`Engine::run` consults the [`crate::IncrCache`] before evaluating
    /// a rule; a fault here degrades just that rule, exactly like an
    /// evaluation failure).
    pub const MEMO_LOOKUP: &str = "engine.memo_lookup";
    /// Per session-spawn attempt in the multi-session service (worker
    /// thread creation + engine fork).
    pub const SESSION_SPAWN: &str = "service.session_spawn";
    /// Per job taken off a session worker's queue, inside the bulkhead's
    /// `catch_unwind`. Arming [`crate::Fault::Panic`] here kills the job
    /// from the worker's own frame — the hard-crash case the bulkhead
    /// and the flight recorder exist for.
    pub const WORKER_JOB: &str = "service.worker_job";
    /// Per protocol request decoded from the wire by the service.
    pub const REQUEST_DECODE: &str = "service.request_decode";
    /// Per protocol response written to the wire by the service.
    pub const RESPONSE_WRITE: &str = "service.response_write";
    /// At the cross-session cache hand-off points of the service: forking
    /// a warm cache into a new session and publishing a session's entries
    /// back to the shared core.
    pub const CACHE_SHARE: &str = "service.cache_share";
}

/// What an armed site does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Report a budget overflow (`EngineError::TooLarge`).
    TooLarge,
    /// Behave as if the run's wall-clock deadline expired.
    DeadlineExpired,
    /// Panic with the given message (must be contained at the rule
    /// boundary — the process may never abort).
    Panic(String),
    /// An I/O error with the given message (corpus loading).
    Io(String),
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th probe of the site (0-based).
    Nth(u64),
    /// Fire on every probe.
    Always,
    /// Fire per probe with the given per-mille probability, drawn from a
    /// deterministic stream seeded at arm time.
    PerMille(u32),
}

#[derive(Debug)]
struct Arm {
    site: &'static str,
    trigger: Trigger,
    fault: Fault,
    hits: u64,
    fired: u64,
    rng: u64,
}

/// splitmix64: small, deterministic, dependency-free.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Arm {
    fn probe(&mut self) -> Option<Fault> {
        let hit = self.hits;
        self.hits += 1;
        let fires = match self.trigger {
            Trigger::Nth(n) => hit == n,
            Trigger::Always => true,
            Trigger::PerMille(p) => (next_rand(&mut self.rng) % 1000) < u64::from(p),
        };
        if fires {
            self.fired += 1;
            Some(self.fault.clone())
        } else {
            None
        }
    }
}

/// A shared fault-injection plan. The default plan is disarmed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    armed: Arc<AtomicBool>,
    arms: Arc<Mutex<Vec<Arm>>>,
    last_fired: Arc<Mutex<Option<&'static str>>>,
}

impl FaultPlan {
    /// A disarmed plan (what every engine starts with).
    pub fn disarmed() -> Self {
        Self::default()
    }

    /// Arms `site` with `fault`, firing per `trigger`. Probabilistic
    /// triggers draw from a stream seeded with `seed`, so a plan replays
    /// identically run after run.
    pub fn arm(&self, site: &'static str, trigger: Trigger, fault: Fault, seed: u64) {
        let mut arms = self.arms.lock().expect("fault plan lock");
        arms.push(Arm {
            site,
            trigger,
            fault,
            hits: 0,
            fired: 0,
            rng: seed ^ 0x5851_f42d_4c95_7f2d,
        });
        self.armed.store(true, Ordering::Release);
    }

    /// Removes every arm and resets the fast path to "disarmed".
    pub fn disarm_all(&self) {
        let mut arms = self.arms.lock().expect("fault plan lock");
        arms.clear();
        self.armed.store(false, Ordering::Release);
    }

    /// True when at least one site is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Probes `site`: counts the hit on every matching arm and returns the
    /// first fault that fires. The unarmed fast path is one atomic load.
    pub fn hit(&self, site: &str) -> Option<Fault> {
        if !self.is_armed() {
            return None;
        }
        let mut arms = self.arms.lock().expect("fault plan lock");
        let mut fired = None;
        let mut fired_site = None;
        for arm in arms.iter_mut().filter(|a| a.site == site) {
            let f = arm.probe();
            if fired.is_none() && f.is_some() {
                fired_site = Some(arm.site);
                fired = f;
            }
        }
        if fired_site.is_some() {
            *self.last_fired.lock().expect("fault plan lock") = fired_site;
        }
        fired
    }

    /// Takes (and clears) the site of the most recently fired fault.
    ///
    /// The engine calls this when it records a [`crate::Degradation`] so
    /// the record can name the injection site that caused it. Attribution
    /// is best-effort: snapshot engines running concurrently share the
    /// plan (clones share state), so under parallel execution the taken
    /// site is the last one fired by *any* sharer, not necessarily the
    /// one that degraded this rule.
    pub fn take_last_fired(&self) -> Option<&'static str> {
        self.last_fired.lock().expect("fault plan lock").take()
    }

    /// How many times `site`'s arms have fired so far.
    pub fn fired_count(&self, site: &str) -> u64 {
        let arms = self.arms.lock().expect("fault plan lock");
        arms.iter().filter(|a| a.site == site).map(|a| a.fired).sum()
    }

    /// How many times `site` has been probed so far.
    pub fn hit_count(&self, site: &str) -> u64 {
        let arms = self.arms.lock().expect("fault plan lock");
        arms.iter()
            .filter(|a| a.site == site)
            .map(|a| a.hits)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let plan = FaultPlan::disarmed();
        assert!(!plan.is_armed());
        for _ in 0..100 {
            assert_eq!(plan.hit(site::EVAL_RULE), None);
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::disarmed();
        plan.arm(site::EVAL_RULE, Trigger::Nth(2), Fault::TooLarge, 0);
        assert_eq!(plan.hit(site::EVAL_RULE), None);
        assert_eq!(plan.hit(site::EVAL_RULE), None);
        assert_eq!(plan.hit(site::EVAL_RULE), Some(Fault::TooLarge));
        assert_eq!(plan.hit(site::EVAL_RULE), None);
        assert_eq!(plan.fired_count(site::EVAL_RULE), 1);
        assert_eq!(plan.hit_count(site::EVAL_RULE), 4);
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::disarmed();
        plan.arm(site::JOIN_TUPLE, Trigger::Always, Fault::DeadlineExpired, 0);
        assert_eq!(plan.hit(site::EVAL_RULE), None);
        assert_eq!(
            plan.hit(site::JOIN_TUPLE),
            Some(Fault::DeadlineExpired)
        );
    }

    #[test]
    fn per_mille_stream_is_deterministic() {
        let collect = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::disarmed();
            plan.arm(site::IO_READ, Trigger::PerMille(300), Fault::Io("x".into()), seed);
            (0..64).map(|_| plan.hit(site::IO_READ).is_some()).collect()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43), "different seeds, different stream");
        let fires = collect(42).iter().filter(|&&b| b).count();
        assert!(fires > 0 && fires < 64, "p=0.3 should fire sometimes: {fires}");
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::disarmed();
        let other = plan.clone();
        plan.arm(site::ANNOTATE, Trigger::Nth(0), Fault::Panic("boom".into()), 0);
        assert!(other.is_armed());
        assert_eq!(other.hit(site::ANNOTATE), Some(Fault::Panic("boom".into())));
        assert_eq!(plan.fired_count(site::ANNOTATE), 1);
        other.disarm_all();
        assert!(!plan.is_armed());
    }
}
