//! Subset evaluation (§5.2): run plans over a random sample of the input
//! documents to make assistant simulations cheap.

use iflex_ctable::CompactTable;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic sampling policy over extensional tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Fraction of tuples kept, in `(0, 1]`.
    pub fraction: f64,
    /// RNG seed; the same seed selects the same subset.
    pub seed: u64,
}

impl Sample {
    /// Creates a new instance.
    pub fn new(fraction: f64, seed: u64) -> Self {
        Sample {
            fraction: fraction.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The paper's sizing rule: 5–30 % of the input, larger fractions for
    /// smaller inputs (§5.2).
    pub fn auto(input_tuples: usize, seed: u64) -> Self {
        let fraction = if input_tuples <= 50 {
            1.0
        } else if input_tuples <= 200 {
            0.30
        } else if input_tuples <= 1000 {
            0.15
        } else {
            0.05
        };
        Sample::new(fraction, seed)
    }

    /// Cache-key component distinguishing this subset. Fraction 1.0
    /// samples nothing ([`Sample::apply`] returns the table unchanged, and
    /// the seed is never consulted), so full-fraction sampled runs share
    /// the `"full"` key with [`Engine::run`](crate::Engine::run) — a
    /// full-scale simulation probe can then reuse rule results the
    /// iteration run already cached.
    pub fn key(&self) -> String {
        if self.fraction >= 1.0 {
            return "full".into();
        }
        format!("sample:{:.4}:{}", self.fraction, self.seed)
    }

    /// Applies the sample to a table. At least one tuple is kept from a
    /// non-empty table so simulations never see vacuous inputs.
    pub fn apply(&self, table: &CompactTable) -> CompactTable {
        if self.fraction >= 1.0 || table.is_empty() {
            return table.clone();
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = CompactTable::new(table.columns().to_vec());
        for t in table.tuples() {
            if rng.gen::<f64>() < self.fraction {
                out.push(t.clone());
            }
        }
        if out.is_empty() {
            out.push(table.tuples()[0].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_ctable::{Cell, CompactTuple, Value};

    fn table(n: usize) -> CompactTable {
        let mut t = CompactTable::new(vec!["a".into()]);
        for i in 0..n {
            t.push(CompactTuple::new(vec![Cell::exact(Value::Num(i as f64))]));
        }
        t
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t = table(1000);
        let s = Sample::new(0.2, 42);
        let a = s.apply(&t);
        let b = s.apply(&t);
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
        let c = Sample::new(0.2, 43).apply(&t);
        assert_ne!(a, c);
    }

    #[test]
    fn fraction_roughly_respected() {
        let t = table(2000);
        let s = Sample::new(0.25, 7).apply(&t);
        let frac = s.len() as f64 / 2000.0;
        assert!((0.18..0.32).contains(&frac), "{frac}");
    }

    #[test]
    fn full_fraction_is_identity() {
        let t = table(10);
        assert_eq!(Sample::new(1.0, 1).apply(&t), t);
    }

    #[test]
    fn nonempty_input_keeps_at_least_one() {
        let t = table(3);
        let s = Sample::new(0.0001, 9).apply(&t);
        assert!(!s.is_empty());
    }

    #[test]
    fn auto_follows_paper_sizing() {
        assert_eq!(Sample::auto(10, 0).fraction, 1.0);
        assert_eq!(Sample::auto(100, 0).fraction, 0.30);
        assert_eq!(Sample::auto(500, 0).fraction, 0.15);
        assert_eq!(Sample::auto(5000, 0).fraction, 0.05);
    }
}
