//! Token-based string similarity, the engine's stand-in for the paper's
//! TF/IDF `approxMatch` (§2.1: "'similar' according to some similarity
//! function (e.g., TF/IDF)").

use std::collections::BTreeSet;

/// Lower-cases and splits into word/number tokens, dropping punctuation.
pub fn norm_tokens(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.insert(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.insert(cur);
    }
    out
}

/// Jaccard similarity of normalized token sets.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let ta = norm_tokens(a);
    let tb = norm_tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Containment: |A ∩ B| / min(|A|, |B|). Robust to one string being a
/// fragment of the other ("Basktall HS" vs "Basktall").
pub fn containment(a: &str, b: &str) -> f64 {
    let ta = norm_tokens(a);
    let tb = norm_tokens(b);
    let smaller = ta.len().min(tb.len());
    if smaller == 0 {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    inter / smaller as f64
}

/// The default `similar` / `approxMatch` predicate: containment ≥ 0.8 with
/// at least one shared non-trivial token.
pub fn approx_match(a: &str, b: &str) -> bool {
    if a.trim().is_empty() || b.trim().is_empty() {
        return false;
    }
    containment(a, b) >= 0.8
}

/// A precomputed profile of one cell's text for the approximate string
/// join (the paper defers its full treatment to the tech report; we use a
/// token prefilter): the union of tokens the cell's values can draw from,
/// plus the exact text when the cell is a singleton.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// The tokens.
    pub tokens: BTreeSet<String>,
    /// The value's text when the cell encodes exactly one value.
    pub singleton: Option<String>,
}

impl SimProfile {
    /// May any value of `self` approximately match any value of `other`?
    /// Sound prefilter: a match needs ≥ 0.8 containment, hence at least
    /// one shared token. For singleton cells the precomputed token sets
    /// give the exact containment decision without re-tokenizing.
    pub fn may_match(&self, other: &SimProfile) -> bool {
        if self.singleton.is_some() && other.singleton.is_some() {
            let smaller = self.tokens.len().min(other.tokens.len());
            if smaller == 0 {
                return false;
            }
            let inter = self.tokens.intersection(&other.tokens).count();
            return inter as f64 / smaller as f64 >= 0.8;
        }
        let (small, big) = if self.tokens.len() <= other.tokens.len() {
            (&self.tokens, &other.tokens)
        } else {
            (&other.tokens, &self.tokens)
        };
        small.iter().any(|t| big.contains(t))
    }

    /// True when both sides are singletons (prefilter answer is exact).
    pub fn exact_pair(&self, other: &SimProfile) -> bool {
        self.singleton.is_some() && other.singleton.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_normalize_case_and_punct() {
        let t = norm_tokens("Basktall, HS!");
        assert!(t.contains("basktall"));
        assert!(t.contains("hs"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard("a b", "a b"), 1.0);
        assert_eq!(jaccard("a", "b"), 0.0);
        assert!((jaccard("a b", "b c") - (1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn containment_handles_fragments() {
        assert_eq!(containment("Basktall HS", "Basktall"), 1.0);
        assert!(containment("The Big Sleep", "Big Sleep") >= 0.99);
    }

    #[test]
    fn approx_match_paper_example() {
        // Figure 1: high school "Basktall HS" matches school "Basktall"
        assert!(approx_match("Basktall HS", "Basktall"));
        assert!(!approx_match("Vanhise High", "Basktall"));
        assert!(!approx_match("", "x"));
    }
}
