//! Domain-constraint selection over compact-table cells (§4.2): applies
//! `A(k, m(s))` per assignment via the feature's `Verify`/`Refine`, and
//! re-checks every *prior* constraint on freshly created sub-spans.

use crate::memo::{CellCtx, FeatureMemo, MemoQuery, MemoValue};
use crate::plan::CompiledConstraint;
use iflex_ctable::{Assignment, Cell, Value};
use iflex_features::{FeatureArg, FeatureError, FeatureRegistry};
use iflex_text::{DocumentStore, Span};
use std::collections::HashMap;
use std::sync::Arc;

/// Memoizing wrapper around `Feature::verify_value`.
fn verify_memo(
    features: &FeatureRegistry,
    store: &DocumentStore,
    v: &Value,
    k: &CompiledConstraint,
    memo: Option<&FeatureMemo>,
) -> Result<bool, FeatureError> {
    let q = MemoQuery::Verify {
        value: v,
        feature: &k.feature,
        arg: &k.arg,
    };
    let hash = match memo {
        Some(m) => {
            let (h, found) = m.get(&q);
            if let Some(MemoValue::Verified(ok)) = found {
                return Ok(ok);
            }
            Some(h)
        }
        None => None,
    };
    let f = features.get(&k.feature)?;
    let ok = f.verify_value(store, v, &k.arg)?;
    if let (Some(m), Some(h)) = (memo, hash) {
        m.insert(h, &q, MemoValue::Verified(ok));
        // Selectivity signal for the plan optimizer (DESIGN.md §11):
        // recorded on the miss path only, where the feature actually ran.
        m.note_verify(&k.feature, ok);
    }
    Ok(ok)
}

/// Memoizing wrapper around `Feature::refine`.
fn refine_memo(
    features: &FeatureRegistry,
    store: &DocumentStore,
    span: iflex_text::Span,
    k: &CompiledConstraint,
    memo: Option<&FeatureMemo>,
) -> Result<Arc<Vec<Assignment>>, FeatureError> {
    let q = MemoQuery::Refine {
        span,
        feature: &k.feature,
        arg: &k.arg,
    };
    let hash = match memo {
        Some(m) => {
            let (h, found) = m.get(&q);
            if let Some(MemoValue::Refined(v)) = found {
                return Ok(v);
            }
            Some(h)
        }
        None => None,
    };
    let f = features.get(&k.feature)?;
    let refined = Arc::new(f.refine(store, span, &k.arg)?);
    if let (Some(m), Some(h)) = (memo, hash) {
        m.insert(h, &q, MemoValue::Refined(Arc::clone(&refined)));
        m.note_refine(&k.feature, refined.len());
    }
    Ok(refined)
}

/// Renders a constraint chain into the injective identity string backing
/// [`CellCtx`]: `\u{1}` separates constraints, `\u{2}` separates fields,
/// and numeric arguments are rendered by bit pattern. Feature names and
/// text arguments never contain control characters, so distinct chains
/// render distinctly.
pub fn chain_ctx(new: &CompiledConstraint, priors: &[CompiledConstraint]) -> CellCtx {
    fn push(out: &mut String, k: &CompiledConstraint) {
        out.push_str(&k.feature);
        out.push('\u{2}');
        match &k.arg {
            FeatureArg::Tri(v) => out.push_str(&format!("t{}", *v as u8)),
            FeatureArg::Num(n) => out.push_str(&format!("n{:016x}", n.to_bits())),
            FeatureArg::Text(s) => {
                out.push('x');
                out.push_str(s);
            }
        }
        out.push('\u{1}');
    }
    let mut text = String::new();
    push(&mut text, new);
    for k in priors {
        push(&mut text, k);
    }
    CellCtx::new(text)
}

/// [`apply_constraint_memo`] behind the coarser *cell-level* cache: when
/// this exact cell has already been refined under this exact constraint
/// chain (by any rule, run, or simulation probe sharing the memo), the
/// cached output cell is returned without touching the worklist at all.
pub fn apply_constraint_cached(
    cell: &Cell,
    new: &CompiledConstraint,
    priors: &[CompiledConstraint],
    store: &DocumentStore,
    features: &FeatureRegistry,
    memo: &FeatureMemo,
    ctx: &CellCtx,
) -> Result<Cell, FeatureError> {
    // Cells without a `Contain` region only take the verify fast path of
    // the worklist — a handful of direct feature calls that are cheaper
    // than any cache round-trip. Caching pays exactly where refinement
    // worklists run, so exact-only cells bypass the memo entirely.
    let refinable = cell
        .assignments()
        .iter()
        .any(|a| matches!(a, Assignment::Contain(_)));
    if !refinable {
        let out = apply_constraint_memo(cell, new, priors, store, features, None)?;
        memo.note_verify(&new.feature, !out.is_empty());
        return Ok(out);
    }
    let (hash, found) = memo.get_cell(ctx, cell);
    if let Some(out) = found {
        return Ok(out);
    }
    // On a cell miss the worklist recomputes from scratch *without* the
    // finer span-level memo: with this corpus's cheap features, per-call
    // Verify/Refine lookups cost more than the calls they save, and the
    // cell entry inserted below already captures the reuse across rules,
    // iterations, and simulation probes. Callers that pay more per
    // feature call can still thread the memo through
    // [`apply_constraint_memo`] directly.
    let out = apply_constraint_memo(cell, new, priors, store, features, None)?;
    // Cell-granularity selectivity signal for the plan optimizer: did the
    // chain drop this cell, and how many assignments survived? Recorded
    // on the miss path only (hits carry no new information).
    memo.note_verify(&new.feature, !out.is_empty());
    memo.note_refine(&new.feature, out.assignments().len());
    memo.insert_cell(hash, ctx, cell, out.clone());
    Ok(out)
}

/// Applies `new` (and re-checks `priors`) to one cell, returning the
/// transformed cell. Expansion flags are preserved (§4.2: "if c is an
/// expansion cell we set c' to be an expansion cell").
pub fn apply_constraint(
    cell: &Cell,
    new: &CompiledConstraint,
    priors: &[CompiledConstraint],
    store: &DocumentStore,
    features: &FeatureRegistry,
) -> Result<Cell, FeatureError> {
    apply_constraint_memo(cell, new, priors, store, features, None)
}

/// Results of one batch `Verify`/`Refine` sweep over a column run
/// (DESIGN.md §14), consulted by the worklist before calling a feature:
/// first-round `Refine` results of the *new* constraint keyed by span,
/// and `Verify` results for the run's exact values against the whole
/// chain (aligned with the worklist's `all` order: `new`, then priors).
/// Features are pure, so serving a worklist step from the seed instead of
/// a direct call is byte-invisible — only the batching changes.
#[derive(Default)]
struct RunSeed {
    refine_new: HashMap<Span, Arc<Vec<Assignment>>>,
    verify: HashMap<Value, Vec<bool>>,
}

/// Batch constraint application over one column run of **distinct** cells
/// (the columnar operators dedup per run before calling). Byte-identical
/// to calling [`apply_constraint_cached`] / [`apply_constraint_memo`] per
/// cell — the worklist is the same code — but batched at every layer:
///
/// * one [`FeatureMemo::get_cell_batch`] / `insert_cell_batch` round-trip
///   per run (one lock per shard, borrowed-key hits) instead of one
///   scalar cache round-trip per tuple;
/// * one [`iflex_features::Feature::refine_run`] call seeding the first
///   refinement round of every miss cell, and one `verify_value_run` call
///   per chain constraint covering the run's exact values.
///
/// Returns output cells positionally aligned with `cells`. `ctx` must be
/// `Some` exactly when `memo` is (the chain identity for the cell cache).
pub fn apply_constraint_run(
    cells: &[&Cell],
    new: &CompiledConstraint,
    priors: &[CompiledConstraint],
    store: &DocumentStore,
    features: &FeatureRegistry,
    memo: Option<&FeatureMemo>,
    ctx: Option<&CellCtx>,
) -> Result<Vec<Cell>, FeatureError> {
    let mut outs: Vec<Option<Cell>> = vec![None; cells.len()];

    // Cell-cache sweep, refinable cells only (exact-only cells bypass the
    // cache — same policy as the scalar `apply_constraint_cached` path).
    let refinable: Vec<bool> = cells
        .iter()
        .map(|c| {
            c.assignments()
                .iter()
                .any(|a| matches!(a, Assignment::Contain(_)))
        })
        .collect();
    // (cell index, cache-insert hash) for refinable cache misses.
    let mut pending: Vec<(usize, Option<u64>)> = Vec::new();
    if let (Some(m), Some(cx)) = (memo, ctx) {
        let probe: Vec<usize> = (0..cells.len()).filter(|&i| refinable[i]).collect();
        let probed: Vec<&Cell> = probe.iter().map(|&i| cells[i]).collect();
        for (&i, (h, hit)) in probe.iter().zip(m.get_cell_batch(cx, &probed)) {
            match hit {
                Some(out) => outs[i] = Some(out),
                None => pending.push((i, Some(h))),
            }
        }
        pending.extend((0..cells.len()).filter(|&i| !refinable[i]).map(|i| (i, None)));
    } else {
        pending.extend((0..cells.len()).map(|i| (i, None)));
    }

    // Batch feature sweep over everything the misses will ask on their
    // first worklist round: Refine(new) for every distinct contain span,
    // Verify for every distinct exact value against every chain
    // constraint. Purity makes the seed byte-invisible to the worklist.
    let mut seed = RunSeed::default();
    if !pending.is_empty() {
        let f = features.get(&new.feature)?;
        let mut spans: Vec<Span> = Vec::new();
        let mut values: Vec<Value> = Vec::new();
        for &(i, _) in &pending {
            for a in cells[i].assignments() {
                match a {
                    Assignment::Contain(s) => {
                        if !seed.refine_new.contains_key(s) {
                            seed.refine_new.insert(*s, Arc::new(Vec::new()));
                            spans.push(*s);
                        }
                    }
                    Assignment::Exact(v) => {
                        if !seed.verify.contains_key(v) {
                            seed.verify.insert(v.clone(), Vec::new());
                            values.push(v.clone());
                        }
                    }
                }
            }
        }
        if !spans.is_empty() {
            for (s, refined) in spans.iter().zip(f.refine_run(store, &spans, &new.arg)?) {
                seed.refine_new.insert(*s, Arc::new(refined));
            }
        }
        if !values.is_empty() {
            let mut per_value: Vec<Vec<bool>> = vec![Vec::new(); values.len()];
            let mut chain: Vec<&CompiledConstraint> = Vec::with_capacity(priors.len() + 1);
            chain.push(new);
            chain.extend(priors.iter());
            for k in chain {
                let kf = features.get(&k.feature)?;
                for (row, ok) in per_value
                    .iter_mut()
                    .zip(kf.verify_value_run(store, &values, &k.arg)?)
                {
                    row.push(ok);
                }
            }
            for (v, row) in values.into_iter().zip(per_value) {
                seed.verify.insert(v, row);
            }
        }
    }

    // Per-cell worklists (the exact scalar code path), served from the
    // seed; note the same selectivity signals the scalar paths note.
    let mut inserts: Vec<(u64, &Cell, Cell)> = Vec::new();
    for (i, hash) in pending {
        let out = apply_constraint_inner(cells[i], new, priors, store, features, None, Some(&seed))?;
        if let Some(m) = memo {
            m.note_verify(&new.feature, !out.is_empty());
            if refinable[i] {
                m.note_refine(&new.feature, out.assignments().len());
                if let Some(h) = hash {
                    inserts.push((h, cells[i], out.clone()));
                }
            }
        }
        outs[i] = Some(out);
    }
    if let (Some(m), Some(cx)) = (memo, ctx) {
        if !inserts.is_empty() {
            m.insert_cell_batch(cx, &inserts);
        }
    }
    Ok(outs.into_iter().map(|o| o.expect("every slot filled")).collect())
}

/// [`apply_constraint`] with an optional shared [`FeatureMemo`]:
/// `Verify`/`Refine` results are served from (and recorded into) the memo,
/// which the engine shares across rules, runs, and simulation probes.
pub fn apply_constraint_memo(
    cell: &Cell,
    new: &CompiledConstraint,
    priors: &[CompiledConstraint],
    store: &DocumentStore,
    features: &FeatureRegistry,
    memo: Option<&FeatureMemo>,
) -> Result<Cell, FeatureError> {
    apply_constraint_inner(cell, new, priors, store, features, memo, None)
}

/// The §4.2 worklist, optionally served from a batch [`RunSeed`].
fn apply_constraint_inner(
    cell: &Cell,
    new: &CompiledConstraint,
    priors: &[CompiledConstraint],
    store: &DocumentStore,
    features: &FeatureRegistry,
    memo: Option<&FeatureMemo>,
    seed: Option<&RunSeed>,
) -> Result<Cell, FeatureError> {
    // Full constraint list; `new` is applied first, then priors re-checked
    // (order is immaterial for the final set — §4.2).
    let mut all: Vec<&CompiledConstraint> = Vec::with_capacity(priors.len() + 1);
    all.push(new);
    all.extend(priors.iter());

    // Worklist of (assignment, index of next constraint to establish).
    // Exact assignments are verified against every constraint at once;
    // contain assignments are refined constraint by constraint. Whenever a
    // refine changes the region, all constraints must be re-established
    // for the new regions — spans only shrink, so this terminates; a round
    // cap keeps pathological cases bounded (left-over items are kept
    // as-is, which is superset-safe).
    let mut out: Vec<Assignment> = Vec::new();
    let mut work: Vec<(Assignment, usize)> =
        cell.assignments().iter().map(|a| (a.clone(), 0)).collect();
    let max_rounds = (all.len() + 1) * 16;
    let mut rounds = 0usize;

    'work: while let Some((assign, next)) = work.pop() {
        rounds += 1;
        if rounds > max_rounds.max(work.len() * 4 + 64) {
            // Budget blown: keep the remaining assignments unrefined.
            out.push(assign);
            for (a, _) in work.drain(..) {
                out.push(a);
            }
            break;
        }
        match &assign {
            Assignment::Exact(v) => {
                // One shot: verify all constraints (batch-seeded values
                // skip the per-call dispatch; results are identical).
                let row = seed.and_then(|sd| sd.verify.get(v));
                for (ki, k) in all.iter().enumerate() {
                    let ok = match row.and_then(|r| r.get(ki)) {
                        Some(&ok) => ok,
                        None => verify_memo(features, store, v, k, memo)?,
                    };
                    if !ok {
                        continue 'work; // dropped
                    }
                }
                out.push(assign);
            }
            Assignment::Contain(s) => {
                if next >= all.len() {
                    out.push(assign);
                    continue;
                }
                let k = all[next];
                // First-round refines of the new constraint (`next == 0`)
                // come from the run's batch `refine_run` sweep when one
                // is seeded; later rounds and prior re-checks dispatch
                // per call as before.
                let seeded = (next == 0)
                    .then(|| seed.and_then(|sd| sd.refine_new.get(s).cloned()))
                    .flatten();
                let refined = match seeded {
                    Some(r) => r,
                    None => refine_memo(features, store, *s, k, memo)?,
                };
                if refined.len() == 1 && refined[0] == assign {
                    // Region stable under this constraint; move on.
                    work.push((assign, next + 1));
                } else {
                    for r in refined.iter().cloned() {
                        match r {
                            // New exact values still need all other checks.
                            Assignment::Exact(_) => work.push((r, 0)),
                            // New regions: restart from the next constraint
                            // (the producing constraint holds for them by
                            // construction of Refine's maximal regions).
                            Assignment::Contain(_) => work.push((r, next + 1)),
                        }
                    }
                }
            }
        }
    }

    let mut result = cell.with_assignments(out);
    result.condense(store);
    Ok(result)
}

/// Verifies that a concrete value satisfies a whole constraint chain.
pub fn value_satisfies(
    v: &Value,
    constraints: &[CompiledConstraint],
    store: &DocumentStore,
    features: &FeatureRegistry,
) -> Result<bool, FeatureError> {
    for k in constraints {
        let f = features.get(&k.feature)?;
        if !f.verify_value(store, v, &k.arg)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_features::FeatureArg;
    use iflex_text::Span;

    fn cc(feature: &str, arg: FeatureArg) -> CompiledConstraint {
        CompiledConstraint {
            feature: feature.into(),
            arg,
        }
    }

    fn setup(src: &str) -> (DocumentStore, FeatureRegistry, Span) {
        let mut st = DocumentStore::new();
        let id = st.add_markup(src);
        let full = st.doc(id).full_span();
        (st, FeatureRegistry::default(), full)
    }

    #[test]
    fn numeric_constraint_on_contain() {
        let (st, reg, full) = setup("Sqft: 2750 price 351000");
        let cell = Cell::expansion(vec![Assignment::Contain(full)]);
        let out = apply_constraint(&cell, &cc("numeric", FeatureArg::yes()), &[], &st, &reg)
            .unwrap();
        assert!(out.is_expand());
        assert_eq!(out.value_set(&st).len(), 2);
    }

    #[test]
    fn chained_constraints_all_hold() {
        // numeric AND min-value 3000: only 351000 survives
        let (st, reg, full) = setup("Sqft: 2750 price 351000");
        let cell = Cell::contain(full);
        let after_numeric =
            apply_constraint(&cell, &cc("numeric", FeatureArg::yes()), &[], &st, &reg).unwrap();
        let after_min = apply_constraint(
            &after_numeric,
            &cc("min-value", FeatureArg::Num(3000.0)),
            &[cc("numeric", FeatureArg::yes())],
            &st,
            &reg,
        )
        .unwrap();
        let vals = after_min.value_set(&st);
        assert_eq!(vals.len(), 1);
        let v = vals.into_iter().next().unwrap();
        assert_eq!(v.as_num(&st), Some(351000.0));
    }

    #[test]
    fn prior_recheck_prunes_new_regions() {
        // bold first, then numeric: numeric refine of the bold region must
        // only keep numbers that are bold.
        let (st, reg, full) = setup("noise 111 <b>price 222</b> 333");
        let cell = Cell::contain(full);
        let after_bold =
            apply_constraint(&cell, &cc("bold-font", FeatureArg::yes()), &[], &st, &reg).unwrap();
        let after_num = apply_constraint(
            &after_bold,
            &cc("numeric", FeatureArg::yes()),
            &[cc("bold-font", FeatureArg::yes())],
            &st,
            &reg,
        )
        .unwrap();
        let vals: Vec<String> = after_num
            .value_set(&st)
            .into_iter()
            .map(|v| v.as_text(&st).to_string())
            .collect();
        assert_eq!(vals, vec!["222"]);
    }

    #[test]
    fn order_independence() {
        let (st, reg, full) = setup("noise 111 <b>price 222</b> 333");
        let cell = Cell::contain(full);
        let k_bold = cc("bold-font", FeatureArg::yes());
        let k_num = cc("numeric", FeatureArg::yes());
        let ab = apply_constraint(
            &apply_constraint(&cell, &k_bold, &[], &st, &reg).unwrap(),
            &k_num,
            std::slice::from_ref(&k_bold),
            &st,
            &reg,
        )
        .unwrap();
        let ba = apply_constraint(
            &apply_constraint(&cell, &k_num, &[], &st, &reg).unwrap(),
            &k_bold,
            std::slice::from_ref(&k_num),
            &st,
            &reg,
        )
        .unwrap();
        assert_eq!(ab.value_set(&st), ba.value_set(&st));
    }

    #[test]
    fn exact_assignments_filtered_by_verify() {
        let (st, reg, _) = setup("x");
        let cell = Cell::of(vec![
            Assignment::Exact(Value::Num(10.0)),
            Assignment::Exact(Value::Num(2.0)),
        ]);
        let out = apply_constraint(
            &cell,
            &cc("min-value", FeatureArg::Num(5.0)),
            &[],
            &st,
            &reg,
        )
        .unwrap();
        assert_eq!(out.value_set(&st).len(), 1);
    }

    #[test]
    fn unknown_feature_is_error() {
        let (st, reg, full) = setup("x");
        let cell = Cell::contain(full);
        assert!(apply_constraint(&cell, &cc("nope", FeatureArg::yes()), &[], &st, &reg).is_err());
    }

    #[test]
    fn value_satisfies_chain() {
        let (st, reg, _) = setup("x");
        let chain = vec![
            cc("numeric", FeatureArg::yes()),
            cc("min-value", FeatureArg::Num(5.0)),
        ];
        assert!(value_satisfies(&Value::Num(9.0), &chain, &st, &reg).unwrap());
        assert!(!value_satisfies(&Value::Num(1.0), &chain, &st, &reg).unwrap());
        assert!(!value_satisfies(&Value::Str("abc".into()), &chain, &st, &reg).unwrap());
    }
}
