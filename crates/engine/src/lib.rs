//! # iflex-engine
//!
//! The approximate query processor of iFlex (§4 of *Toward Best-Effort
//! Information Extraction*, SIGMOD 2008). It validates and unfolds Alog
//! programs, compiles one plan fragment per rule, stitches them in
//! dependency order, and executes relational operators, p-predicates,
//! domain-constraint selections (`Verify`/`Refine`), and the ψ annotation
//! operator (BAnnotate) over compact tables — all under **superset
//! semantics**: the produced set of possible relations is guaranteed to
//! contain every relation the program defines.
//!
//! Multi-iteration optimizations from §5.2 are built in: per-rule **reuse**
//! of results across runs, and **subset evaluation** over sampled inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod budget;
pub mod constraint;
pub mod eval;
pub mod exec;
pub mod fault;
pub mod incr;
pub mod lplan;
pub mod memo;
pub mod par;
pub mod pfunc;
pub mod plan;
pub mod sample;
pub mod similarity;

pub use annotate::{apply_annotations, apply_annotations_with, AnnotatePath, AnnotatePolicy};
pub use budget::{CancelToken, DegradeCause, RunBudget, RunClock};
pub use eval::{Cands, MayMust};
pub use exec::{
    default_threads, degrade_cause, render_universe, Degradation, Engine, EngineCore, EngineError,
    ExecStats, Limits,
};
pub use fault::{Fault, FaultPlan, Trigger};
pub use incr::IncrCache;
pub use lplan::{optimize, OptCtx, OptReport};
pub use memo::{FeatStats, FeatureMemo};
pub use pfunc::{builtin_procs, ProcRegistry, Procedure};
pub use plan::{
    compile_rule, rule_fingerprint, CompileEnv, CompiledConstraint, FusedOp, Operand, Plan,
    PlanError,
};
pub use sample::Sample;

// The observability crate travels with the engine: downstream crates take
// tracer handles and metric registries from `Engine` and need the types.
pub use iflex_obs as obs;
